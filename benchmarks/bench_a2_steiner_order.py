"""A2 — ablation: Steiner connection order.

DESIGN.md §3: the paper's "adaptation of Dijkstra's minimum spanning
tree algorithm" needs an order in which terminals join the tree.  We
default to cheapest-lower-bound-first; the exact-Prim mode pays one
full search per candidate per step.  The ablation measures wirelength
and time for both.
"""

import random
import time

from repro.core.refine import refine_tree
from repro.core.steiner import route_net
from repro.geometry.point import Point
from repro.layout.net import Net
from repro.layout.terminal import Terminal
from repro.analysis.tables import format_table

from benchmarks.workloads import report, scaling_layout


def make_net(layout, k: int, seed: int) -> Net:
    rng = random.Random(seed)
    obs = layout.obstacles()
    outline = layout.outline
    terminals = []
    while len(terminals) < k:
        p = Point(rng.randint(outline.x0, outline.x1), rng.randint(outline.y0, outline.y1))
        if obs.point_free(p):
            terminals.append(Terminal.single(f"t{len(terminals)}", p))
    return Net(f"net{seed}", terminals)


def bench_a2_steiner_order(benchmark):
    layout = scaling_layout(12, seed=31)
    obs = layout.obstacles()
    counts = (4, 6, 8)
    nets = {k: [make_net(layout, k, seed) for seed in range(4)] for k in counts}

    def run_greedy():
        return {
            k: [route_net(net, obs) for net in group] for k, group in nets.items()
        }

    greedy = benchmark(run_greedy)

    rows = []
    for k in counts:
        greedy_len = sum(t.total_length for t in greedy[k])
        t0 = time.perf_counter()
        exact = [route_net(net, obs, exact_order=True) for net in nets[k]]
        t_exact = time.perf_counter() - t0
        exact_len = sum(t.total_length for t in exact)
        t0 = time.perf_counter()
        refined = [
            refine_tree(net, tree, obs) for net, tree in zip(nets[k], greedy[k])
        ]
        t_refine = time.perf_counter() - t0
        refined_len = sum(t.total_length for t in refined)
        assert refined_len <= greedy_len
        rows.append(
            [
                k,
                greedy_len,
                exact_len,
                refined_len,
                f"{greedy_len / exact_len:.3f}",
                f"{t_exact * 1e3:.1f}",
                f"{t_refine * 1e3:.1f}",
            ]
        )
    table = format_table(
        ["terminals", "greedy", "exact-Prim", "greedy+refine", "greedy/exact",
         "exact ms", "refine ms"],
        rows,
        title="A2: Steiner connection-order ablation (with rip-up refinement)",
    )
    report("a2_steiner_order", table)
