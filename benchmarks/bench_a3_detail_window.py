"""A3 — ablation: the interference window of the detailed router.

The dynamic-channel grouping joins parallel wires whose tracks lie
within ``window`` units.  A small window under-groups (wires that will
collide after track assignment end up in different channels); a large
window over-groups (huge channels, more movement, longer stubs).  The
sweep measures the conflict/track/wirelength trade.
"""

from repro.core.router import GlobalRouter
from repro.detail.detailed import DetailedRouter
from repro.detail.legalize import legalize
from repro.analysis.tables import format_table

from benchmarks.workloads import netted_layout, report


def bench_a3_detail_window(benchmark):
    layout = netted_layout(12, 12, seed=11, terminals=(2, 3))
    global_route = GlobalRouter(layout).route_all()

    def run_default_window():
        return DetailedRouter(layout, window=2).run(global_route)

    benchmark(run_default_window)

    obstacles = layout.obstacles()
    rows = []
    for window in (0, 1, 2, 4, 8):
        result = DetailedRouter(layout, window=window).run(global_route)
        repaired = legalize(result, obstacles)
        rows.append(
            [
                window,
                result.channel_count,
                result.track_total,
                result.conflict_count,
                repaired.conflicts_after,
                result.over_capacity_channels,
                result.total_wirelength,
                result.via_count,
            ]
        )
        assert repaired.conflicts_after <= result.conflict_count
    table = format_table(
        ["window", "channels", "tracks", "conflicts", "after legalize",
         "over-capacity", "wirelength", "vias"],
        rows,
        title="A3: interference-window sweep of the detailed router",
    )
    report("a3_detail_window", table)

    for row in rows:
        (_window, channels, tracks, _conflicts, _legalized,
         _overcap, wirelength, _vias) = row
        assert channels >= 1
        assert tracks >= channels  # every channel uses at least one track
        assert wirelength >= global_route.total_length  # stubs only add metal
