"""F1 — Figure 1: node expansion of the line-search A*.

The paper's Figure 1 shows the A* expansion on a multi-block scene and
claims "surprisingly few nodes are generated before an optimal path is
found".  This bench reproduces the figure (as ASCII art, saved to
results) and the node-count comparison against the grid family on the
reconstructed scene.
"""

from repro.core.escape import EscapeMode
from repro.core.pathfinder import PathRequest, find_path
from repro.core.route import TargetSet
from repro.baselines.leemoore import grid_astar_route, lee_moore_route
from repro.layout.generators import figure1_layout
from repro.analysis.render import render_expansion
from repro.analysis.tables import format_table

from benchmarks.workloads import report


def bench_fig1_expansion(benchmark):
    layout, start, dest = figure1_layout()
    obs = layout.obstacles()

    def run():
        return find_path(
            PathRequest(
                obstacles=obs,
                sources=[(start, 0.0)],
                targets=TargetSet(points=[dest]),
                mode=EscapeMode.FULL,
                trace=True,
            )
        )

    gridless = benchmark(run)
    aggressive = find_path(
        PathRequest(
            obstacles=obs,
            sources=[(start, 0.0)],
            targets=TargetSet(points=[dest]),
            mode=EscapeMode.AGGRESSIVE,
        )
    )
    grid_astar = grid_astar_route(obs, start, dest)
    lee = lee_moore_route(obs, start, dest)

    rows = [
        ["line-search A* (FULL)", gridless.path.length,
         gridless.stats.nodes_expanded, gridless.stats.nodes_generated],
        ["line-search A* (AGGRESSIVE)", aggressive.path.length,
         aggressive.stats.nodes_expanded, aggressive.stats.nodes_generated],
        ["grid A*", grid_astar.path.length,
         grid_astar.stats.nodes_expanded, grid_astar.stats.nodes_generated],
        ["Lee-Moore wavefront", lee.path.length,
         lee.stats.nodes_expanded, lee.stats.nodes_generated],
    ]
    table = format_table(
        ["router", "path length", "nodes expanded", "nodes generated"],
        rows,
        title="F1: node expansion on the Figure 1 scene "
        f"(grid has {lee.grid_nodes} nodes total)",
    )
    art = render_expansion(
        layout, gridless.trace, list(gridless.path.points), start=start, goal=dest
    )
    report("fig1_expansion", table + "\n\nFigure 1 reproduction (.: explored, -|: route):\n" + art)

    # the figure's claim, asserted
    assert gridless.path.length == lee.path.length
    assert gridless.stats.nodes_expanded * 10 < lee.stats.nodes_expanded
