"""X4 — Batch.route_many scaling over worker counts.

The batch facade fans whole RouteRequests out over one shared executor
(:mod:`repro.api.batch`), one process per layout — the orthogonal
scaling axis to the per-layout net fan-out measured in X3b.  Two claims
are checked: results are identical to serial per-layout pipeline runs
for every worker count and executor flavour (the batch is purely a
wall-time facade), and wall time per batch is reported per worker
count (speedup appears on multicore hosts; single-core CI boxes only
pay the pool overhead).
"""

import time

from repro.api import RouteRequest, RoutingPipeline, route_many
from repro.layout.generators import LayoutSpec, random_layout
from repro.analysis.tables import format_table

from benchmarks.workloads import report

N_LAYOUTS = 8


def _requests():
    return [
        RouteRequest(
            layout=random_layout(
                LayoutSpec(n_cells=12, n_nets=10, terminals_per_net=(2, 3)),
                seed=seed,
            ),
            strategy="two-pass",
            strategy_params={"penalty_weight": 4.0},
        )
        for seed in range(N_LAYOUTS)
    ]


def _fingerprints(results):
    return [
        {n: [p.points for p in t.paths] for n, t in r.route.trees.items()}
        for r in results
    ]


def bench_x4_batch(benchmark):
    requests = _requests()
    pipeline = RoutingPipeline()

    t0 = time.perf_counter()
    serial = [pipeline.run(r) for r in requests]
    serial_elapsed = time.perf_counter() - t0
    reference = _fingerprints(serial)

    def run_serial():
        return [pipeline.run(r) for r in requests]

    benchmark(run_serial)

    rows = [["serial", 1, f"{serial_elapsed * 1e3:.0f}", "yes"]]
    for executor in ("thread", "process"):
        for workers in (2, 4):
            t0 = time.perf_counter()
            results = route_many(requests, workers=workers, executor=executor)
            elapsed = time.perf_counter() - t0
            identical = _fingerprints(results) == reference
            assert identical, f"{executor} x{workers} diverged from serial runs"
            rows.append([executor, workers, f"{elapsed * 1e3:.0f}", "yes"])

    table = format_table(
        ["executor", "workers", "batch ms", "identical results"],
        rows,
        title=f"X4: Batch.route_many over {N_LAYOUTS} layouts",
    )
    report("x4_batch", table)
