"""F2 — Figure 2: the inverted corner.

"By detecting the inverted corner and penalizing the non-preferred
route in the cost function calculation we can cause the router to
always take the preferred route."  This bench reconstructs the Figure
2 situation (a route rounding a block corner with two equal-length
candidates) and measures how often each cost model picks the
preferred, boundary-hugging corner — the epsilon model must pick it
100% of the time.
"""

import random

from repro.core.costs import InvertedCornerCost, WirelengthCost
from repro.core.pathfinder import PathRequest, find_path
from repro.core.route import TargetSet
from repro.geometry.point import Point
from repro.geometry.raytrace import ObstacleSet
from repro.geometry.rect import Rect
from repro.analysis.tables import format_table

from benchmarks.workloads import report

BOUND = Rect(0, 0, 100, 100)


def bends_on_boundary(path, obs) -> bool:
    """True when every bend of *path* sits on a cell/surface boundary."""
    pts = path.points
    for prev, here, nxt in zip(pts, pts[1:], pts[2:]):
        straight = (prev.x == here.x == nxt.x) or (prev.y == here.y == nxt.y)
        if straight:
            continue
        on_boundary = any(r.on_boundary(here) for r in obs.rects) or obs.bound.on_boundary(
            here
        )
        if not on_boundary:
            return False
    return True


def corner_scene(seed: int) -> tuple[ObstacleSet, Point, Point]:
    """A corner-rounding scene with a genuine equal-length tie.

    A block sits on the floor; the destination lies beyond it at a
    height below the block's top.  The route must climb over, then
    descend — either hugging the block's right edge down to the goal
    height (every bend on a boundary: Figure 2's preferred route), or
    overshooting east and descending at the goal column, which bends in
    free space (the inverted corner).  Both candidates have identical
    length, so only the epsilon distinguishes them.
    """
    rng = random.Random(seed)
    x0 = rng.randint(25, 40)
    top = rng.randint(30, 50)
    block = Rect(x0, 0, x0 + rng.randint(15, 25), top)
    obs = ObstacleSet(BOUND, [block])
    # Endpoints sit high on either side so climbing over the top is
    # strictly cheaper than ducking under along the floor.
    s = Point(rng.randint(0, x0 - 5), top - rng.randint(3, 8))
    d = Point(rng.randint(block.x1 + 10, 100), top - rng.randint(10, 20))
    return obs, s, d


def route_once(obs, s, d, model):
    return find_path(
        PathRequest(
            obstacles=obs, sources=[(s, 0.0)], targets=TargetSet(points=[d]),
            cost_model=model,
        )
    )


def bench_fig2_inverted_corner(benchmark):
    scenes = [corner_scene(seed) for seed in range(40)]

    def run_epsilon():
        hugged = 0
        for obs, s, d in scenes:
            model = InvertedCornerCost(obs, epsilon=1 / 16)
            result = route_once(obs, s, d, model)
            if bends_on_boundary(result.path, obs):
                hugged += 1
        return hugged

    hugged_eps = benchmark(run_epsilon)

    hugged_plain = 0
    length_equal = 0
    for obs, s, d in scenes:
        plain = route_once(obs, s, d, WirelengthCost())
        eps = route_once(obs, s, d, InvertedCornerCost(obs, epsilon=1 / 16))
        if bends_on_boundary(plain.path, obs):
            hugged_plain += 1
        if plain.path.length == eps.path.length:
            length_equal += 1

    table = format_table(
        ["cost model", "preferred-corner routes", "scenes"],
        [
            ["wirelength only", hugged_plain, len(scenes)],
            ["inverted-corner epsilon", hugged_eps, len(scenes)],
        ],
        title=(
            "F2: inverted corner — routes whose every bend hugs a boundary\n"
            f"(epsilon never changes lengths: {length_equal}/{len(scenes)} equal)"
        ),
    )
    report("fig2_inverted_corner", table)

    assert hugged_eps == len(scenes)  # "always take the preferred route"
    assert length_equal == len(scenes)  # epsilon below coordinate resolution
