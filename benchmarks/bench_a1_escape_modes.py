"""A1 — ablation: FULL vs AGGRESSIVE successor generation.

DESIGN.md §3 documents the two readings of the paper's successor rule.
This ablation quantifies the trade: nodes expanded/generated and wall
time per mode, plus the optimality agreement between them.
"""

import time

from repro.core.escape import EscapeMode
from repro.core.pathfinder import PathRequest, find_path
from repro.core.route import TargetSet
from repro.analysis.tables import format_table

from benchmarks.workloads import corner_pair, report, scaling_layout


def bench_a1_escape_modes(benchmark):
    sizes = (10, 20, 40, 60)
    cases = []
    for n in sizes:
        layout = scaling_layout(n, seed=n + 7)
        s, d = corner_pair(layout, seed=n)
        cases.append((n, layout.obstacles(), s, d))

    def run_aggressive():
        return [
            find_path(
                PathRequest(
                    obstacles=obs,
                    sources=[(s, 0.0)],
                    targets=TargetSet(points=[d]),
                    mode=EscapeMode.AGGRESSIVE,
                )
            )
            for _n, obs, s, d in cases
        ]

    aggressive_results = benchmark(run_aggressive)

    rows = []
    equal_lengths = 0
    for (n, obs, s, d), aggressive in zip(cases, aggressive_results):
        t0 = time.perf_counter()
        full = find_path(
            PathRequest(
                obstacles=obs, sources=[(s, 0.0)], targets=TargetSet(points=[d]),
                mode=EscapeMode.FULL,
            )
        )
        t_full = time.perf_counter() - t0
        equal_lengths += int(full.path.length == aggressive.path.length)
        rows.append(
            [
                n,
                full.stats.nodes_expanded,
                aggressive.stats.nodes_expanded,
                full.stats.nodes_generated,
                aggressive.stats.nodes_generated,
                f"{t_full * 1e3:.2f}",
                "yes" if full.path.length == aggressive.path.length else "NO",
            ]
        )
    table = format_table(
        ["cells", "FULL expanded", "AGGR expanded", "FULL generated",
         "AGGR generated", "FULL ms", "equal length"],
        rows,
        title="A1: escape-mode ablation (AGGRESSIVE = the paper's two literal rules)",
    )
    report("a1_escape_modes", table)

    assert equal_lengths == len(cases)
