"""X3 — negotiated congestion vs the two-pass sketch, plus worker fan-out.

Two claims are measured.  First, legalization power: on over-subscribed
narrow-passage workloads the Conclusions' two-pass scheme plateaus
(one penalized repass just pushes the affected nets somewhere else),
while the PathFinder-style negotiation (:mod:`repro.core.negotiate`)
iterates with accumulating history until the passages fit.  Second,
the parallel fan-out: because each pass is order-invariant (E7), the
first pass partitions over worker processes with byte-identical trees;
the table reports wall times per worker count on the node-scaling
workload (speedup appears on multicore hosts — single-core CI boxes
only pay the pool overhead).
"""

import time

from repro.core.negotiate import NegotiatedRouter, NegotiationConfig
from repro.core.router import GlobalRouter, RouterConfig
from repro.analysis.tables import format_table

from benchmarks.workloads import congested_layout, netted_layout, report


def bench_x3_negotiation(benchmark):
    # --- legalization: negotiation vs two-pass on rising pressure ----
    rows = []
    for n_nets in (12, 16, 20, 24):
        layout = congested_layout(n_nets=n_nets, seed=5, gap=3)
        two_pass = GlobalRouter(layout)._two_pass(penalty_weight=4.0, passes=2)
        result = NegotiatedRouter(
            layout, negotiation=NegotiationConfig(max_iterations=30)
        ).run()
        rows.append(
            [
                n_nets,
                result.congestion_before.total_overflow,
                two_pass.congestion_after.total_overflow,
                result.congestion_after.total_overflow,
                result.iteration_count,
                "yes" if result.converged else "no",
                result.first.total_length,
                result.final.total_length,
            ]
        )
    table = format_table(
        ["nets", "first-pass ovf", "two-pass ovf", "negotiated ovf",
         "iters", "legal", "wl first", "wl final"],
        rows,
        title="X3a: negotiated rip-up-and-reroute vs the two-pass sketch",
    )
    report("x3_negotiation", table)

    # At least one workload two-pass leaves illegal must legalize.
    assert any(r[2] > 0 and r[3] == 0 for r in rows)

    # --- parallel fan-out: first-pass wall time per worker count -----
    layout = netted_layout(24, 20, seed=11)
    serial = GlobalRouter(layout).route_all()

    def run_serial():
        return GlobalRouter(layout).route_all()

    benchmark(run_serial)

    scale_rows = []
    for workers in (1, 2, 4):
        config = RouterConfig(workers=workers)
        t0 = time.perf_counter()
        route = GlobalRouter(layout, config).route_all()
        elapsed = time.perf_counter() - t0
        identical = all(
            [p.points for p in route.tree(name).paths]
            == [p.points for p in serial.tree(name).paths]
            for name in serial.trees
        )
        assert identical, f"workers={workers} diverged from the serial route"
        scale_rows.append([workers, f"{elapsed * 1e3:.1f}", "yes"])
    scale_table = format_table(
        ["workers", "first pass ms", "identical trees"],
        scale_rows,
        title="X3b: parallel net fan-out (order-invariance makes it exact)",
    )
    report("x3_parallel_fanout", scale_table)
