"""E9 — Hightower quick-try plus full maze-search fallback.

"Some routers use Hightower's algorithm for a quick first try, and if
it fails, then the full power of the Lee–Moore maze search algorithm
is used."  Sweeping obstacle density: the probe's completion rate,
its optimality gap when it does connect, and the cost profile of the
combined strategy.
"""

import random
import time

from repro.core.pathfinder import PathRequest, find_path
from repro.core.route import TargetSet
from repro.baselines.fallback import route_with_fallback
from repro.baselines.hightower import hightower_route
from repro.analysis.tables import format_table

from benchmarks.workloads import random_free_pair, report, scaling_layout

CASES_PER_DENSITY = 12


def bench_e9_hightower_fallback(benchmark):
    densities = (5, 12, 25, 45)
    scenarios = []
    for n_cells in densities:
        layout = scaling_layout(n_cells, seed=n_cells + 1)
        obs = layout.obstacles()
        rng = random.Random(n_cells)
        pairs = [random_free_pair(obs, rng) for _ in range(CASES_PER_DENSITY)]
        scenarios.append((n_cells, obs, pairs))

    def run_fallback_everywhere():
        results = []
        for _n, obs, pairs in scenarios:
            for s, d in pairs:
                results.append(route_with_fallback(obs, s, d, max_level=3, max_lines=48))
        return results

    benchmark(run_fallback_everywhere)

    rows = []
    for n_cells, obs, pairs in scenarios:
        found = 0
        quick_found = 0
        optimal = 0
        gap_total = 0.0
        t_probe = 0.0
        t_astar = 0.0
        for s, d in pairs:
            quick = hightower_route(obs, s, d, max_level=1, max_lines=8)
            quick_found += int(quick.found)
            t0 = time.perf_counter()
            probe = hightower_route(obs, s, d, max_level=3, max_lines=48)
            t_probe += time.perf_counter() - t0
            t0 = time.perf_counter()
            astar = find_path(
                PathRequest(
                    obstacles=obs, sources=[(s, 0.0)], targets=TargetSet(points=[d])
                )
            )
            t_astar += time.perf_counter() - t0
            if probe.found:
                found += 1
                optimal += int(probe.path.length == astar.path.length)
                gap_total += probe.path.length / max(1, astar.path.length)
        rows.append(
            [
                n_cells,
                f"{quick_found}/{len(pairs)}",
                f"{found}/{len(pairs)}",
                f"{optimal}/{found}" if found else "-",
                f"{gap_total / found:.3f}" if found else "-",
                f"{t_probe * 1e3:.1f}",
                f"{t_astar * 1e3:.1f}",
            ]
        )
    table = format_table(
        ["cells", "quick probe found", "probe found", "probe optimal",
         "mean len ratio", "probe ms", "A* ms"],
        rows,
        title=(
            "E9: line probe completion/quality vs admissible line-search A*\n"
            "(quick probe: 1 escape level, 8 lines — the 'fast first try')"
        ),
    )
    report("e9_hightower_fallback", table)
