"""E6 — the congestion cost function and two-pass routing.

"A first-pass route of all nets would reveal congested areas. ... A
second route of the affected nets could penalize those paths which
chose the congested area."  Measured on the narrow-passage grid
workload: passage overflow and peak utilization before/after, plus the
wirelength paid for the relief, across pass counts.
"""

from repro.core.router import GlobalRouter
from repro.analysis.tables import format_table

from benchmarks.workloads import congested_layout, report


def bench_e6_congestion(benchmark):
    layout = congested_layout(n_nets=24, seed=5, gap=3)

    def run_two_pass():
        return GlobalRouter(layout)._two_pass(penalty_weight=4.0, passes=2)

    two_pass = benchmark(run_two_pass)

    rows = [
        [
            "1 (no feedback)",
            two_pass.congestion_before.total_overflow,
            f"{two_pass.congestion_before.max_utilization:.2f}",
            two_pass.first.total_length,
            0,
        ]
    ]
    for passes in (2, 4, 6):
        result = GlobalRouter(layout)._two_pass(penalty_weight=4.0, passes=passes)
        rows.append(
            [
                passes,
                result.congestion_after.total_overflow,
                f"{result.congestion_after.max_utilization:.2f}",
                result.final.total_length,
                len(result.rerouted_nets),
            ]
        )

    table = format_table(
        ["passes", "total overflow", "peak util", "wirelength", "nets rerouted"],
        rows,
        title="E6: congestion-penalized repasses on the narrow-passage grid",
    )
    report("e6_congestion", table)

    assert (
        two_pass.congestion_after.total_overflow
        <= two_pass.congestion_before.total_overflow
    )
