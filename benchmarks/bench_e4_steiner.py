"""E4 — multi-terminal nets: the Steiner adaptation vs pin-only trees.

"The modification of the spanning tree algorithm considers all line
segments in the spanning tree being built as potential connection
points.  A spanning tree would only consider the pins (vertices)."
This bench quantifies the wirelength advantage per terminal count.
"""

import random

from repro.core.pathfinder import PathRequest, find_path
from repro.core.route import TargetSet
from repro.core.steiner import route_net
from repro.geometry.point import Point
from repro.layout.net import Net
from repro.layout.terminal import Terminal
from repro.analysis.tables import format_table

from benchmarks.workloads import report, scaling_layout


def pin_only_tree_length(net: Net, obstacles) -> int:
    """Baseline: grow the tree allowing connections at *pins only*."""
    remaining = list(net.terminals)
    seed = remaining.pop(0)
    connected_points = [p.location for p in seed.pins]
    total = 0
    while remaining:
        remaining.sort(
            key=lambda t: min(
                loc.manhattan(c) for loc in t.locations for c in connected_points
            )
        )
        terminal = remaining.pop(0)
        result = find_path(
            PathRequest(
                obstacles=obstacles,
                sources=[(loc, 0.0) for loc in terminal.locations],
                targets=TargetSet(points=connected_points),
            )
        )
        total += result.path.length
        connected_points.extend(loc for loc in terminal.locations)
        connected_points.extend(result.path.points)
    return total


def make_net(layout, k: int, seed: int) -> Net:
    rng = random.Random(seed)
    obs = layout.obstacles()
    outline = layout.outline
    terminals = []
    while len(terminals) < k:
        p = Point(
            rng.randint(outline.x0, outline.x1), rng.randint(outline.y0, outline.y1)
        )
        if obs.point_free(p):
            terminals.append(Terminal.single(f"t{len(terminals)}", p))
    return Net(f"net{seed}", terminals)


def bench_e4_steiner(benchmark):
    layout = scaling_layout(10, seed=3)
    obs = layout.obstacles()
    terminal_counts = (3, 5, 7, 10)
    nets = {k: [make_net(layout, k, seed) for seed in range(5)] for k in terminal_counts}

    def run_steiner():
        return {
            k: [route_net(net, obs) for net in group] for k, group in nets.items()
        }

    steiner_results = benchmark(run_steiner)

    rows = []
    for k in terminal_counts:
        steiner_total = sum(t.total_length for t in steiner_results[k])
        pin_total = sum(pin_only_tree_length(net, obs) for net in nets[k])
        rows.append(
            [
                k,
                steiner_total,
                pin_total,
                f"{100 * (pin_total - steiner_total) / pin_total:.1f}%",
            ]
        )
    table = format_table(
        ["terminals", "segment-Steiner length", "pin-only tree length", "saving"],
        rows,
        title="E4: Steiner adaptation (segments as connection points) vs pin-only",
    )
    report("e4_steiner", table)

    for k in terminal_counts:
        steiner_total = sum(t.total_length for t in steiner_results[k])
        pin_total = sum(pin_only_tree_length(net, obs) for net in nets[k])
        assert steiner_total <= pin_total
