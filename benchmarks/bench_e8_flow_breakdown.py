"""E8 — phase time breakdown of the full flow.

"The processor time consumed by global routing is always less than the
time consumed by detailed routing and layer assignment."  The bench
runs global + detailed routing across layout sizes and reports both
phases' wall time.  Note (EXPERIMENTS.md): on our substrate the ratio
direction depends on implementation constants — we report the measured
shape honestly either way.
"""

import time

from repro.core.router import GlobalRouter
from repro.detail.detailed import DetailedRouter
from repro.analysis.tables import format_table

from benchmarks.workloads import netted_layout, report


def bench_e8_flow_breakdown(benchmark):
    sizes = ((8, 8), (14, 14), (20, 22), (26, 30))
    layouts = [netted_layout(cells, nets, seed=cells) for cells, nets in sizes]

    def run_full_flow():
        out = []
        for layout in layouts:
            t0 = time.perf_counter()
            global_route = GlobalRouter(layout).route_all()
            t_global = time.perf_counter() - t0
            t0 = time.perf_counter()
            detailed = DetailedRouter(layout).run(global_route)
            t_detail = time.perf_counter() - t0
            out.append((layout, global_route, detailed, t_global, t_detail))
        return out

    flows = benchmark.pedantic(run_full_flow, rounds=3, iterations=1)

    rows = []
    for layout, global_route, detailed, t_global, t_detail in flows:
        rows.append(
            [
                f"{len(layout.cells)}c/{len(layout.nets)}n",
                f"{t_global * 1e3:.1f}",
                f"{t_detail * 1e3:.1f}",
                f"{t_global / max(t_detail, 1e-9):.2f}",
                global_route.total_length,
                detailed.total_wirelength,
                detailed.via_count,
            ]
        )
    table = format_table(
        ["layout", "global ms", "detailed ms", "global/detailed",
         "global len", "detailed len", "vias"],
        rows,
        title="E8: phase breakdown (paper: global < detailed)",
    )
    report("e8_flow_breakdown", table)

    for layout, global_route, detailed, _tg, _td in flows:
        assert global_route.routed_count == len(layout.nets)
        assert detailed.total_wirelength >= global_route.total_length
