#!/usr/bin/env python
"""Service load bench: N concurrent clients through the real HTTP frontend.

The service's scaling pitch is the worker tier: routing is CPU-bound
pure Python, so thread workers serialize on the GIL while
``--executor process`` spreads concurrent jobs across cores.  This
bench pins that claim with real traffic — a live
:class:`~repro.service.server.RoutingServer` on an ephemeral TCP port,
N client threads each long-polling distinct requests (distinct cache
keys: every submission is a genuine routing run, no cache hits, no
coalescing) — across the executor × store matrix:

======================  =====================================================
configuration           what it isolates
======================  =====================================================
``thread+memory``       the GIL-bound baseline (PR 5 behavior)
``process+memory``      the worker-tier speedup, same in-memory store
``thread+sqlite``       the durable store's overhead on the serial tier
``process+sqlite``      the production pairing: multi-core and restart-safe
======================  =====================================================

Per configuration it records wall time, throughput (requests/s), p50
and p95 request latency (submit → terminal, client-observed), and a
byte-identity verdict: one probe request is routed in-process through
:class:`RoutingPipeline` and its
:func:`~repro.scenarios.conformance.route_fingerprint` must match what
came over the wire.  Two gates apply on every run:

* **identity** — every configuration must match the in-process
  fingerprint (a worker tier that changes results is wrong, not fast);
* **throughput** — on a multi-core box, ``process+memory`` must beat
  ``thread+memory`` on the full workload; on a single-core box the
  comparison is physically meaningless (same serial CPU plus IPC), so
  the gate degrades to an overhead bound — the process tier may not
  cost more than :data:`SINGLE_CORE_OVERHEAD_FLOOR` of thread
  throughput.  The artifact records ``cpu_cores`` so a reader knows
  which gate a committed baseline ran under.  Quick mode reports the
  ratio but never gates: sub-second smoke workloads are dominated by
  pool spin-up.

Usage (from the repository root)::

    PYTHONPATH=src python benchmarks/bench_service_load.py            # full
    PYTHONPATH=src python benchmarks/bench_service_load.py --quick    # CI smoke
    PYTHONPATH=src python benchmarks/bench_service_load.py --quick \\
        --check BENCH_service.json                                    # gate

With ``--check BASELINE``, each configuration's wall time is compared
against the recorded baseline and the driver exits non-zero past
``--max-regression`` (default 3x — the same deliberately loose wall
gate as ``run_suite.py``: it catches blowups, not CI-box jitter).
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib
import platform
import sys
import tempfile
import threading
import time
from concurrent.futures import ThreadPoolExecutor

_REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
for entry in (str(_REPO_ROOT), str(_REPO_ROOT / "src")):
    if entry not in sys.path:
        sys.path.insert(0, entry)

from repro.api.pipeline import RoutingPipeline  # noqa: E402
from repro.api.request import RouteRequest  # noqa: E402
from repro.layout.generators import LayoutSpec, random_layout  # noqa: E402
from repro.scenarios.conformance import route_fingerprint  # noqa: E402
from repro.service import Client, RoutingService, make_server  # noqa: E402
from repro.service.metrics import percentile  # noqa: E402

SCHEMA_VERSION = 1

#: On one core the process tier can only lose (serialization + IPC on
#: the same serial CPU); below half of thread throughput that loss is
#: an overhead bug, not physics.
SINGLE_CORE_OVERHEAD_FLOOR = 0.5

#: The executor × store matrix, in reporting order.
CONFIGURATIONS = (
    ("thread+memory", "thread", "memory"),
    ("process+memory", "process", "memory"),
    ("thread+sqlite", "thread", "sqlite"),
    ("process+sqlite", "process", "sqlite"),
)


def _requests(clients: int, per_client: int, spec: LayoutSpec) -> list[list[RouteRequest]]:
    """Distinct layouts per (client, slot): every submission routes."""
    return [
        [
            RouteRequest(
                layout=random_layout(spec, seed=1 + client * per_client + slot)
            )
            for slot in range(per_client)
        ]
        for client in range(clients)
    ]


def run_configuration(
    *,
    executor: str,
    store_backend: str,
    clients: int,
    batches: list[list[RouteRequest]],
    reference_fingerprint: str,
    wait_timeout: float = 300.0,
) -> dict:
    """Drive one executor+store pairing over real HTTP; return its row."""
    with tempfile.TemporaryDirectory(prefix="bench-service-") as tmp:
        store = (
            "memory" if store_backend == "memory" else f"sqlite:{tmp}/bench.db"
        )
        service = RoutingService(
            workers=clients,
            queue_limit=max(32, 2 * clients * len(batches[0])),
            executor=executor,
            store=store,
        )
        server = make_server(service, port=0)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        url = f"http://127.0.0.1:{server.server_address[1]}"
        latencies: list[float] = []
        latency_lock = threading.Lock()

        def drive(batch: list[RouteRequest]) -> str:
            client = Client(url, timeout=30.0)
            fingerprint = ""
            for request in batch:
                started = time.perf_counter()
                result = client.route(request, wait_timeout=wait_timeout)
                elapsed = time.perf_counter() - started
                with latency_lock:
                    latencies.append(elapsed)
                # The first client's first request doubles as the
                # identity probe (seed 1 — the reference request).
                if not fingerprint:
                    fingerprint = route_fingerprint(result.route)
            return fingerprint

        # Warm the tier outside the timed window: process pools fork
        # lazily on first submit, and that one-time cost is startup,
        # not throughput.
        warm = Client(url, timeout=30.0)
        warm.route(batches[0][0], wait_timeout=wait_timeout)
        service.cache.clear()

        wall_started = time.perf_counter()
        with ThreadPoolExecutor(max_workers=clients) as pool:
            fingerprints = list(pool.map(drive, batches))
        wall = time.perf_counter() - wall_started

        snapshot = service.snapshot()
        server.shutdown()
        server.server_close()
        thread.join(timeout=10)
        service.close()

    total = sum(len(batch) for batch in batches)
    return {
        "executor": executor,
        "store": store_backend,
        "clients": clients,
        "requests": total,
        "wall_seconds": wall,
        "throughput_rps": total / wall if wall else None,
        "latency_p50_seconds": percentile(latencies, 0.50),
        "latency_p95_seconds": percentile(latencies, 0.95),
        "identical_to_inprocess": fingerprints[0] == reference_fingerprint,
        "completed": snapshot["completed"],
        "failed": snapshot["failed"],
        "worker_restarts": snapshot["worker_restarts"],
    }


def run_suite(*, quick: bool = False) -> dict[str, dict]:
    """The full matrix; see :data:`CONFIGURATIONS`."""
    if quick:
        clients, per_client = 2, 2
        spec = LayoutSpec(n_cells=6, n_nets=6)
    else:
        clients, per_client = 4, 5
        spec = LayoutSpec(n_cells=14, n_nets=16)
    batches = _requests(clients, per_client, spec)
    reference = RoutingPipeline().run(batches[0][0])
    reference_fingerprint = route_fingerprint(reference.route)
    results: dict[str, dict] = {}
    for name, executor, store_backend in CONFIGURATIONS:
        results[name] = run_configuration(
            executor=executor,
            store_backend=store_backend,
            clients=clients,
            batches=batches,
            reference_fingerprint=reference_fingerprint,
        )
    return results


def _load_baseline(path: pathlib.Path) -> dict | None:
    try:
        data = json.loads(path.read_text(encoding="utf-8"))
    except FileNotFoundError:
        return None
    except (OSError, json.JSONDecodeError) as exc:
        print(f"bench_service_load: unreadable baseline {path}: {exc}", file=sys.stderr)
        return None
    if data.get("schema") != SCHEMA_VERSION:
        print(
            f"bench_service_load: baseline {path} has schema "
            f"{data.get('schema')!r}, expected {SCHEMA_VERSION}; "
            f"skipping regression check",
            file=sys.stderr,
        )
        return None
    return data


def _check_regressions(
    baseline: dict, current: dict[str, dict], max_regression: float
) -> list[str]:
    failures: list[str] = []
    for name, entry in current.items():
        base_entry = baseline.get("configurations", {}).get(name)
        if base_entry is None:
            continue
        base_wall = base_entry.get("wall_seconds")
        new_wall = entry.get("wall_seconds")
        if base_wall and new_wall:
            ratio = new_wall / base_wall
            verdict = "REGRESSED" if ratio > max_regression else "ok"
            print(
                f"  {name}: wall {base_wall:.3f}s -> {new_wall:.3f}s "
                f"({ratio:.2f}x, limit {max_regression:.1f}x) {verdict}"
            )
            if ratio > max_regression:
                failures.append(
                    f"{name}: wall {ratio:.2f}x over baseline "
                    f"(limit {max_regression:.1f}x)"
                )
    return failures


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true",
        help="small workload for CI smoke (throughput gate reports, not fails)",
    )
    parser.add_argument(
        "--out", type=pathlib.Path, default=_REPO_ROOT / "BENCH_service.json",
        help="where to write the JSON artifact (default: repo-root BENCH_service.json)",
    )
    parser.add_argument(
        "--check", type=pathlib.Path, default=None, metavar="BASELINE",
        help="compare against a recorded baseline JSON; exit 1 on regression",
    )
    parser.add_argument(
        "--max-regression", type=float, default=3.0,
        help="allowed wall-time ratio over the baseline before failing (default 3.0)",
    )
    args = parser.parse_args(argv)

    baseline = _load_baseline(args.check) if args.check else None

    mode = "quick" if args.quick else "full"
    print(f"bench_service_load: service load suite ({mode}) ...")
    results = run_suite(quick=args.quick)
    for name, entry in results.items():
        print(
            f"  {name}: {entry['requests']} requests / "
            f"{entry['wall_seconds']:.3f}s = {entry['throughput_rps']:.2f} req/s "
            f"(p50 {entry['latency_p50_seconds']:.3f}s, "
            f"p95 {entry['latency_p95_seconds']:.3f}s, "
            f"identical={entry['identical_to_inprocess']})"
        )

    broken = [n for n, e in results.items() if not e["identical_to_inprocess"]]
    if broken:
        print(
            f"bench_service_load: tier changed routed results on: {broken}",
            file=sys.stderr,
        )
        return 1
    failed_jobs = [n for n, e in results.items() if e["failed"]]
    if failed_jobs:
        print(
            f"bench_service_load: jobs failed under load on: {failed_jobs}",
            file=sys.stderr,
        )
        return 1

    speedup = (
        results["process+memory"]["throughput_rps"]
        / results["thread+memory"]["throughput_rps"]
    )
    try:
        cores = len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        cores = os.cpu_count() or 1
    print(
        f"bench_service_load: process/thread throughput ratio {speedup:.2f}x "
        f"on {cores} core(s)"
    )
    if not args.quick:
        floor = 1.0 if cores > 1 else SINGLE_CORE_OVERHEAD_FLOOR
        if speedup < floor:
            print(
                f"bench_service_load: process tier at {speedup:.2f}x of thread "
                f"throughput, below the {floor:.2f}x floor for {cores} core(s)",
                file=sys.stderr,
            )
            return 1
        if cores == 1:
            print(
                "bench_service_load: single core — gating process-tier "
                "overhead only; rerun on a multi-core box to measure the "
                "speedup itself"
            )

    payload = {
        "schema": SCHEMA_VERSION,
        "suite": "service-load",
        "mode": mode,
        "python": platform.python_version(),
        "cpu_cores": cores,
        "process_over_thread_throughput": speedup,
        "configurations": results,
    }
    args.out.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    print(f"bench_service_load: wrote {args.out}")

    if baseline is not None:
        print(f"bench_service_load: regression check against {args.check}")
        failures = _check_regressions(baseline, results, args.max_regression)
        if failures:
            for failure in failures:
                print(f"bench_service_load: REGRESSION {failure}", file=sys.stderr)
            return 1
        print("bench_service_load: no regressions")
    elif args.check:
        print("bench_service_load: no usable baseline; skipping regression check")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
