"""Shared workloads and reporting helpers for the benchmark harness."""

from __future__ import annotations

import pathlib
import random

from repro.geometry.point import Point
from repro.geometry.raytrace import ObstacleSet
from repro.layout.generators import LayoutSpec, grid_layout, random_layout, random_netlist
from repro.layout.layout import Layout

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def report(name: str, text: str) -> None:
    """Print a result table and persist it under benchmarks/results/."""
    print()
    print(text)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n", encoding="utf-8")


def scaling_layout(n_cells: int, seed: int = 0) -> Layout:
    """A density-controlled layout for node-count scaling sweeps."""
    return random_layout(
        LayoutSpec(n_cells=n_cells, n_nets=0, cell_min=8, cell_max=20, density=0.30),
        seed=seed,
    )


def corner_pair(layout: Layout, seed: int = 0) -> tuple[Point, Point]:
    """A long, *obstructed* source/destination pair.

    Prefers pairs whose two direct L-shaped routes are both blocked, so
    the search actually has to work (an unobstructed pair expands just
    two nodes and tells the scaling sweep nothing).
    """
    from repro.geometry.segment import Segment

    rng = random.Random(seed)
    obs = layout.obstacles()
    outline = layout.outline

    def random_free(lo_frac: float, hi_frac: float) -> Point:
        for _attempt in range(400):
            p = Point(
                outline.x0 + int(outline.width * rng.uniform(lo_frac, hi_frac)),
                outline.y0 + int(outline.height * rng.uniform(lo_frac, hi_frac)),
            )
            if obs.point_free(p):
                return p
        raise RuntimeError("no free point in band")

    def l_routes_blocked(s: Point, d: Point) -> bool:
        via_a = Point(d.x, s.y)
        via_b = Point(s.x, d.y)
        route_a_clear = (
            obs.point_free(via_a)
            and obs.segment_free(Segment(s, via_a))
            and obs.segment_free(Segment(via_a, d))
        )
        route_b_clear = (
            obs.point_free(via_b)
            and obs.segment_free(Segment(s, via_b))
            and obs.segment_free(Segment(via_b, d))
        )
        return not route_a_clear and not route_b_clear

    best: tuple[Point, Point] | None = None
    for _attempt in range(300):
        s = random_free(0.0, 0.25)
        d = random_free(0.75, 1.0)
        if best is None:
            best = (s, d)
        if l_routes_blocked(s, d):
            return (s, d)
    assert best is not None
    return best


def netted_layout(
    n_cells: int,
    n_nets: int,
    seed: int = 0,
    *,
    terminals=(2, 3),
    pins=(1, 1),
    density: float = 0.35,
) -> Layout:
    """A routable random layout with nets attached."""
    return random_layout(
        LayoutSpec(
            n_cells=n_cells,
            n_nets=n_nets,
            terminals_per_net=terminals,
            pins_per_terminal=pins,
            density=density,
        ),
        seed=seed,
    )


def congested_layout(n_nets: int = 24, seed: int = 5, gap: int = 3) -> Layout:
    """The grid-of-macros layout with deliberately narrow passages."""
    layout = grid_layout(3, 3, cell_width=20, cell_height=20, gap=gap, margin=8)
    rng = random.Random(seed)
    spec = LayoutSpec(terminals_per_net=(2, 3), pad_fraction=0.0)
    for net in random_netlist(layout, n_nets, rng=rng, spec=spec):
        layout.add_net(net)
    return layout


def scaled_congested_layout(
    n_nets: int = 200,
    seed: int = 7,
    *,
    rows: int = 6,
    cols: int = 6,
    gap: int = 3,
    terminals: tuple[int, int] = (3, 6),
) -> Layout:
    """The engine-comparison workload: a big macro grid, many fat nets.

    Hundreds of 3-6 terminal nets across a 6x6 macro grid is where the
    batched engines earn their keep — multi-terminal nets make the
    scalar per-node heuristic loop walk every tree segment in Python,
    while the vectorized engine prices whole expansion rays per numpy
    call.  Small two-terminal workloads understate the gap (per-batch
    overhead dominates), so the tracked engine speedup is measured
    here.
    """
    layout = grid_layout(rows, cols, cell_width=20, cell_height=20, gap=gap, margin=8)
    rng = random.Random(seed)
    spec = LayoutSpec(terminals_per_net=terminals, pad_fraction=0.0)
    for net in random_netlist(layout, n_nets, rng=rng, spec=spec):
        layout.add_net(net)
    return layout


def random_free_pair(obs: ObstacleSet, rng: random.Random) -> tuple[Point, Point]:
    """Two routable points on an obstacle set."""
    bound = obs.bound

    def pick() -> Point:
        while True:
            p = Point(rng.randint(bound.x0, bound.x1), rng.randint(bound.y0, bound.y1))
            if obs.point_free(p):
                return p

    return pick(), pick()
