#!/usr/bin/env python
"""X6 — incremental re-routing speedup, measured and gated.

The incremental engine's pitch is arithmetic: a delta dirtying ``k``
of ``n`` nets should pay for ``k`` searches, not ``n``.  This bench
pins that claim on tracked workloads and emits
``BENCH_incremental.json`` so the trajectory is auditable PR over PR:

* **speedup** — ``RoutingPipeline.reroute`` vs routing the mutated
  layout from scratch, same strategy and config, best-of-N walls.
  Workloads with ``gated: True`` (every ≤10%-dirty workload, corpus
  scenarios included) must reroute at least
  :data:`SPEEDUP_FLOOR` times faster.
* **identity** — the deltas here are net replacements
  (:func:`repro.incremental.scripts.replace_nets_delta`): geometry is
  untouched, so for the order-independent ``single`` strategy the
  reroute must land byte-identical to from-scratch.  Recorded (not
  gated) for ``negotiated``.

Usage (from the repository root)::

    PYTHONPATH=src python benchmarks/bench_x6_incremental.py            # full
    PYTHONPATH=src python benchmarks/bench_x6_incremental.py --quick    # CI smoke
    PYTHONPATH=src python benchmarks/bench_x6_incremental.py --quick \\
        --check BENCH_incremental.json                                  # gate

With ``--check BASELINE``, reroute wall times are compared workload by
workload against the recorded baseline and the driver exits non-zero
past ``--max-regression`` (default 3x, the same deliberately loose
wall gate as ``run_suite.py`` — it catches algorithmic blowups, not
CI-box jitter).  The speedup floor and the identity gate apply on
every run, baseline or not.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import platform
import sys
import time

_REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
for entry in (str(_REPO_ROOT), str(_REPO_ROOT / "src")):
    if entry not in sys.path:
        sys.path.insert(0, entry)

from repro.api.pipeline import RoutingPipeline  # noqa: E402
from repro.api.request import RouteRequest  # noqa: E402
from repro.api.rerouting import RerouteRequest  # noqa: E402
from repro.core.router import RouterConfig  # noqa: E402
from repro.incremental.scripts import replace_nets_delta  # noqa: E402
from repro.scenarios import load_corpus, route_fingerprint  # noqa: E402

from benchmarks.workloads import congested_layout, netted_layout  # noqa: E402

SCHEMA_VERSION = 1

#: A ≤10%-dirty reroute slower than a third of from-scratch means the
#: warm start is not actually skipping the kept work.
SPEEDUP_FLOOR = 3.0

#: Best-of-N wall measurements; the workloads are millisecond-scale,
#: so the minimum is the honest estimate of the work itself.
REPEATS = 5

#: Workload definitions.  ``dirty`` nets are replaced verbatim via
#: ``replace_nets_delta`` — the mutated layout equals the base layout,
#: which makes the dirty fraction an exact dial and keeps from-scratch
#: a perfect oracle.  ``gated`` marks the ≤10%-dirty workloads the
#: speedup floor applies to.
WORKLOADS: dict[str, dict] = {
    # measure_congestion off on both sides: at 10 nets the diagnostic
    # congestion pass is a fixed cost that drowns the 10:1 routing
    # ratio in timer noise; the A/B stays fair (same params each side).
    "corpus_hotspot_s59_single": {
        "kind": "corpus",
        "scenario": "congestion-hotspot-s59",
        "strategy": "single",
        "params": {"measure_congestion": False},
        "dirty": 1,
        "gated": True,
    },
    "corpus_hotspot_s59_negotiated": {
        "kind": "corpus",
        "scenario": "congestion-hotspot-s59",
        "strategy": "negotiated",
        "params": {"max_iterations": 8},
        "dirty": 1,
        "gated": True,
    },
    "random_single_60n_10pct": {
        "kind": "random",
        "cells": 40,
        "nets": 60,
        "seed": 7,
        "strategy": "single",
        "params": {},
        "dirty": 6,
        "gated": True,
    },
    "random_single_60n_30pct": {
        "kind": "random",
        "cells": 40,
        "nets": 60,
        "seed": 7,
        "strategy": "single",
        "params": {},
        "dirty": 18,
        "gated": False,
    },
    "negotiated_grid_16_6pct": {
        "kind": "grid",
        "nets": 16,
        "seed": 5,
        "gap": 3,
        "strategy": "negotiated",
        "params": {"max_iterations": 10},
        "dirty": 1,
        "gated": True,
    },
    # The base negotiation does not converge here (residual overflow),
    # so the warm start must keep negotiating — the regime with the
    # least skippable work.  Informational, not gated.
    "negotiated_grid_24_8pct": {
        "kind": "grid",
        "nets": 24,
        "seed": 5,
        "gap": 3,
        "strategy": "negotiated",
        "params": {"max_iterations": 10},
        "dirty": 2,
        "gated": False,
    },
}

QUICK_WORKLOADS = ("corpus_hotspot_s59_single", "negotiated_grid_16_6pct")


def _layout(spec: dict):
    if spec["kind"] == "corpus":
        for scenario in load_corpus():
            if scenario.name == spec["scenario"]:
                return scenario.layout
        raise RuntimeError(f"corpus scenario {spec['scenario']!r} not found")
    if spec["kind"] == "random":
        return netted_layout(spec["cells"], spec["nets"], seed=spec["seed"])
    return congested_layout(n_nets=spec["nets"], seed=spec["seed"], gap=spec["gap"])


def _best_wall(fn) -> tuple[float, object]:
    """Minimum wall over :data:`REPEATS` runs, plus the last result."""
    best = float("inf")
    result = None
    for _ in range(REPEATS):
        started = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - started)
    return best, result


def run_workload(spec: dict) -> dict:
    """Measure reroute vs from-scratch for one workload."""
    layout = _layout(spec)
    base_request = RouteRequest(
        layout=layout,
        config=RouterConfig(),
        strategy=spec["strategy"],
        strategy_params=dict(spec["params"]),
        on_unroutable="skip",
        verify=False,
    )
    pipeline = RoutingPipeline()
    base_result = pipeline.run(base_request)
    delta = replace_nets_delta(layout, spec["dirty"])
    reroute_request = RerouteRequest(base=base_request, delta=delta)
    mutated_request = reroute_request.mutated_request()

    wall_scratch, scratch = _best_wall(lambda: pipeline.run(mutated_request))
    wall_reroute, rerouted = _best_wall(
        lambda: pipeline.reroute(reroute_request, prev_result=base_result)
    )

    n_nets = len(layout.nets)
    return {
        "strategy": spec["strategy"],
        "nets": n_nets,
        "dirty_nets": spec["dirty"],
        "dirty_fraction": round(spec["dirty"] / n_nets, 4) if n_nets else 0.0,
        "gated": spec["gated"],
        "wall_seconds_scratch": round(wall_scratch, 4),
        "wall_seconds_reroute": round(wall_reroute, 4),
        "speedup": round(wall_scratch / wall_reroute, 3) if wall_reroute > 0 else None,
        "kept": int(rerouted.timings.get("kept_nets", 0)),
        "ripped": int(rerouted.timings.get("ripped_nets", 0)),
        "new": int(rerouted.timings.get("new_nets", 0)),
        "failed_nets": len(rerouted.route.failed_nets),
        "identical_to_scratch": (
            route_fingerprint(rerouted.route) == route_fingerprint(scratch.route)
        ),
    }


def run_suite(quick: bool = False) -> dict[str, dict]:
    """Run the (quick or full) workload set; returns per-workload metrics."""
    names = QUICK_WORKLOADS if quick else tuple(WORKLOADS)
    return {name: run_workload(WORKLOADS[name]) for name in names}


def _gate_failures(results: dict[str, dict]) -> list[str]:
    """Machine-independent gates: speedup floor and single identity."""
    failures = []
    for name, entry in results.items():
        if entry["gated"] and (entry["speedup"] or 0) < SPEEDUP_FLOOR:
            failures.append(
                f"{name}: speedup {entry['speedup']}x below floor "
                f"{SPEEDUP_FLOOR}x at {entry['dirty_fraction'] * 100:.0f}% dirty"
            )
        if entry["strategy"] == "single" and not entry["identical_to_scratch"]:
            failures.append(f"{name}: single-strategy reroute diverged from scratch")
    return failures


def _load_baseline(path: pathlib.Path) -> dict | None:
    try:
        data = json.loads(path.read_text(encoding="utf-8"))
    except FileNotFoundError:
        return None
    except (OSError, json.JSONDecodeError) as exc:
        print(f"bench_x6: unreadable baseline {path}: {exc}", file=sys.stderr)
        return None
    if data.get("schema") != SCHEMA_VERSION:
        print(
            f"bench_x6: baseline {path} has schema {data.get('schema')!r}, "
            f"expected {SCHEMA_VERSION}; skipping regression check",
            file=sys.stderr,
        )
        return None
    return data


def _check_regressions(
    baseline: dict, current: dict[str, dict], max_regression: float
) -> list[str]:
    """Reroute wall time vs the recorded baseline, workload by workload."""
    failures = []
    for name, entry in current.items():
        base_entry = baseline.get("workloads", {}).get(name)
        if base_entry is None:
            continue
        base_wall = base_entry.get("wall_seconds_reroute")
        new_wall = entry.get("wall_seconds_reroute")
        if base_wall and new_wall:
            ratio = new_wall / base_wall
            verdict = "REGRESSED" if ratio > max_regression else "ok"
            print(
                f"  {name}: reroute wall {base_wall:.3f}s -> {new_wall:.3f}s "
                f"({ratio:.2f}x, limit {max_regression:.1f}x) {verdict}"
            )
            if ratio > max_regression:
                failures.append(
                    f"{name}: reroute wall {ratio:.2f}x over baseline "
                    f"(limit {max_regression:.1f}x)"
                )
    return failures


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true",
        help="run only the quick workload subset (CI smoke)",
    )
    parser.add_argument(
        "--out", type=pathlib.Path, default=_REPO_ROOT / "BENCH_incremental.json",
        help="where to write the JSON artifact "
             "(default: repo-root BENCH_incremental.json)",
    )
    parser.add_argument(
        "--check", type=pathlib.Path, default=None, metavar="BASELINE",
        help="compare reroute walls against a recorded baseline JSON; "
             "exit 1 on regression",
    )
    parser.add_argument(
        "--max-regression", type=float, default=3.0,
        help="allowed reroute wall-time ratio over the baseline before "
             "failing (default 3.0)",
    )
    args = parser.parse_args(argv)

    baseline = _load_baseline(args.check) if args.check else None

    mode = "quick" if args.quick else "full"
    print(f"bench_x6: incremental suite ({mode}) ...")
    results = run_suite(quick=args.quick)
    for name, entry in results.items():
        print(
            f"  {name}: {entry['dirty_nets']}/{entry['nets']} nets dirty "
            f"({entry['dirty_fraction'] * 100:.0f}%), scratch "
            f"{entry['wall_seconds_scratch']:.3f}s -> reroute "
            f"{entry['wall_seconds_reroute']:.3f}s ({entry['speedup']:.2f}x, "
            f"kept={entry['kept']} ripped={entry['ripped']} new={entry['new']}, "
            f"identical={entry['identical_to_scratch']})"
        )

    payload = {
        "schema": SCHEMA_VERSION,
        "suite": "incremental",
        "mode": mode,
        "python": platform.python_version(),
        "speedup_floor": SPEEDUP_FLOOR,
        "workloads": results,
    }
    args.out.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    print(f"bench_x6: wrote {args.out}")

    failures = _gate_failures(results)
    if baseline is not None:
        print(f"bench_x6: regression check against {args.check}")
        failures += _check_regressions(baseline, results, args.max_regression)
        if not failures:
            print("bench_x6: no regressions")
    elif args.check:
        print("bench_x6: no usable baseline; skipping regression check")
    if failures:
        for failure in failures:
            print(f"bench_x6: FAIL {failure}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
