"""E3 — the Search Techniques section: one engine, four disciplines.

Depth-first, breadth-first, best-first (branch-and-bound), and A* run
the identical grid routing problem; the table shows cost found,
optimality, and nodes expanded — the paper's qualitative ranking
("best-first can show a dramatic improvement ... A* better still")
made quantitative.
"""

import random

from repro.baselines.grid import GridProblem, RoutingGrid
from repro.geometry.raytrace import ObstacleSet
from repro.geometry.rect import Rect
from repro.search.engine import Order, search
from repro.analysis.tables import format_table

from benchmarks.workloads import report


def make_cases(n_cases: int = 5, size: int = 40):
    cases = []
    for seed in range(n_cases):
        rng = random.Random(seed)
        rects = []
        for _ in range(6):
            x0 = rng.randint(2, size - 10)
            y0 = rng.randint(2, size - 10)
            rects.append(Rect(x0, y0, x0 + rng.randint(3, 8), y0 + rng.randint(3, 8)))
        grid = RoutingGrid(ObstacleSet(Rect(0, 0, size, size), rects))
        while True:
            s = (rng.randrange(grid.cols), rng.randrange(grid.rows))
            d = (rng.randrange(grid.cols), rng.randrange(grid.rows))
            if grid.is_free(s) and grid.is_free(d) and s != d:
                break
        cases.append((grid, s, d))
    return cases


def bench_e3_strategies(benchmark):
    cases = make_cases()

    def run_astar():
        out = []
        for grid, s, d in cases:
            problem = GridProblem(grid, [s], d, use_heuristic=True)
            out.append(search(problem, Order.A_STAR))
        return out

    astar_results = benchmark(run_astar)

    totals = {order: {"cost": 0.0, "expanded": 0, "optimal": 0} for order in Order}
    for (grid, s, d), astar in zip(cases, astar_results):
        optimum = astar.cost
        for order in Order:
            if order is Order.A_STAR:
                result = astar
            else:
                problem = GridProblem(grid, [s], d, use_heuristic=(order is Order.A_STAR))
                result = search(problem, order)
            totals[order]["cost"] += result.cost
            totals[order]["expanded"] += result.stats.nodes_expanded
            totals[order]["optimal"] += int(result.cost == optimum)

    rows = []
    for order in (Order.DEPTH_FIRST, Order.BREADTH_FIRST, Order.BEST_FIRST, Order.A_STAR):
        data = totals[order]
        rows.append(
            [
                order.value,
                f"{data['cost']:.0f}",
                f"{data['optimal']}/{len(cases)}",
                data["expanded"],
            ]
        )
    table = format_table(
        ["strategy", "total cost", "optimal", "nodes expanded"],
        rows,
        title="E3: search strategies on identical routing problems",
    )
    report("e3_strategies", table)

    assert totals[Order.A_STAR]["optimal"] == len(cases)
    assert totals[Order.BEST_FIRST]["optimal"] == len(cases)
    assert totals[Order.A_STAR]["expanded"] <= totals[Order.BEST_FIRST]["expanded"]
    assert totals[Order.BEST_FIRST]["expanded"] <= totals[Order.BREADTH_FIRST]["expanded"]
