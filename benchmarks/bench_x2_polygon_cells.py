"""X2 — the orthogonal-polygon cell extension.

"Another useful extension would be to allow orthogonal polygons for
the cell boundaries."  The router supports them via slab
decomposition; this experiment measures what that support buys by
routing identical netlists twice: once against the true polygon
outlines (wires may use the notches), once with every polygon replaced
by its bounding box (the fallback a rectangles-only router must take).
"""

from repro.core.router import GlobalRouter
from repro.geometry.orthpoly import OrthoPolygon
from repro.geometry.point import Point
from repro.geometry.rect import Rect
from repro.layout.cell import Cell
from repro.layout.layout import Layout
from repro.layout.net import Net
from repro.analysis.tables import format_table
from repro.analysis.verify import verify_global_route

from benchmarks.workloads import report


def l_macro(name: str, x: int, y: int, size: int = 30, notch: int = 18) -> Cell:
    """An L-shaped macro with a notch cut from its top-right."""
    arm = size - notch
    return Cell(
        name,
        OrthoPolygon(
            [
                Point(x, y),
                Point(x + size, y),
                Point(x + size, y + arm),
                Point(x + arm, y + arm),
                Point(x + arm, y + size),
                Point(x, y + size),
            ]
        ),
    )


def polygon_layout() -> Layout:
    layout = Layout(Rect(0, 0, 140, 110))
    layout.add_cell(l_macro("l0", 15, 12))
    layout.add_cell(l_macro("l1", 15, 62))
    layout.add_cell(l_macro("l2", 70, 12))
    layout.add_cell(l_macro("l3", 70, 62))
    layout.add_cell(Cell.rect("sq", 110, 40, 20, 30))
    # nets that can profit from cutting through the notches
    layout.add_net(Net.two_point("n0", Point(30, 32), Point(85, 32)))
    layout.add_net(Net.two_point("n1", Point(30, 82), Point(85, 82)))
    layout.add_net(Net.two_point("n2", Point(40, 40), Point(40, 76)))
    layout.add_net(Net.two_point("n3", Point(95, 40), Point(110, 55)))
    layout.add_net(Net.two_point("n4", Point(5, 5), Point(135, 105)))
    layout.add_net(Net.two_point("n5", Point(33, 30), Point(33, 90)))
    return layout


def bbox_layout(source: Layout) -> Layout:
    """The same layout with every cell replaced by its bounding box.

    Pins that end up strictly inside a bounding box (they sat in a
    notch) are kept; the router will report those nets unroutable,
    which is part of what the comparison measures.
    """
    layout = Layout(source.outline)
    for cell in source.cells:
        layout.add_cell(Cell(cell.name, cell.bounding_box))
    for net in source.nets:
        layout.add_net(net)
    return layout


def bench_x2_polygon_cells(benchmark):
    poly = polygon_layout()
    bbox = bbox_layout(poly)

    def run_polygon():
        return GlobalRouter(poly).route_all(on_unroutable="skip")

    poly_route = benchmark(run_polygon)
    bbox_route = GlobalRouter(bbox).route_all(on_unroutable="skip")
    assert verify_global_route(poly_route, poly) == {}

    shared = set(poly_route.trees) & set(bbox_route.trees)
    poly_shared = sum(poly_route.tree(n).total_length for n in shared)
    bbox_shared = sum(bbox_route.tree(n).total_length for n in shared)

    rows = [
        [
            "true polygons",
            f"{poly_route.routed_count}/{len(poly.nets)}",
            poly_shared,
            poly_route.total_length,
        ],
        [
            "bounding boxes",
            f"{bbox_route.routed_count}/{len(bbox.nets)}",
            bbox_shared,
            bbox_route.total_length,
        ],
    ]
    table = format_table(
        ["cell model", "nets routed", f"length over {len(shared)} shared nets",
         "total length"],
        rows,
        title="X2: orthogonal-polygon outlines vs bounding-box approximation",
    )
    report("x2_polygon_cells", table)

    assert poly_route.routed_count == len(poly.nets)
    assert poly_route.routed_count >= bbox_route.routed_count
    assert poly_shared <= bbox_shared
