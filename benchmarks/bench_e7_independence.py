"""E7 — independent net routing vs the classical sequential approach.

"Independently routing each net considerably reduces the complexity of
the search since the only obstacles are the cells. ... Independent net
routing also eliminates the problem of net ordering."  The bench
routes identical layouts with both approaches under several net
orders: the independent router must be exactly order-invariant; the
sequential baseline shows order-dependent wirelength and failures and
higher search effort.
"""

import random
import statistics

from repro.core.router import GlobalRouter
from repro.baselines.sequential import SequentialRouter
from repro.analysis.tables import format_table

from benchmarks.workloads import netted_layout, report

N_ORDERS = 5


def bench_e7_independence(benchmark):
    layout = netted_layout(10, 12, seed=8, terminals=(2, 2), density=0.22)
    names = [n.name for n in layout.nets]
    orders = []
    for seed in range(N_ORDERS):
        order = list(names)
        random.Random(seed).shuffle(order)
        orders.append(order)

    router = GlobalRouter(layout)

    def run_independent_all_orders():
        return [
            router.route_all([layout.net(n) for n in order]) for order in orders
        ]

    independent_runs = benchmark(run_independent_all_orders)

    sequential_runs = [
        SequentialRouter(layout).route_all(order) for order in orders
    ]

    # Compare lengths only over nets every run routed, otherwise a
    # failure-prone router "wins" by routing less.
    shared = set(names)
    for run in independent_runs + sequential_runs:
        shared &= set(run.trees)

    def shared_length(run) -> int:
        return sum(run.tree(n).total_length for n in shared)

    ind_lengths = [shared_length(r) for r in independent_runs]
    seq_lengths = [shared_length(r) for r in sequential_runs]
    ind_failures = [len(r.failed_nets) for r in independent_runs]
    seq_failures = [len(r.failed_nets) for r in sequential_runs]
    ind_expanded = [r.stats.nodes_expanded for r in independent_runs]
    seq_expanded = [r.stats.nodes_expanded for r in sequential_runs]

    def spread(values):
        return max(values) - min(values)

    rows = [
        [
            "independent (paper)",
            f"{statistics.mean(ind_lengths):.0f}",
            spread(ind_lengths),
            f"{statistics.mean(ind_failures):.1f}",
            spread(ind_failures),
            f"{statistics.mean(ind_expanded):.0f}",
        ],
        [
            "sequential (classical)",
            f"{statistics.mean(seq_lengths):.0f}",
            spread(seq_lengths),
            f"{statistics.mean(seq_failures):.1f}",
            spread(seq_failures),
            f"{statistics.mean(seq_expanded):.0f}",
        ],
    ]
    table = format_table(
        ["router", "shared-net length", "length spread", "mean failures",
         "failure spread", "mean expanded"],
        rows,
        title=(
            f"E7: order sensitivity over {N_ORDERS} shuffled net orders "
            f"({len(names)} nets, lengths over the {len(shared)} nets all runs routed)"
        ),
    )
    report("e7_independence", table)

    assert spread(ind_lengths) == 0  # exactly order-invariant
    assert all(f == 0 for f in ind_failures)
    # the classical approach pays in effort, wirelength, and failures
    assert statistics.mean(seq_expanded) >= statistics.mean(ind_expanded)
    assert statistics.mean(seq_lengths) >= statistics.mean(ind_lengths)
    assert statistics.mean(seq_failures) > 0
