#!/usr/bin/env python
"""X7 — timing-driven routing: critical-net delay, measured and gated.

The timing-driven strategy's pitch is that criticality-blended costs
and most-critical-first wave ordering protect the long nets that
dominate the delay profile.  This bench pins that claim on tracked
``long-critical-nets`` workloads and emits ``BENCH_timing.json`` so
the trajectory is auditable PR over PR:

* **delay** — worst critical-net (``crit*``) delay under
  ``timing-driven`` vs plain ``negotiated`` on the same scene, both
  judged by the same tree-walk delay model
  (:func:`repro.core.timing.analyze_route_timing`).  Workloads with
  ``gated: True`` must come out *strictly* lower — the same strict
  contract the conformance harness's ``timing-delay`` check enforces
  on the corpus.
* **validity / wirelength** — every routed result must verify clean
  with no failed nets, and the timing-driven wirelength must stay
  within the conformance :data:`~repro.scenarios.conformance.WIRELENGTH_BAND`
  of the single-pass baseline (delay protection must not buy its wins
  with unbounded detours elsewhere).

Usage (from the repository root)::

    PYTHONPATH=src python benchmarks/bench_x7_timing.py            # full
    PYTHONPATH=src python benchmarks/bench_x7_timing.py --quick    # CI smoke
    PYTHONPATH=src python benchmarks/bench_x7_timing.py --quick \\
        --check BENCH_timing.json                                  # gate

With ``--check BASELINE``, timing-driven wall times are compared
workload by workload against the recorded baseline and the driver
exits non-zero past ``--max-regression`` (default 3x — it catches
algorithmic blowups, not CI-box jitter).  The delay, validity, and
wirelength gates apply on every run, baseline or not.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import platform
import sys
import time

_REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
for entry in (str(_REPO_ROOT), str(_REPO_ROOT / "src")):
    if entry not in sys.path:
        sys.path.insert(0, entry)

from repro.api.pipeline import RoutingPipeline  # noqa: E402
from repro.api.request import RouteRequest  # noqa: E402
from repro.core.router import RouterConfig  # noqa: E402
from repro.core.timing import analyze_route_timing  # noqa: E402
from repro.scenarios import load_corpus  # noqa: E402
from repro.scenarios.conformance import WIRELENGTH_BAND  # noqa: E402
from repro.scenarios.families import FAMILIES  # noqa: E402

SCHEMA_VERSION = 1

#: Best-of-N wall measurements; the workloads are sub-second, so the
#: minimum is the honest estimate of the work itself.
REPEATS = 3

#: Workload definitions.  Corpus workloads route the checked-in
#: ``long-critical-nets`` scenes (the same ones the conformance
#: timing-delay gate covers); the generated workload scales the family
#: up beyond corpus size.  ``gated`` marks the workloads the strict
#: delay win applies to.
WORKLOADS: dict[str, dict] = {
    "corpus_long_critical_s79": {
        "kind": "corpus",
        "scenario": "long-critical-nets-s79",
        "max_iterations": 8,
        "gated": True,
    },
    "corpus_long_critical_s107": {
        "kind": "corpus",
        "scenario": "long-critical-nets-s107",
        "max_iterations": 8,
        "gated": True,
    },
    "generated_3x3_18f_5c": {
        "kind": "generated",
        "seed": 131,
        "overrides": {
            "rows": 3, "cols": 3, "cell_side": 14, "gap": 3,
            "n_filler": 18, "n_critical": 5,
        },
        "max_iterations": 10,
        "gated": True,
    },
}

QUICK_WORKLOADS = ("corpus_long_critical_s79", "corpus_long_critical_s107")


def _layout(spec: dict):
    if spec["kind"] == "corpus":
        for scenario in load_corpus():
            if scenario.name == spec["scenario"]:
                return scenario.layout
        raise RuntimeError(f"corpus scenario {spec['scenario']!r} not found")
    return FAMILIES["long-critical-nets"].build(spec["seed"], **spec["overrides"])


def _best_wall(fn) -> tuple[float, object]:
    """Minimum wall over :data:`REPEATS` runs, plus the last result."""
    best = float("inf")
    result = None
    for _ in range(REPEATS):
        started = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - started)
    return best, result


def _worst_critical_delay(result, layout) -> float:
    analysis = analyze_route_timing(result.route, layout)
    return max(
        t.delay for name, t in analysis.nets.items() if name.startswith("crit")
    )


def run_workload(spec: dict) -> dict:
    """Route one workload under both strategies; measure the delay gap."""
    layout = _layout(spec)
    pipeline = RoutingPipeline()

    def _request(strategy: str, params: dict) -> RouteRequest:
        return RouteRequest(
            layout=layout,
            config=RouterConfig(),
            strategy=strategy,
            strategy_params=params,
            on_unroutable="skip",
            verify=True,
        )

    single = pipeline.run(_request("single", {}))
    params = {"max_iterations": spec["max_iterations"]}
    wall_negotiated, negotiated = _best_wall(
        lambda: pipeline.run(_request("negotiated", dict(params)))
    )
    wall_timing, timing = _best_wall(
        lambda: pipeline.run(_request("timing-driven", dict(params)))
    )

    delay_negotiated = _worst_critical_delay(negotiated, layout)
    delay_timing = _worst_critical_delay(timing, layout)
    problems = []
    for name, result in (("negotiated", negotiated), ("timing-driven", timing)):
        if result.violations:
            problems.append(f"{name}: verification violations")
        if result.route.failed_nets:
            problems.append(f"{name}: {len(result.route.failed_nets)} failed nets")
    wirelength_ratio = (
        timing.total_length / single.total_length if single.total_length else 1.0
    )
    return {
        "nets": len(layout.nets),
        "critical_nets": sum(
            1 for net in layout.nets if net.name.startswith("crit")
        ),
        "gated": spec["gated"],
        "worst_critical_delay_negotiated": delay_negotiated,
        "worst_critical_delay_timing": delay_timing,
        "delay_improvement": round(
            (delay_negotiated - delay_timing) / delay_negotiated, 4
        ) if delay_negotiated else 0.0,
        "wirelength_ratio_vs_single": round(wirelength_ratio, 4),
        "overflow_after_timing": (
            None if timing.congestion_after is None
            else timing.congestion_after.total_overflow
        ),
        "wall_seconds_negotiated": round(wall_negotiated, 4),
        "wall_seconds_timing": round(wall_timing, 4),
        "validity_problems": problems,
    }


def run_suite(quick: bool = False) -> dict[str, dict]:
    """Run the (quick or full) workload set; returns per-workload metrics."""
    names = QUICK_WORKLOADS if quick else tuple(WORKLOADS)
    return {name: run_workload(WORKLOADS[name]) for name in names}


def _gate_failures(results: dict[str, dict]) -> list[str]:
    """Machine-independent gates: strict delay win, validity, wirelength."""
    failures = []
    lo, hi = WIRELENGTH_BAND
    for name, entry in results.items():
        if entry["validity_problems"]:
            failures.append(f"{name}: " + "; ".join(entry["validity_problems"]))
        if entry["gated"] and not (
            entry["worst_critical_delay_timing"]
            < entry["worst_critical_delay_negotiated"]
        ):
            failures.append(
                f"{name}: timing-driven worst critical delay "
                f"{entry['worst_critical_delay_timing']:g} is not strictly below "
                f"negotiated {entry['worst_critical_delay_negotiated']:g}"
            )
        if not lo <= entry["wirelength_ratio_vs_single"] <= hi:
            failures.append(
                f"{name}: wirelength ratio {entry['wirelength_ratio_vs_single']} "
                f"outside band [{lo}, {hi}]"
            )
    return failures


def _load_baseline(path: pathlib.Path) -> dict | None:
    try:
        data = json.loads(path.read_text(encoding="utf-8"))
    except FileNotFoundError:
        return None
    except (OSError, json.JSONDecodeError) as exc:
        print(f"bench_x7: unreadable baseline {path}: {exc}", file=sys.stderr)
        return None
    if data.get("schema") != SCHEMA_VERSION:
        print(
            f"bench_x7: baseline {path} has schema {data.get('schema')!r}, "
            f"expected {SCHEMA_VERSION}; skipping regression check",
            file=sys.stderr,
        )
        return None
    return data


def _check_regressions(
    baseline: dict, current: dict[str, dict], max_regression: float
) -> list[str]:
    """Timing-driven wall time vs the recorded baseline, per workload."""
    failures = []
    for name, entry in current.items():
        base_entry = baseline.get("workloads", {}).get(name)
        if base_entry is None:
            continue
        base_wall = base_entry.get("wall_seconds_timing")
        new_wall = entry.get("wall_seconds_timing")
        if base_wall and new_wall:
            ratio = new_wall / base_wall
            verdict = "REGRESSED" if ratio > max_regression else "ok"
            print(
                f"  {name}: timing wall {base_wall:.3f}s -> {new_wall:.3f}s "
                f"({ratio:.2f}x, limit {max_regression:.1f}x) {verdict}"
            )
            if ratio > max_regression:
                failures.append(
                    f"{name}: timing wall {ratio:.2f}x over baseline "
                    f"(limit {max_regression:.1f}x)"
                )
    return failures


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true",
        help="run only the quick workload subset (CI smoke)",
    )
    parser.add_argument(
        "--out", type=pathlib.Path, default=_REPO_ROOT / "BENCH_timing.json",
        help="where to write the JSON artifact "
             "(default: repo-root BENCH_timing.json)",
    )
    parser.add_argument(
        "--check", type=pathlib.Path, default=None, metavar="BASELINE",
        help="compare timing-driven walls against a recorded baseline JSON; "
             "exit 1 on regression",
    )
    parser.add_argument(
        "--max-regression", type=float, default=3.0,
        help="allowed timing wall-time ratio over the baseline before "
             "failing (default 3.0)",
    )
    args = parser.parse_args(argv)

    baseline = _load_baseline(args.check) if args.check else None

    mode = "quick" if args.quick else "full"
    print(f"bench_x7: timing suite ({mode}) ...")
    results = run_suite(quick=args.quick)
    for name, entry in results.items():
        print(
            f"  {name}: {entry['critical_nets']}/{entry['nets']} critical, "
            f"worst delay negotiated {entry['worst_critical_delay_negotiated']:g} "
            f"-> timing {entry['worst_critical_delay_timing']:g} "
            f"({entry['delay_improvement'] * 100:.0f}% better), "
            f"wirelength {entry['wirelength_ratio_vs_single']:.3f}x single, "
            f"wall {entry['wall_seconds_timing']:.3f}s"
        )

    payload = {
        "schema": SCHEMA_VERSION,
        "suite": "timing",
        "mode": mode,
        "python": platform.python_version(),
        "wirelength_band": list(WIRELENGTH_BAND),
        "workloads": results,
    }
    args.out.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    print(f"bench_x7: wrote {args.out}")

    failures = _gate_failures(results)
    if baseline is not None:
        print(f"bench_x7: regression check against {args.check}")
        failures += _check_regressions(baseline, results, args.max_regression)
        if not failures:
            print("bench_x7: no regressions")
    elif args.check:
        print("bench_x7: no usable baseline; skipping regression check")
    if failures:
        for failure in failures:
            print(f"bench_x7: FAIL {failure}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
