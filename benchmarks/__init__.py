"""Benchmark harness reproducing every figure and evaluation claim.

One module per experiment row of DESIGN.md §4.  Each bench prints the
reproduced table/series and also writes it to ``benchmarks/results/``
so the output survives pytest's capture; EXPERIMENTS.md records the
paper-vs-measured comparison.

Run with::

    pytest benchmarks/ --benchmark-only
"""
