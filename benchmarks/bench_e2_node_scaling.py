"""E2 — node-count and time scaling vs the grid family.

"Using the grid-based approach tends to require large amounts of
memory and processor time since so many nodes are expanded" while the
line-search "efficiency for large problems is very acceptable".  The
sweep routes a corner-to-corner connection on growing layouts and
reports nodes expanded and wall time for each router.
"""

import time

from repro.core.escape import EscapeMode
from repro.core.pathfinder import PathRequest, find_path
from repro.core.route import TargetSet
from repro.baselines.leemoore import grid_astar_route, lee_moore_route
from repro.analysis.tables import format_table

from benchmarks.workloads import corner_pair, report, scaling_layout


def gridless(obs, s, d, mode):
    return find_path(
        PathRequest(obstacles=obs, sources=[(s, 0.0)], targets=TargetSet(points=[d]),
                    mode=mode)
    )


def bench_e2_node_scaling(benchmark):
    sizes = (5, 10, 20, 40)
    cases = []
    for n in sizes:
        layout = scaling_layout(n, seed=n)
        s, d = corner_pair(layout, seed=n)
        cases.append((n, layout.obstacles(), s, d))

    def run_all_gridless():
        return [gridless(obs, s, d, EscapeMode.FULL) for _n, obs, s, d in cases]

    full_results = benchmark(run_all_gridless)

    rows = []
    for (n, obs, s, d), full in zip(cases, full_results):
        t0 = time.perf_counter()
        aggressive = gridless(obs, s, d, EscapeMode.AGGRESSIVE)
        t_aggr = time.perf_counter() - t0
        t0 = time.perf_counter()
        gastar = grid_astar_route(obs, s, d)
        t_gastar = time.perf_counter() - t0
        t0 = time.perf_counter()
        lee = lee_moore_route(obs, s, d)
        t_lee = time.perf_counter() - t0
        assert full.path.length == lee.path.length == gastar.path.length
        assert aggressive.path.length == full.path.length
        rows.append(
            [
                n,
                full.stats.nodes_expanded,
                aggressive.stats.nodes_expanded,
                gastar.stats.nodes_expanded,
                lee.stats.nodes_expanded,
                f"{lee.stats.nodes_expanded / max(1, full.stats.nodes_expanded):.0f}x",
                f"{t_aggr * 1e3:.2f}",
                f"{t_gastar * 1e3:.2f}",
                f"{t_lee * 1e3:.2f}",
            ]
        )
    table = format_table(
        ["cells", "gridless FULL", "gridless AGGR", "grid A*", "Lee-Moore",
         "Lee/FULL", "t_aggr ms", "t_gridA* ms", "t_lee ms"],
        rows,
        title="E2: nodes expanded (all routers find equal-length optima)",
    )
    report("e2_node_scaling", table)
