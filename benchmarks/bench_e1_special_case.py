"""E1 — "Lee–Moore ... is actually a special case of the general search".

The engine specialized to FIFO order, zero heuristic, and 4-neighbour
grid successors must behave exactly like an independently written
textbook Lee wavefront: same path costs, same set of labelled nodes,
ring-ordered expansion.  Measured across random obstacle grids.
"""

import random

from repro.baselines.grid import GridProblem, RoutingGrid
from repro.baselines.leemoore import lee_wavefront
from repro.geometry.raytrace import ObstacleSet
from repro.geometry.rect import Rect
from repro.search.engine import Order, search
from repro.analysis.tables import format_table

from benchmarks.workloads import report


def random_grid_scene(size: int, seed: int) -> RoutingGrid:
    rng = random.Random(seed)
    rects = []
    for _ in range(size // 6):
        x0 = rng.randint(1, size - 8)
        y0 = rng.randint(1, size - 8)
        rects.append(Rect(x0, y0, x0 + rng.randint(2, 6), y0 + rng.randint(2, 6)))
    return RoutingGrid(ObstacleSet(Rect(0, 0, size, size), rects))


def endpoints(grid: RoutingGrid, seed: int):
    rng = random.Random(seed + 999)
    while True:
        s = (rng.randrange(grid.cols), rng.randrange(grid.rows))
        d = (rng.randrange(grid.cols), rng.randrange(grid.rows))
        if grid.is_free(s) and grid.is_free(d) and s != d:
            return s, d


def bench_e1_special_case(benchmark):
    sizes = (20, 40, 60)
    cases = []
    for size in sizes:
        for seed in range(3):
            grid = random_grid_scene(size, seed)
            s, d = endpoints(grid, seed)
            cases.append((size, grid, s, d))

    def run_engine():
        results = []
        for _size, grid, s, d in cases:
            problem = GridProblem(grid, [s], d, use_heuristic=False)
            results.append(search(problem, Order.BREADTH_FIRST))
        return results

    engine_results = benchmark(run_engine)

    rows = []
    agreements = 0
    for (size, grid, s, d), engine_result in zip(cases, engine_results):
        wavefront = lee_wavefront(grid, s, d)
        engine_cost = engine_result.cost if engine_result.found else None
        wave_cost = (
            wavefront.distance[d] * grid.pitch if wavefront.path is not None else None
        )
        agree = engine_cost == wave_cost
        agreements += agree
        rows.append(
            [
                f"{size}x{size}",
                engine_cost if engine_cost is not None else "-",
                wave_cost if wave_cost is not None else "-",
                engine_result.stats.nodes_expanded,
                len(wavefront.expansion_order),
                "yes" if agree else "NO",
            ]
        )
    table = format_table(
        ["grid", "engine cost", "wavefront cost", "engine expanded",
         "wavefront expanded", "agree"],
        rows,
        title="E1: engine(FIFO, h=0) vs textbook Lee-Moore wavefront",
    )
    report("e1_special_case", table)
    assert agreements == len(cases)
