"""M1 — microbenchmark: the ray tracer and escape generator.

"By maintaining the topological ordering, an efficient means of
ray-tracing is used to expand the frontiers of the search."  These are
the two hot primitives under every search; the microbenchmark tracks
their throughput so regressions surface immediately.
"""

import random

from repro.core.escape import EscapeMode, escape_moves
from repro.geometry.point import ALL_DIRECTIONS, Point
from repro.analysis.tables import format_table

from benchmarks.workloads import report, scaling_layout


def bench_m1_raytrace(benchmark):
    layout = scaling_layout(40, seed=12)
    obs = layout.obstacles()
    rng = random.Random(0)
    points = []
    while len(points) < 200:
        p = Point(
            rng.randint(layout.outline.x0, layout.outline.x1),
            rng.randint(layout.outline.y0, layout.outline.y1),
        )
        if obs.point_free(p):
            points.append(p)

    def run_rays():
        total = 0
        for p in points:
            for direction in ALL_DIRECTIONS:
                total += obs.first_hit(p, direction).distance
        return total

    benchmark(run_rays)

    import time

    t0 = time.perf_counter()
    runs = 5
    for _ in range(runs):
        run_rays()
    ray_rate = runs * len(points) * 4 / (time.perf_counter() - t0)

    t0 = time.perf_counter()
    full_moves = 0
    for p in points:
        full_moves += len(escape_moves(p, obs, mode=EscapeMode.FULL))
    t_full = time.perf_counter() - t0
    t0 = time.perf_counter()
    aggr_moves = 0
    for p in points:
        aggr_moves += len(escape_moves(p, obs, mode=EscapeMode.AGGRESSIVE))
    t_aggr = time.perf_counter() - t0

    table = format_table(
        ["primitive", "throughput", "successors/point"],
        [
            ["first_hit (rays)", f"{ray_rate:,.0f} rays/s", "-"],
            ["escape_moves FULL", f"{len(points) / t_full:,.0f} calls/s",
             f"{full_moves / len(points):.1f}"],
            ["escape_moves AGGRESSIVE", f"{len(points) / t_aggr:,.0f} calls/s",
             f"{aggr_moves / len(points):.1f}"],
        ],
        title=f"M1: hot-primitive throughput ({len(obs.rects)} obstacles)",
    )
    report("m1_raytrace", table)
