"""E10 — admissibility: "algorithm A* will always find an optimal route".

A randomized sweep comparing the router's path length to the
independent track-graph Dijkstra oracle on every case; the reproduced
number is the agreement rate, which must be 100%.
"""

import random

from repro.core.escape import EscapeMode
from repro.core.pathfinder import PathRequest, find_path
from repro.core.route import TargetSet
from repro.errors import UnroutableError
from repro.analysis.tables import format_table

from benchmarks.workloads import random_free_pair, report, scaling_layout
from tests.conftest import oracle_shortest_length

CASES = 30


def bench_e10_admissibility(benchmark):
    scenarios = []
    for seed in range(3):
        layout = scaling_layout(10 + 5 * seed, seed=seed + 50)
        obs = layout.obstacles()
        rng = random.Random(seed)
        pairs = [random_free_pair(obs, rng) for _ in range(CASES // 3)]
        scenarios.append((obs, pairs))

    def run_router():
        out = []
        for obs, pairs in scenarios:
            for s, d in pairs:
                try:
                    result = find_path(
                        PathRequest(
                            obstacles=obs,
                            sources=[(s, 0.0)],
                            targets=TargetSet(points=[d]),
                            mode=EscapeMode.FULL,
                        )
                    )
                    out.append((obs, s, d, result.path.length))
                except UnroutableError:
                    out.append((obs, s, d, None))
        return out

    routed = benchmark(run_router)

    agree = 0
    total = 0
    mode_rows = {}
    for obs, s, d, length in routed:
        expected = oracle_shortest_length(obs, s, d)
        total += 1
        agree += int(length == expected)
    mode_rows["FULL"] = (agree, total)

    agg_agree = 0
    for obs, s, d, _length in routed:
        expected = oracle_shortest_length(obs, s, d)
        try:
            result = find_path(
                PathRequest(
                    obstacles=obs,
                    sources=[(s, 0.0)],
                    targets=TargetSet(points=[d]),
                    mode=EscapeMode.AGGRESSIVE,
                )
            )
            agg_agree += int(result.path.length == expected)
        except UnroutableError:
            agg_agree += int(expected is None)
    mode_rows["AGGRESSIVE"] = (agg_agree, total)

    rows = [
        [mode, f"{a}/{t}", f"{100 * a / t:.1f}%"] for mode, (a, t) in mode_rows.items()
    ]
    table = format_table(
        ["escape mode", "matches oracle", "agreement"],
        rows,
        title="E10: admissibility — router length vs track-graph Dijkstra oracle",
    )
    report("e10_admissibility", table)

    assert mode_rows["FULL"] == (total, total)
