#!/usr/bin/env python
"""Perf-benchmark suite driver: runs the tracked workloads and emits
the committed baseline artifacts so every PR has a perf trajectory to
compare against.

Two suites are tracked (pick with ``--suite``):

* ``hotpath`` (default) — the single-process routing hot path; emits
  ``BENCH_hotpath.json``.
* ``service`` — N concurrent clients through the real HTTP service
  across the executor × store matrix
  (:mod:`benchmarks.bench_service_load`); emits ``BENCH_service.json``.
* ``all`` — both, each against its default artifact (``--check`` is
  per-suite and therefore rejected here; gate suites individually).

Usage (from the repository root)::

    PYTHONPATH=src python benchmarks/run_suite.py            # full hotpath
    PYTHONPATH=src python benchmarks/run_suite.py --quick    # CI smoke
    PYTHONPATH=src python benchmarks/run_suite.py --quick \\
        --check BENCH_hotpath.json                           # regression gate
    PYTHONPATH=src python benchmarks/run_suite.py --suite service --quick \\
        --check BENCH_service.json                           # service gate

The hotpath artifact records, per workload: wall time with the ray
cache off and on, the cache speedup, nodes expanded, expansions per
second, cache hit rate, the byte-identity verdict (cache on vs off),
and an ``engines`` block comparing the scalar / vectorized / native
search engines (wall, expansions per second, speedup vs scalar, and a
per-engine byte-identity verdict).  See ``docs/performance.md`` for
how to read it.

With ``--check BASELINE``, workloads present in both the baseline and
the current run are compared; the driver exits non-zero when any
workload's wall time regresses more than ``--max-regression``
(default 3x — generous on purpose: CI boxes are slow and noisy, so the
gate only catches algorithmic blowups, not jitter).
"""

from __future__ import annotations

import argparse
import json
import pathlib
import platform
import sys

_REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
# Make `benchmarks.*` and `repro.*` importable no matter where the
# driver is launched from (CI runs it with only PYTHONPATH=src).
for entry in (str(_REPO_ROOT), str(_REPO_ROOT / "src")):
    if entry not in sys.path:
        sys.path.insert(0, entry)

SCHEMA_VERSION = 1

#: Expansion counts are deterministic per code+workload, so anything
#: beyond rounding-free growth is an algorithmic regression; 1.5x
#: leaves room for deliberate heuristic tweaks that a PR can absorb by
#: regenerating the baseline.
NODE_REGRESSION_LIMIT = 1.5


def _load_baseline(path: pathlib.Path) -> dict | None:
    try:
        data = json.loads(path.read_text(encoding="utf-8"))
    except FileNotFoundError:
        return None
    except (OSError, json.JSONDecodeError) as exc:
        print(f"run_suite: unreadable baseline {path}: {exc}", file=sys.stderr)
        return None
    if data.get("schema") != SCHEMA_VERSION:
        print(
            f"run_suite: baseline {path} has schema {data.get('schema')!r}, "
            f"expected {SCHEMA_VERSION}; skipping regression check",
            file=sys.stderr,
        )
        return None
    return data


def _check_regressions(
    baseline: dict, current: dict[str, dict], max_regression: float
) -> list[str]:
    """Wall-time gate plus a machine-independent expansion-count gate.

    Wall clock varies across hardware (the committed baseline may come
    from a different box than CI), which is why the wall limit is a
    generous ratio.  Node expansions are deterministic for identical
    code+workload, so any drift there beyond noise-free tolerance is
    an algorithmic change and is gated much tighter.
    """
    failures: list[str] = []
    for name, entry in current.items():
        base_entry = baseline.get("workloads", {}).get(name)
        if base_entry is None:
            continue
        base_wall = base_entry.get("wall_seconds_cache_on")
        new_wall = entry.get("wall_seconds_cache_on")
        if base_wall and new_wall:
            ratio = new_wall / base_wall
            verdict = "REGRESSED" if ratio > max_regression else "ok"
            print(
                f"  {name}: wall {base_wall:.3f}s -> {new_wall:.3f}s "
                f"({ratio:.2f}x, limit {max_regression:.1f}x) {verdict}"
            )
            if ratio > max_regression:
                failures.append(
                    f"{name}: wall {ratio:.2f}x over baseline (limit {max_regression:.1f}x)"
                )
        base_nodes = base_entry.get("nodes_expanded")
        new_nodes = entry.get("nodes_expanded")
        if base_nodes and new_nodes:
            node_ratio = new_nodes / base_nodes
            verdict = "REGRESSED" if node_ratio > NODE_REGRESSION_LIMIT else "ok"
            print(
                f"  {name}: expansions {base_nodes} -> {new_nodes} "
                f"({node_ratio:.2f}x, limit {NODE_REGRESSION_LIMIT:.1f}x) {verdict}"
            )
            if node_ratio > NODE_REGRESSION_LIMIT:
                failures.append(
                    f"{name}: {node_ratio:.2f}x node expansions over baseline "
                    f"(limit {NODE_REGRESSION_LIMIT:.1f}x)"
                )
        # Per-engine wall gate, same generous ratio: catches one engine
        # regressing while the headline cache-on number stays healthy.
        for engine, stats in entry.get("engines", {}).items():
            base_engine = base_entry.get("engines", {}).get(engine, {})
            base_wall = base_engine.get("wall_seconds")
            new_wall = stats.get("wall_seconds")
            if not (base_wall and new_wall):
                continue
            ratio = new_wall / base_wall
            verdict = "REGRESSED" if ratio > max_regression else "ok"
            print(
                f"  {name}[{engine}]: wall {base_wall:.3f}s -> {new_wall:.3f}s "
                f"({ratio:.2f}x, limit {max_regression:.1f}x) {verdict}"
            )
            if ratio > max_regression:
                failures.append(
                    f"{name}[{engine}]: wall {ratio:.2f}x over baseline "
                    f"(limit {max_regression:.1f}x)"
                )
    return failures


def _run_service_suite(args: argparse.Namespace) -> int:
    """Delegate to :mod:`benchmarks.bench_service_load`'s own driver."""
    from benchmarks.bench_service_load import main as service_main

    forwarded: list[str] = []
    if args.quick:
        forwarded.append("--quick")
    forwarded += ["--out", str(args.out or _REPO_ROOT / "BENCH_service.json")]
    if args.check is not None:
        forwarded += [
            "--check", str(args.check),
            "--max-regression", str(args.max_regression),
        ]
    return service_main(forwarded)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--suite", choices=("hotpath", "service", "all"), default="hotpath",
        help="which tracked suite to run (default hotpath)",
    )
    parser.add_argument(
        "--quick", action="store_true",
        help="run only the quick workload subset (CI smoke)",
    )
    parser.add_argument(
        "--out", type=pathlib.Path, default=None,
        help="where to write the JSON artifact (default: the suite's "
             "committed baseline name in the repo root)",
    )
    parser.add_argument(
        "--check", type=pathlib.Path, default=None, metavar="BASELINE",
        help="compare against a recorded baseline JSON; exit 1 on regression",
    )
    parser.add_argument(
        "--max-regression", type=float, default=3.0,
        help="allowed wall-time ratio over the baseline before failing (default 3.0)",
    )
    args = parser.parse_args(argv)

    if args.suite == "all" and args.check is not None:
        parser.error("--check is per-suite; gate hotpath and service separately")
    if args.suite == "service":
        return _run_service_suite(args)
    if args.out is None:
        args.out = _REPO_ROOT / "BENCH_hotpath.json"

    # Read the baseline before writing --out: the CI smoke run points
    # both at the committed BENCH_hotpath.json.
    baseline = _load_baseline(args.check) if args.check else None

    from benchmarks.bench_x5_hotpath import PRE_OVERHAUL_REFERENCE, run_suite

    mode = "quick" if args.quick else "full"
    print(f"run_suite: hotpath suite ({mode}) ...")
    results = run_suite(quick=args.quick)
    for name, entry in results.items():
        if "identical_cache_on_off" in entry:
            print(
                f"  {name}: {entry['wall_seconds_cache_off']:.3f}s -> "
                f"{entry['wall_seconds_cache_on']:.3f}s with cache "
                f"({entry['speedup_cache']:.2f}x, hit rate "
                f"{entry['ray_cache_hit_rate'] * 100:.1f}%, "
                f"{entry['expansions_per_second']:.0f} expand/s, "
                f"identical={entry['identical_cache_on_off']})"
            )
        for engine, stats in entry.get("engines", {}).items():
            print(
                f"  {name}[{engine}]: {stats['wall_seconds']:.3f}s "
                f"({stats['expansions_per_second']:.0f} expand/s, "
                f"{stats['speedup_vs_scalar']:.2f}x vs scalar, "
                f"identical={stats['identical_to_scalar']})"
            )

    broken = [
        n for n, e in results.items() if not e.get("identical_cache_on_off", True)
    ]
    if broken:
        print(f"run_suite: cache changed routed results on: {broken}", file=sys.stderr)
        return 1
    engine_broken = [
        f"{name}[{engine}]"
        for name, entry in results.items()
        for engine, stats in entry.get("engines", {}).items()
        if not stats["identical_to_scalar"]
    ]
    if engine_broken:
        print(
            f"run_suite: engine changed routed results on: {engine_broken}",
            file=sys.stderr,
        )
        return 1
    skip_broken = [
        n
        for n, e in results.items()
        if "identical_strategy_skip" in e
        and not (e["identical_strategy_skip"] and e["strategy_ray_lookups"] == 0)
    ]
    if skip_broken:
        print(
            "run_suite: single-pass memo skip not byte-identical / not skipped "
            f"on: {skip_broken}",
            file=sys.stderr,
        )
        return 1

    payload = {
        "schema": SCHEMA_VERSION,
        "suite": "hotpath",
        "mode": mode,
        "python": platform.python_version(),
        "workloads": results,
        "reference_pre_overhaul": PRE_OVERHAUL_REFERENCE,
    }
    args.out.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    print(f"run_suite: wrote {args.out}")

    if baseline is not None:
        print(f"run_suite: regression check against {args.check}")
        failures = _check_regressions(baseline, results, args.max_regression)
        if failures:
            for failure in failures:
                print(f"run_suite: REGRESSION {failure}", file=sys.stderr)
            return 1
        print("run_suite: no regressions")
    elif args.check:
        print("run_suite: no usable baseline; skipping regression check")

    if args.suite == "all":
        return _run_service_suite(
            argparse.Namespace(
                quick=args.quick,
                out=None,
                check=None,
                max_regression=args.max_regression,
            )
        )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
