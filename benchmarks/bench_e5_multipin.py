"""E5 — multi-pin terminals: equivalent pins shorten routes.

"Multi-pin terminals are handled by logically grouping all pins which
belong to a terminal."  The bench routes the same nets once with the
full pin groups and once restricted to each terminal's first pin,
reporting the wirelength the grouping saves.
"""

from repro.core.steiner import route_net
from repro.layout.net import Net
from repro.layout.terminal import Terminal
from repro.analysis.tables import format_table

from benchmarks.workloads import netted_layout, report


def first_pin_only(net: Net) -> Net:
    terminals = [
        Terminal(t.name, [t.pins[0]]) for t in net.terminals
    ]
    return Net(net.name, terminals)


def bench_e5_multipin(benchmark):
    pin_ranges = ((1, 1), (2, 2), (3, 3), (4, 4))
    layouts = {
        pins: netted_layout(10, 8, seed=17, terminals=(2, 3), pins=pins)
        for pins in pin_ranges
    }

    def run_grouped():
        out = {}
        for pins, layout in layouts.items():
            obs = layout.obstacles()
            out[pins] = sum(
                route_net(net, obs).total_length for net in layout.nets
            )
        return out

    grouped = benchmark(run_grouped)

    rows = []
    for pins, layout in layouts.items():
        obs = layout.obstacles()
        single = sum(
            route_net(first_pin_only(net), obs).total_length for net in layout.nets
        )
        saving = 100 * (single - grouped[pins]) / single if single else 0.0
        rows.append([f"{pins[0]}", grouped[pins], single, f"{saving:.1f}%"])

    table = format_table(
        ["pins/terminal", "grouped length", "first-pin-only length", "saving"],
        rows,
        title="E5: multi-pin terminal grouping vs single-pin routing",
    )
    report("e5_multipin", table)

    for pins, layout in layouts.items():
        obs = layout.obstacles()
        single = sum(
            route_net(first_pin_only(net), obs).total_length for net in layout.nets
        )
        assert grouped[pins] <= single
