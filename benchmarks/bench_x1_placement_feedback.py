"""X1 — placement feedback (the paper's "further research" loop).

The Introduction proposes letting routing feedback adjust the
placement, and warns "one must be concerned about convergence".  This
experiment runs the loop on tight floorplans and reports the overflow
trajectory — including whether it converged, stalled, or ran out of
legal moves — alongside the routing-only two-pass alternative.
"""

import random

from repro.core.feedback import adjust_placement
from repro.core.router import GlobalRouter
from repro.layout.generators import LayoutSpec, grid_layout, random_netlist
from repro.analysis.tables import format_table

from benchmarks.workloads import report


def tight_floorplan(gap: int, seed: int, n_nets: int = 16):
    layout = grid_layout(2, 2, cell_width=20, cell_height=20, gap=gap, margin=14)
    rng = random.Random(seed)
    spec = LayoutSpec(terminals_per_net=(2, 2), pad_fraction=0.0)
    for net in random_netlist(layout, n_nets, rng=rng, spec=spec):
        layout.add_net(net)
    return layout


def bench_x1_placement_feedback(benchmark):
    cases = [(gap, seed) for gap in (2, 3) for seed in (3, 7)]

    def run_feedback():
        return [
            adjust_placement(tight_floorplan(gap, seed), step=2, max_rounds=6)
            for gap, seed in cases
        ]

    results = benchmark(run_feedback)

    rows = []
    for (gap, seed), result in zip(cases, results):
        layout = tight_floorplan(gap, seed)
        two_pass = GlobalRouter(layout)._two_pass(penalty_weight=4.0, passes=4)
        outcome = (
            "converged"
            if result.converged
            else ("stalled" if result.stalled else "budget/stuck")
        )
        rows.append(
            [
                f"gap={gap} seed={seed}",
                " -> ".join(str(v) for v in result.overflow_history),
                len(result.moves),
                outcome,
                two_pass.congestion_after.total_overflow,
            ]
        )
    table = format_table(
        ["floorplan", "overflow trajectory (placement feedback)", "moves",
         "outcome", "two-pass overflow (routing only)"],
        rows,
        title="X1: congestion-driven placement adjustment vs routing-only relief",
    )
    report("x1_placement_feedback", table)

    for result in results:
        assert result.overflow_history[-1] <= result.overflow_history[0]
