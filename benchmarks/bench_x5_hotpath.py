"""X5 — the hot-path overhaul, measured.

Three changes landed together: the epoch-cached ray tracer
(:class:`~repro.geometry.raytrace.ObstacleSet` memoizes ``first_hit``
per mutation epoch), the flattened cost-model inner loops
(:class:`~repro.core.costs.CongestionPenaltyCost`), and the lean
OPEN/CLOSED core (flat heap tuples, slotted nodes).  PR 9 added the
batched search engines (``scalar`` | ``vectorized`` | ``native``) and
this harness grew an engine matrix alongside the original cache A/B.
The claims the bench pins:

* **identity** — routed results are byte-identical with the ray cache
  on and off, across every search engine, and through the single-pass
  strategy's memo-population skip: same paths, same costs, same failed
  nets, same per-iteration overflow trajectory.  Performance knobs may
  only change how fast answers arrive, never the answers.
* **speed** — the negotiated multi-iteration workload (the rip-up
  loop re-searches the same static obstacle set every iteration, so
  cache hit rates are high) runs measurably faster with the cache, and
  the scaled engine workload (``negotiated_scaled_200``) runs at least
  :data:`ENGINE_SPEEDUP_FLOOR` times more expansions per second on the
  vectorized engine than on scalar; BENCH_hotpath.json tracks the
  trajectory PR over PR via ``benchmarks/run_suite.py``.

Run standalone via ``pytest benchmarks/bench_x5_hotpath.py
--benchmark-only`` or through the suite driver (which also emits the
JSON artifact)::

    PYTHONPATH=src python benchmarks/run_suite.py --quick
"""

from __future__ import annotations

import time

from repro.core.negotiate import NegotiatedRouter, NegotiationConfig
from repro.core.router import GlobalRouter, RouterConfig
from repro.analysis.tables import format_table
from repro.search.native import NATIVE_AVAILABLE

from benchmarks.workloads import (
    congested_layout,
    netted_layout,
    report,
    scaled_congested_layout,
)

#: Workload definitions, smallest first.  ``run_suite.py --quick`` runs
#: the names in :data:`QUICK_WORKLOADS`; the committed baseline
#: (BENCH_hotpath.json) records the full set so quick CI runs can still
#: compare against it by name.  ``engine_matrix_only`` workloads skip
#: the cache A/B (their point is the engine comparison; a scalar run at
#: this size is already minutes of wall clock).
WORKLOADS: dict[str, dict] = {
    "negotiated_grid_16": {
        "kind": "negotiated",
        "nets": 16,
        "seed": 5,
        "gap": 3,
        "max_iterations": 10,
    },
    "negotiated_grid_24": {
        "kind": "negotiated",
        "nets": 24,
        "seed": 5,
        "gap": 3,
        "max_iterations": 12,
    },
    "single_pass_dense": {
        "kind": "single",
        "cells": 36,
        "nets": 28,
        "seed": 11,
    },
    "negotiated_scaled_200": {
        "kind": "negotiated",
        "scaled": True,
        "nets": 200,
        "seed": 7,
        "max_iterations": 4,
        "engine_matrix_only": True,
        # The ENGINE_SPEEDUP_FLOOR gate rides on this workload, so its
        # engine walls are min-of-2 (same repeat count for every
        # engine) to keep a single noisy draw from deciding the ratio.
        "engine_repeats": 2,
    },
}

#: The CI smoke subset: the small negotiated loop (cache + engine
#: matrix) plus the single-pass workload (strategy memo-skip gate).
QUICK_WORKLOADS = ("negotiated_grid_16", "single_pass_dense")

#: Engines the matrix measures.  ``native`` degrades to the vectorized
#: numpy path when numba is absent (the artifact records which via
#: ``native_is_jitted``), so the matrix is runnable everywhere.
ENGINES_MEASURED = ("scalar", "vectorized", "native")

#: The acceptance floor for the tentpole claim: vectorized must route
#: the scaled workload at >= this many times scalar's expansions per
#: second.  Asserted by the pytest benchmark entry point, not the JSON
#: emitter, so a slow CI box can still record an artifact.
ENGINE_SPEEDUP_FLOOR = 5.0

#: One-off reference measurements of the pre-overhaul code path
#: (commit 45ed25b, the last commit before this harness landed),
#: taken on the same machine as the initial committed baseline so the
#: headline "overhaul speedup" claim stays auditable from the
#: artifact.  These are historical constants, not re-measured per run;
#: compare them against the same machine class only.
PRE_OVERHAUL_REFERENCE = {
    "commit": "45ed25b",
    "note": (
        "wall seconds of the pre-overhaul code on the initial baseline "
        "machine; routed results verified byte-identical before/after"
    ),
    "wall_seconds": {"negotiated_grid_24": 8.99},
}


def _route(spec: dict, *, ray_cache: bool, engine: str = "scalar"):
    """Route one workload; returns (wall_seconds, fingerprint, stats, extra)."""
    if spec["kind"] == "negotiated":
        if spec.get("scaled"):
            layout = scaled_congested_layout(n_nets=spec["nets"], seed=spec["seed"])
        else:
            layout = congested_layout(
                n_nets=spec["nets"], seed=spec["seed"], gap=spec["gap"]
            )
        router = NegotiatedRouter(
            layout,
            RouterConfig(ray_cache=ray_cache, engine=engine),
            negotiation=NegotiationConfig(max_iterations=spec["max_iterations"]),
        )
        started = time.perf_counter()
        result = router.run()
        wall = time.perf_counter() - started
        fingerprint = {
            "trees": _tree_fingerprint(result.final),
            "failed": sorted(result.final.failed_nets),
            "iterations": [
                (it.iteration, it.overflowed_passages, it.total_overflow,
                 it.max_overflow, it.wirelength, it.rerouted)
                for it in result.iterations
            ],
            "converged": result.converged,
        }
        # Telemetry reads the run-wide totals: `final.stats` stops
        # accumulating at the best iteration, which would undercount
        # non-converging runs.
        return wall, fingerprint, result.search_stats, {
            "converged": result.converged,
            "iterations": result.iteration_count,
            "wirelength": result.final.total_length,
        }
    layout = netted_layout(spec["cells"], spec["nets"], seed=spec["seed"])
    router = GlobalRouter(layout, RouterConfig(ray_cache=ray_cache, engine=engine))
    started = time.perf_counter()
    route = router.route_all(on_unroutable="skip")
    wall = time.perf_counter() - started
    fingerprint = {
        "trees": _tree_fingerprint(route),
        "failed": sorted(route.failed_nets),
    }
    return wall, fingerprint, route.stats, {"wirelength": route.total_length}


def _route_single_strategy(spec: dict):
    """Route the single-pass workload through the pipeline's strategy.

    ``SingleStrategy`` skips ray-memo population — one pass never
    re-queries a ray often enough to pay the memo back — so even with
    ``ray_cache=True`` in the config the run must record *zero* cache
    lookups, and must still route byte-identically to the direct
    ``route_all`` measurements.  Returns (wall_seconds, fingerprint,
    ray_lookups).
    """
    from repro.api.pipeline import RoutingPipeline
    from repro.api.request import RouteRequest

    layout = netted_layout(spec["cells"], spec["nets"], seed=spec["seed"])
    request = RouteRequest(
        layout=layout,
        config=RouterConfig(ray_cache=True),
        strategy="single",
        on_unroutable="skip",
        verify=False,
    )
    started = time.perf_counter()
    result = RoutingPipeline().run(request)
    wall = time.perf_counter() - started
    fingerprint = {
        "trees": _tree_fingerprint(result.route),
        "failed": sorted(result.route.failed_nets),
    }
    lookups = int(
        result.timings["ray_cache_hits"] + result.timings["ray_cache_misses"]
    )
    return wall, fingerprint, lookups


def _tree_fingerprint(route) -> dict:
    """Everything deterministic about a route (no timings, no cache telemetry)."""
    return {
        name: {
            "paths": [[(p.x, p.y) for p in path.points] for path in tree.paths],
            "costs": [path.cost for path in tree.paths],
            "terminals": list(tree.connected_terminals),
        }
        for name, tree in route.trees.items()
    }


def run_workload(name: str, spec: dict) -> dict:
    """Measure one workload: cache A/B plus the engine matrix.

    Every measured knob carries a byte-identity verdict next to its
    timing; ``engine_matrix_only`` workloads skip the cache A/B and the
    per-kind extras come from their scalar engine run instead.
    """
    entry: dict = {"kind": spec["kind"]}
    scalar_wall = scalar_fp = scalar_stats = None
    if not spec.get("engine_matrix_only"):
        wall_off, fp_off, _stats_off, _ = _route(spec, ray_cache=False)
        wall_on, fp_on, stats_on, extra = _route(spec, ray_cache=True)
        lookups = stats_on.cache_hits + stats_on.cache_misses
        entry.update(
            {
                "wall_seconds_cache_off": round(wall_off, 4),
                "wall_seconds_cache_on": round(wall_on, 4),
                "speedup_cache": round(wall_off / wall_on, 3) if wall_on > 0 else None,
                "nodes_expanded": stats_on.nodes_expanded,
                "expansions_per_second": round(stats_on.nodes_expanded / wall_on, 1)
                if wall_on > 0
                else None,
                "ray_cache_hits": stats_on.cache_hits,
                "ray_cache_misses": stats_on.cache_misses,
                "ray_cache_hit_rate": round(stats_on.cache_hit_rate, 4)
                if lookups
                else 0.0,
                "identical_cache_on_off": fp_off == fp_on,
            }
        )
        entry.update(extra)
        # The cache-on run *is* the scalar engine measurement.
        scalar_wall, scalar_fp, scalar_stats = wall_on, fp_on, stats_on
        if spec["kind"] == "single":
            strategy_wall, strategy_fp, strategy_lookups = _route_single_strategy(spec)
            entry["strategy_wall_seconds"] = round(strategy_wall, 4)
            entry["strategy_ray_lookups"] = strategy_lookups
            entry["identical_strategy_skip"] = strategy_fp == fp_on

    engines: dict[str, dict] = {}
    repeats = spec.get("engine_repeats", 1)
    for engine in ENGINES_MEASURED:
        if engine == "scalar" and scalar_stats is not None:
            wall, fp, stats = scalar_wall, scalar_fp, scalar_stats
        else:
            wall, fp, stats, extra = _route(spec, ray_cache=True, engine=engine)
            # Min-of-N wall per engine (every engine gets the same
            # repeat count, so the speedup ratio stays honest); routed
            # results are deterministic, so the identity verdict uses
            # the first run's fingerprint.
            for _ in range(repeats - 1):
                wall_r, _fp_r, stats_r, _extra_r = _route(
                    spec, ray_cache=True, engine=engine
                )
                if wall_r < wall:
                    wall, stats = wall_r, stats_r
            if engine == "scalar":
                scalar_wall, scalar_fp, scalar_stats = wall, fp, stats
                entry["nodes_expanded"] = stats.nodes_expanded
                entry.update(extra)
        engines[engine] = {
            "wall_seconds": round(wall, 4),
            "nodes_expanded": stats.nodes_expanded,
            "expansions_per_second": round(stats.nodes_expanded / wall, 1)
            if wall > 0
            else None,
            "speedup_vs_scalar": round(scalar_wall / wall, 3) if wall > 0 else None,
            "identical_to_scalar": fp == scalar_fp,
        }
    entry["engines"] = engines
    entry["engine_repeats"] = repeats
    entry["native_is_jitted"] = NATIVE_AVAILABLE
    return entry


def run_suite(quick: bool = False) -> dict[str, dict]:
    """Run the (quick or full) workload set; returns per-workload metrics."""
    names = QUICK_WORKLOADS if quick else tuple(WORKLOADS)
    return {name: run_workload(name, WORKLOADS[name]) for name in names}


def bench_x5_hotpath(benchmark):
    results = run_suite(quick=False)

    cache_results = {
        name: entry for name, entry in results.items()
        if "identical_cache_on_off" in entry
    }
    rows = [
        [
            name,
            entry["kind"],
            f"{entry['wall_seconds_cache_off'] * 1e3:.0f}",
            f"{entry['wall_seconds_cache_on'] * 1e3:.0f}",
            f"{entry['speedup_cache']:.2f}x",
            f"{entry['ray_cache_hit_rate'] * 100:.1f}%",
            f"{entry['expansions_per_second']:.0f}",
            "yes" if entry["identical_cache_on_off"] else "NO",
        ]
        for name, entry in cache_results.items()
    ]
    table = format_table(
        ["workload", "kind", "no-cache ms", "cache ms", "speedup",
         "hit rate", "expand/s", "identical"],
        rows,
        title="X5: hot-path overhaul — ray-cache A/B on the tracked workloads",
    )
    report("x5_hotpath", table)

    engine_rows = [
        [
            name,
            engine,
            f"{stats['wall_seconds'] * 1e3:.0f}",
            f"{stats['expansions_per_second']:.0f}",
            f"{stats['speedup_vs_scalar']:.2f}x",
            "yes" if stats["identical_to_scalar"] else "NO",
        ]
        for name, entry in results.items()
        for engine, stats in entry["engines"].items()
    ]
    engine_table = format_table(
        ["workload", "engine", "wall ms", "expand/s", "vs scalar", "identical"],
        engine_rows,
        title=(
            "X5: search engine matrix "
            f"(native {'jitted' if NATIVE_AVAILABLE else 'numpy fallback'})"
        ),
    )
    report("x5_engines", engine_table)

    # The cache must never change routed results...
    assert all(e["identical_cache_on_off"] for e in cache_results.values()), (
        "ray cache changed routed results"
    )
    # ...and on the negotiated multi-iteration workloads (static
    # obstacles re-queried every iteration) it must actually hit.
    for name, entry in cache_results.items():
        if entry["kind"] == "negotiated":
            assert entry["ray_cache_hit_rate"] > 0.5, (
                f"{name}: ray cache hit rate {entry['ray_cache_hit_rate']} "
                "suspiciously low on a static-obstacle loop"
            )

    # No engine may ever change routed results.
    for name, entry in results.items():
        for engine, stats in entry["engines"].items():
            assert stats["identical_to_scalar"], (
                f"{name}: engine {engine} changed routed results"
            )
    # The single-pass strategy skips memo population without changing
    # the route.
    single = results["single_pass_dense"]
    assert single["identical_strategy_skip"], (
        "single-pass strategy changed the route"
    )
    assert single["strategy_ray_lookups"] == 0, (
        f"single-pass strategy still touched the ray memo "
        f"({single['strategy_ray_lookups']} lookups)"
    )
    # The tentpole claim: vectorized beats scalar by the recorded floor
    # on the scaled workload (where batch sizes amortize the overhead).
    scaled = results["negotiated_scaled_200"]["engines"]["vectorized"]
    assert scaled["speedup_vs_scalar"] >= ENGINE_SPEEDUP_FLOOR, (
        f"vectorized speedup {scaled['speedup_vs_scalar']}x below the "
        f"{ENGINE_SPEEDUP_FLOOR}x floor on negotiated_scaled_200"
    )

    # Timed reference for the pytest-benchmark trend: the quick
    # negotiated workload with the cache on (the shipping default).
    spec = WORKLOADS[QUICK_WORKLOADS[0]]
    benchmark(lambda: _route(spec, ray_cache=True))
