"""X5 — the hot-path overhaul, measured.

Three changes landed together: the epoch-cached ray tracer
(:class:`~repro.geometry.raytrace.ObstacleSet` memoizes ``first_hit``
per mutation epoch), the flattened cost-model inner loops
(:class:`~repro.core.costs.CongestionPenaltyCost`), and the lean
OPEN/CLOSED core (flat heap tuples, slotted nodes).  This bench pins
the two claims the overhaul makes:

* **identity** — routed results are byte-identical with the ray cache
  on and off: same paths, same costs, same failed nets, same
  per-iteration overflow trajectory.  The cache may only change how
  fast answers arrive, never the answers.
* **speed** — the negotiated multi-iteration workload (the rip-up
  loop re-searches the same static obstacle set every iteration, so
  cache hit rates are high) runs measurably faster; BENCH_hotpath.json
  tracks the trajectory PR over PR via ``benchmarks/run_suite.py``.

Run standalone via ``pytest benchmarks/bench_x5_hotpath.py
--benchmark-only`` or through the suite driver (which also emits the
JSON artifact)::

    PYTHONPATH=src python benchmarks/run_suite.py --quick
"""

from __future__ import annotations

import time

from repro.core.negotiate import NegotiatedRouter, NegotiationConfig
from repro.core.router import GlobalRouter, RouterConfig
from repro.analysis.tables import format_table

from benchmarks.workloads import congested_layout, netted_layout, report

#: Workload definitions, smallest first.  ``run_suite.py --quick`` runs
#: the names in :data:`QUICK_WORKLOADS`; the committed baseline
#: (BENCH_hotpath.json) records the full set so quick CI runs can still
#: compare against it by name.
WORKLOADS: dict[str, dict] = {
    "negotiated_grid_16": {
        "kind": "negotiated",
        "nets": 16,
        "seed": 5,
        "gap": 3,
        "max_iterations": 10,
    },
    "negotiated_grid_24": {
        "kind": "negotiated",
        "nets": 24,
        "seed": 5,
        "gap": 3,
        "max_iterations": 12,
    },
    "single_pass_dense": {
        "kind": "single",
        "cells": 36,
        "nets": 28,
        "seed": 11,
    },
}

QUICK_WORKLOADS = ("negotiated_grid_16",)

#: One-off reference measurements of the pre-overhaul code path
#: (commit 45ed25b, the last commit before this harness landed),
#: taken on the same machine as the initial committed baseline so the
#: headline "overhaul speedup" claim stays auditable from the
#: artifact.  These are historical constants, not re-measured per run;
#: compare them against the same machine class only.
PRE_OVERHAUL_REFERENCE = {
    "commit": "45ed25b",
    "note": (
        "wall seconds of the pre-overhaul code on the initial baseline "
        "machine; routed results verified byte-identical before/after"
    ),
    "wall_seconds": {"negotiated_grid_24": 8.99},
}


def _route(spec: dict, *, ray_cache: bool):
    """Route one workload; returns (wall_seconds, fingerprint, stats, extra)."""
    if spec["kind"] == "negotiated":
        layout = congested_layout(n_nets=spec["nets"], seed=spec["seed"], gap=spec["gap"])
        router = NegotiatedRouter(
            layout,
            RouterConfig(ray_cache=ray_cache),
            negotiation=NegotiationConfig(max_iterations=spec["max_iterations"]),
        )
        started = time.perf_counter()
        result = router.run()
        wall = time.perf_counter() - started
        fingerprint = {
            "trees": _tree_fingerprint(result.final),
            "failed": sorted(result.final.failed_nets),
            "iterations": [
                (it.iteration, it.overflowed_passages, it.total_overflow,
                 it.max_overflow, it.wirelength, it.rerouted)
                for it in result.iterations
            ],
            "converged": result.converged,
        }
        # Telemetry reads the run-wide totals: `final.stats` stops
        # accumulating at the best iteration, which would undercount
        # non-converging runs.
        return wall, fingerprint, result.search_stats, {
            "converged": result.converged,
            "iterations": result.iteration_count,
            "wirelength": result.final.total_length,
        }
    layout = netted_layout(spec["cells"], spec["nets"], seed=spec["seed"])
    router = GlobalRouter(layout, RouterConfig(ray_cache=ray_cache))
    started = time.perf_counter()
    route = router.route_all(on_unroutable="skip")
    wall = time.perf_counter() - started
    fingerprint = {
        "trees": _tree_fingerprint(route),
        "failed": sorted(route.failed_nets),
    }
    return wall, fingerprint, route.stats, {"wirelength": route.total_length}


def _tree_fingerprint(route) -> dict:
    """Everything deterministic about a route (no timings, no cache telemetry)."""
    return {
        name: {
            "paths": [[(p.x, p.y) for p in path.points] for path in tree.paths],
            "costs": [path.cost for path in tree.paths],
            "terminals": list(tree.connected_terminals),
        }
        for name, tree in route.trees.items()
    }


def run_workload(name: str, spec: dict) -> dict:
    """Measure one workload cache-off vs cache-on; assert byte-identity."""
    wall_off, fp_off, _stats_off, _ = _route(spec, ray_cache=False)
    wall_on, fp_on, stats_on, extra = _route(spec, ray_cache=True)
    identical = fp_off == fp_on
    lookups = stats_on.cache_hits + stats_on.cache_misses
    entry = {
        "kind": spec["kind"],
        "wall_seconds_cache_off": round(wall_off, 4),
        "wall_seconds_cache_on": round(wall_on, 4),
        "speedup_cache": round(wall_off / wall_on, 3) if wall_on > 0 else None,
        "nodes_expanded": stats_on.nodes_expanded,
        "expansions_per_second": round(stats_on.nodes_expanded / wall_on, 1)
        if wall_on > 0
        else None,
        "ray_cache_hits": stats_on.cache_hits,
        "ray_cache_misses": stats_on.cache_misses,
        "ray_cache_hit_rate": round(stats_on.cache_hit_rate, 4) if lookups else 0.0,
        "identical_cache_on_off": identical,
    }
    entry.update(extra)
    return entry


def run_suite(quick: bool = False) -> dict[str, dict]:
    """Run the (quick or full) workload set; returns per-workload metrics."""
    names = QUICK_WORKLOADS if quick else tuple(WORKLOADS)
    return {name: run_workload(name, WORKLOADS[name]) for name in names}


def bench_x5_hotpath(benchmark):
    results = run_suite(quick=False)

    rows = [
        [
            name,
            entry["kind"],
            f"{entry['wall_seconds_cache_off'] * 1e3:.0f}",
            f"{entry['wall_seconds_cache_on'] * 1e3:.0f}",
            f"{entry['speedup_cache']:.2f}x",
            f"{entry['ray_cache_hit_rate'] * 100:.1f}%",
            f"{entry['expansions_per_second']:.0f}",
            "yes" if entry["identical_cache_on_off"] else "NO",
        ]
        for name, entry in results.items()
    ]
    table = format_table(
        ["workload", "kind", "no-cache ms", "cache ms", "speedup",
         "hit rate", "expand/s", "identical"],
        rows,
        title="X5: hot-path overhaul — ray-cache A/B on the tracked workloads",
    )
    report("x5_hotpath", table)

    # The cache must never change routed results...
    assert all(e["identical_cache_on_off"] for e in results.values()), (
        "ray cache changed routed results"
    )
    # ...and on the negotiated multi-iteration workloads (static
    # obstacles re-queried every iteration) it must actually hit.
    for name, entry in results.items():
        if entry["kind"] == "negotiated":
            assert entry["ray_cache_hit_rate"] > 0.5, (
                f"{name}: ray cache hit rate {entry['ray_cache_hit_rate']} "
                "suspiciously low on a static-obstacle loop"
            )

    # Timed reference for the pytest-benchmark trend: the quick
    # negotiated workload with the cache on (the shipping default).
    spec = WORKLOADS[QUICK_WORKLOADS[0]]
    benchmark(lambda: _route(spec, ray_cache=True))
