"""Legacy setup shim.

Kept so that ``pip install -e .`` works in offline environments whose
setuptools cannot build PEP 660 editable wheels (no ``wheel`` package).
All real metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
