#!/usr/bin/env python3
"""The unified API: RouteRequest → RoutingPipeline → RouteResult.

One declarative request shape drives every strategy, every frontend
(library, CLI, batch), and round-trips through JSON — the contract a
routing *service* would speak.  This example shows:

1. the three built-in strategies behind one request/result shape,
2. request and result JSON round-trips,
3. a third-party strategy registered with ``@register_strategy``,
4. ``route_many`` batching several layouts over one executor.

Run:  python examples/pipeline_api.py
"""

import random

from repro import LayoutSpec, grid_layout, random_layout
from repro.api import (
    RouteRequest,
    RouteResult,
    RoutingPipeline,
    StrategyOutcome,
    StrategyRegistry,
    route_many,
)
from repro.analysis.tables import format_table
from repro.layout.generators import random_netlist


def congested_layout():
    """Nine macros with tight passages; 16 nets overload the middle."""
    layout = grid_layout(3, 3, cell_width=20, cell_height=20, gap=3, margin=8)
    rng = random.Random(5)
    spec = LayoutSpec(terminals_per_net=(2, 3), pad_fraction=0.0)
    for net in random_netlist(layout, 16, rng=rng, spec=spec):
        layout.add_net(net)
    return layout


def main() -> None:
    layout = congested_layout()
    pipeline = RoutingPipeline()

    # 1. One request shape, three strategies ---------------------------
    rows = []
    for strategy, params in (
        ("single", {}),
        ("two-pass", {"penalty_weight": 4.0, "passes": 3}),
        ("negotiated", {"max_iterations": 10}),
    ):
        request = RouteRequest(
            layout=layout, strategy=strategy, strategy_params=params
        )
        result = pipeline.run(request)
        rows.append([
            strategy,
            result.summary.total_length,
            result.congestion_after.total_overflow,
            "-" if result.converged is None else ("yes" if result.converged else "no"),
            len(result.violations),
            f"{result.timings['total'] * 1e3:.1f}",
        ])
    print(format_table(
        ["strategy", "wirelength", "overflow", "legal", "violations", "t ms"],
        rows,
        title="one request shape, three strategies",
    ))
    print()

    # 2. Requests and results are JSON documents -----------------------
    request = RouteRequest(
        layout=layout, strategy="negotiated", strategy_params={"max_iterations": 10}
    )
    reloaded_request = RouteRequest.from_json(request.to_json())
    result = pipeline.run(reloaded_request)
    reloaded_result = RouteResult.from_json(result.to_json())
    print(f"request JSON round-trip: strategy={reloaded_request.strategy!r}, "
          f"params={dict(reloaded_request.strategy_params)}")
    print(f"result  JSON round-trip: wirelength "
          f"{reloaded_result.total_length} == {result.total_length}, "
          f"{len(reloaded_result.iterations)} iteration records survive\n")

    # 3. Third parties plug strategies into a registry ------------------
    registry = StrategyRegistry()

    @registry.register("refine-then-route")
    class RefineThenRoute:
        """A custom policy: just flip on per-net refinement."""

        def run(self, router, request):
            import dataclasses

            from repro.core.router import GlobalRouter

            refined = GlobalRouter(
                router.layout, dataclasses.replace(router.config, refine=True)
            )
            return StrategyOutcome(
                route=refined.route_all(on_unroutable=request.on_unroutable)
            )

    custom = RoutingPipeline(registry).run(
        RouteRequest(layout=layout, strategy="refine-then-route")
    )
    print(f"custom strategy 'refine-then-route': wirelength "
          f"{custom.total_length} (plain single: {rows[0][1]})\n")

    # 4. Batch: many layouts, one executor ------------------------------
    requests = [
        RouteRequest(layout=random_layout(LayoutSpec(n_cells=8, n_nets=6), seed=s))
        for s in range(4)
    ]
    results = route_many(requests, workers=2, executor="thread")
    print(format_table(
        ["layout seed", "nets", "wirelength", "overflow"],
        [
            [seed, r.summary.nets_routed, r.total_length,
             r.congestion_after.total_overflow]
            for seed, r in enumerate(results)
        ],
        title="route_many over one shared executor",
    ))


if __name__ == "__main__":
    main()
