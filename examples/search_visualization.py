#!/usr/bin/env python3
"""Figure 1, live: watch the line-search A* explore the routing plane.

Renders the expansion of the gridless A* on the reconstructed Figure 1
scene as a sequence of ASCII snapshots, then prints the node-count
comparison against the Lee–Moore wavefront on the same problem.

Run:  python examples/search_visualization.py
"""

from repro import EscapeMode, PathRequest, Point, TargetSet, find_path, lee_moore_route
from repro.layout.generators import figure1_layout
from repro.search.stats import ExpansionTrace
from repro.analysis.render import render_expansion
from repro.analysis.tables import format_table


def snapshot(layout, trace: ExpansionTrace, upto: int, start, goal) -> str:
    partial = ExpansionTrace(entries=trace.entries[:upto])
    return render_expansion(layout, partial, None, start=start, goal=goal, width=66)


def main() -> None:
    layout, start, goal = figure1_layout()
    obs = layout.obstacles()

    result = find_path(
        PathRequest(
            obstacles=obs,
            sources=[(start, 0.0)],
            targets=TargetSet(points=[goal]),
            mode=EscapeMode.FULL,
            trace=True,
        )
    )
    trace = result.trace
    assert trace is not None

    total = len(trace)
    for fraction in (0.25, 0.5, 1.0):
        upto = max(1, int(total * fraction))
        print(f"--- expansion after {upto} of {total} node expansions ---")
        print(snapshot(layout, trace, upto, start, goal))
        print()

    print("--- final route ---")
    print(
        render_expansion(
            layout, trace, list(result.path.points), start=start, goal=goal, width=66
        )
    )

    lee = lee_moore_route(obs, start, goal)
    table = format_table(
        ["router", "path length", "nodes expanded"],
        [
            ["line-search A*", result.path.length, result.stats.nodes_expanded],
            ["Lee-Moore wavefront", lee.path.length, lee.stats.nodes_expanded],
        ],
        title="same optimum, very different effort:",
    )
    print()
    print(table)


if __name__ == "__main__":
    main()
