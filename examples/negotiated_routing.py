#!/usr/bin/env python3
"""Negotiated rip-up-and-reroute on an over-subscribed floorplan.

Where ``congestion_twopass.py`` demonstrates the single feedback round
sketched in the paper's Conclusions, this example runs the iterated
PathFinder-style negotiation: route everything, then repeatedly rip up
the nets crossing over-capacity passages and reroute them under a cost
that combines present passage utilization with accumulated overflow
history, until every passage fits.  The workload is deliberately
over-subscribed so the two-pass scheme cannot legalize it.

Run:  python examples/negotiated_routing.py
"""

import random

from repro import NegotiatedRouter, grid_layout
from repro.api import RouteRequest, RoutingPipeline
from repro.layout.generators import LayoutSpec, random_netlist
from repro.analysis.tables import format_table


def main() -> None:
    # Nine identical macros with 3-unit passages; 16 random nets are
    # more than the central corridors can take on the first pass.
    layout = grid_layout(3, 3, cell_width=20, cell_height=20, gap=3, margin=8)
    rng = random.Random(5)
    spec = LayoutSpec(terminals_per_net=(2, 3), pad_fraction=0.0)
    for net in random_netlist(layout, 16, rng=rng, spec=spec):
        layout.add_net(net)
    print(f"{len(layout.cells)} macros, {len(layout.nets)} nets\n")

    # The paper's two-pass sketch gets stuck: one penalized repass can
    # only push the affected nets somewhere else.  (Routed through the
    # unified pipeline — the canonical entry point for any strategy.)
    two_pass = RoutingPipeline().run(RouteRequest(
        layout=layout,
        strategy="two-pass",
        strategy_params={"penalty_weight": 4.0},
    ))
    print(f"two-pass:   overflow {two_pass.congestion_before.total_overflow} -> "
          f"{two_pass.congestion_after.total_overflow} (stuck over capacity)")

    # Negotiation iterates with accumulating history until legal.
    result = NegotiatedRouter(layout).run()
    status = "converged" if result.converged else "budget exhausted"
    print(f"negotiated: overflow {result.congestion_before.total_overflow} -> "
          f"{result.congestion_after.total_overflow} ({status} after "
          f"{result.iteration_count} iterations)\n")

    rows = [
        [
            it.iteration,
            it.overflowed_passages,
            it.total_overflow,
            it.max_overflow,
            it.wirelength,
            f"{it.wirelength_delta:+d}" if it.iteration else "-",
            it.rerouted,
            f"{it.elapsed_seconds * 1e3:.0f}",
        ]
        for it in result.iterations
    ]
    print(format_table(
        ["iter", "passages over", "overflow", "max", "wirelength", "delta",
         "rerouted", "t ms"],
        rows,
        title="negotiation convergence (iteration 0 is the first pass)",
    ))
    print(f"\nwirelength price of legality: "
          f"{result.first.total_length} -> {result.final.total_length} "
          f"({len(result.rerouted_nets)} distinct nets rerouted)")


if __name__ == "__main__":
    main()
