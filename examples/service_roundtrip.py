"""Routing as a service, end to end in one process.

Boots the real HTTP service on an ephemeral port, routes a generated
layout through the real client, then demonstrates the three serving
behaviours the one-shot CLI cannot offer:

* async jobs — submit returns immediately; poll `GET /jobs/<id>`;
* content-addressed reuse — the repeated request is a cache hit;
* coalescing — concurrent identical submissions share one routing run.

Run as ``PYTHONPATH=src python examples/service_roundtrip.py``.
In production the server side is simply ``python -m repro serve``.
"""

from __future__ import annotations

import threading

from repro.api import RouteRequest, RouteResult
from repro.layout.generators import LayoutSpec, random_layout
from repro.service import Client, RoutingService, make_server


def main() -> None:
    service = RoutingService(workers=2, queue_limit=16, cache_size=64)
    server = make_server(service, port=0)  # ephemeral port
    threading.Thread(target=server.serve_forever, daemon=True).start()
    client = Client(f"http://127.0.0.1:{server.server_address[1]}")
    print("service:", client.healthz())

    layout = random_layout(LayoutSpec(n_cells=10, n_nets=8), seed=7)
    request = RouteRequest(layout=layout, strategy="negotiated",
                           strategy_params={"max_iterations": 10})

    # --- async submit + poll -----------------------------------------
    job = client.submit(request)
    print(f"submitted {job['id']} (state={job['state']})")
    done = client.wait(job["id"])
    result = RouteResult.from_dict(done["result"])
    print(f"routed: length={result.total_length} ok={result.ok} "
          f"route={done['timings']['route'] * 1e3:.1f} ms")

    # --- the identical request is served from the cache --------------
    repeat = client.submit(request, wait=True)
    print(f"repeat {repeat['id']}: cache_hit={repeat['cache_hit']}")

    # --- a batch with duplicates: three requests, two routing runs ---
    other = RouteRequest(
        layout=random_layout(LayoutSpec(n_cells=8, n_nets=6), seed=9)
    )
    jobs = client.submit_batch([other, other, request])
    for stub in jobs:
        finished = client.wait(stub["id"])
        print(f"batch {finished['id']}: state={finished['state']} "
              f"cache_hit={finished['cache_hit']} "
              f"coalesced={finished['coalesced']}")

    metrics = client.metrics()
    print("metrics:", {key: metrics[key] for key in (
        "requests", "cache_hits", "coalesced", "completed",
        "route_seconds_p50")})

    server.shutdown()
    server.server_close()
    service.close()


if __name__ == "__main__":
    main()
