#!/usr/bin/env python3
"""Timing-driven negotiation protecting chip-spanning critical nets.

Plain negotiation (``negotiated_routing.py``) optimizes overflow then
wirelength, so it happily detours a chip-spanning net to shorten a
local one — exactly backwards for timing, where the long net *is* the
critical path.  The ``timing-driven`` strategy layers a delay model on
top: per-net criticality (delay / worst delay, recomputed every wave)
blends a delay term into the congestion cost and orders each rip-up
wave most-critical-first, so critical nets hold their shortest paths
while the filler nets absorb the detours.

Run:  python examples/timing_driven.py
"""

from repro.api import RouteRequest, RoutingPipeline
from repro.core.timing import analyze_route_timing
from repro.scenarios.families import FAMILIES
from repro.analysis.tables import format_table


def main() -> None:
    # Three cross-chip critical pairs over a congested 2x3 macro grid,
    # plus ten local filler nets — the same family the conformance
    # harness and benchmarks/bench_x7_timing.py gate.
    layout = FAMILIES["long-critical-nets"].build(79)
    critical = sorted(n.name for n in layout.nets if n.name.startswith("crit"))
    print(f"{len(layout.cells)} macros, {len(layout.nets)} nets "
          f"({len(critical)} critical: {', '.join(critical)})\n")

    pipeline = RoutingPipeline()

    def route(strategy: str):
        return pipeline.run(RouteRequest(
            layout=layout,
            strategy=strategy,
            strategy_params={"max_iterations": 8},
            on_unroutable="skip",
        ))

    negotiated = route("negotiated")
    timing = route("timing-driven")

    # The timing-driven result carries its analysis; judge the
    # timing-blind result with the same delay model for a fair compare.
    blind = analyze_route_timing(negotiated.route, layout)
    aware = timing.timing
    assert aware is not None  # the strategy always computes it

    rows = []
    for name in critical:
        before, after = blind.nets[name].delay, aware.nets[name].delay
        rows.append([
            name,
            f"{before:g}",
            f"{after:g}",
            f"{(before - after) / before * 100:+.0f}%" if before else "-",
            f"{aware.nets[name].criticality:.2f}",
        ])
    print(format_table(
        ["net", "negotiated delay", "timing-driven delay", "change",
         "criticality"],
        rows,
        title="critical-net delay, same layout, same iteration budget",
    ))

    worst_before = max(blind.nets[name].delay for name in critical)
    worst_after = max(aware.nets[name].delay for name in critical)
    print(f"\nworst critical-net delay: {worst_before:g} -> {worst_after:g}")
    print(f"overflow: negotiated {negotiated.congestion_after.total_overflow}, "
          f"timing-driven {timing.congestion_after.total_overflow}")
    print(f"wirelength price of delay protection: "
          f"{negotiated.route.total_length} -> {timing.route.total_length}")


if __name__ == "__main__":
    main()
