#!/usr/bin/env python3
"""Chip assembly from a macro library — the paper's motivating scenario.

"Large components, or macros as they are sometimes called, are produced
independently.  These components or cells can then be connected
together, along with the pads, to form a complete chip."

This example instances macros from a tiny library (with rotation),
places pads on the chip boundary, builds multi-terminal / multi-pin
nets, routes everything, and writes an SVG of the assembled chip.

Run:  python examples/macrocell_chip.py [out.svg]
"""

import sys

from repro import (
    Cell,
    GlobalRouter,
    Layout,
    Net,
    Pin,
    Point,
    Rect,
    RouterConfig,
    Terminal,
    render_layout,
    summarize_route,
    validate_layout,
    verify_global_route,
)
from repro.analysis.svg import layout_to_svg, save_svg

# ----------------------------------------------------------------------
# A miniature macro library: prototypes at the origin.
# ----------------------------------------------------------------------
LIBRARY = {
    "alu16": Cell.rect("alu16", 0, 0, 42, 28),
    "regfile": Cell.rect("regfile", 0, 0, 30, 36),
    "ctrl": Cell.rect("ctrl", 0, 0, 24, 20),
    "io": Cell.rect("io", 0, 0, 16, 12),
}


def place(proto: str, name: str, x: int, y: int, *, rotate: bool = False) -> Cell:
    """Instance a library macro at (x, y), optionally rotated 90 degrees."""
    cell = LIBRARY[proto].renamed(name)
    if rotate:
        cell = cell.rotated90()
    return cell.translated(x, y)


def main() -> None:
    chip = Layout(Rect(0, 0, 170, 130))
    chip.add_cell(place("alu16", "alu", 18, 70))
    chip.add_cell(place("regfile", "regs", 80, 66))
    chip.add_cell(place("ctrl", "ctrl", 126, 78))
    chip.add_cell(place("alu16", "mac", 20, 16, rotate=True))
    chip.add_cell(place("regfile", "cache", 76, 14, rotate=True))
    chip.add_cell(place("io", "io0", 132, 22))
    chip.add_cell(place("io", "io1", 132, 44))

    # A 4-terminal result bus; the regs terminal exposes two
    # electrically equivalent pins (east and south edge).
    chip.add_net(
        Net(
            "result_bus",
            [
                Terminal("alu.out", [Pin("p0", Point(60, 84), "alu")]),
                Terminal(
                    "regs.in",
                    [
                        Pin("east", Point(110, 80), "regs"),
                        Pin("south", Point(95, 66), "regs"),
                    ],
                ),
                Terminal("mac.in", [Pin("p0", Point(48, 58), "mac")]),
                Terminal("cache.in", [Pin("p0", Point(76, 40), "cache")]),
            ],
        )
    )
    chip.add_net(Net.two_point("ctrl_alu", Point(126, 88), Point(60, 90)))
    chip.add_net(Net.two_point("ctrl_mac", Point(138, 78), Point(48, 30)))
    chip.add_net(Net.two_point("io0_cache", Point(132, 28), Point(112, 30)))
    chip.add_net(Net.two_point("io1_regs", Point(132, 50), Point(110, 72)))
    # Pads on the chip boundary.
    chip.add_net(Net.two_point("pad_clk", Point(0, 110), Point(18, 92)))
    chip.add_net(Net.two_point("pad_din", Point(85, 0), Point(90, 14)))

    validate_layout(chip)
    route = GlobalRouter(chip, RouterConfig(inverted_corner=True)).route_all()
    assert verify_global_route(route, chip) == {}

    summary = summarize_route(route, chip)
    print(f"chip: {len(chip.cells)} macros, {len(chip.nets)} nets")
    print(
        f"routed {summary.nets_routed}/{summary.nets_total}, "
        f"wirelength {summary.total_length}, "
        f"len/hpwl {summary.length_over_hpwl:.3f}"
    )
    print(render_layout(chip, route, width=76))

    out = sys.argv[1] if len(sys.argv) > 1 else "macrocell_chip.svg"
    save_svg(out, layout_to_svg(chip, route))
    print(f"wrote {out}")


if __name__ == "__main__":
    main()
