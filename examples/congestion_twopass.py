#!/usr/bin/env python3
"""Congestion-driven two-pass routing on a deliberately tight floorplan.

Reproduces the Conclusions' scheme interactively: route everything,
find the overloaded passages between adjacent macros, reroute the
affected nets with the congested regions penalized, and show the
relief (and its wirelength price).

Run:  python examples/congestion_twopass.py
"""

import random

from repro import GlobalRouter, grid_layout
from repro.api import RouteRequest, TwoPassStrategy
from repro.core.congestion import find_passages
from repro.layout.generators import LayoutSpec, random_netlist
from repro.analysis.tables import format_table


def main() -> None:
    # Nine identical macros with 3-unit passages; 24 random nets force
    # traffic through the middle.
    layout = grid_layout(3, 3, cell_width=20, cell_height=20, gap=3, margin=8)
    rng = random.Random(5)
    spec = LayoutSpec(terminals_per_net=(2, 3), pad_fraction=0.0)
    for net in random_netlist(layout, 24, rng=rng, spec=spec):
        layout.add_net(net)

    passages = find_passages(layout)
    print(f"{len(layout.cells)} macros, {len(layout.nets)} nets, "
          f"{len(passages)} passages detected\n")

    # Running the strategy object directly (rather than the whole
    # RoutingPipeline) keeps the full per-passage congestion maps and
    # the unpenalized first-pass route for the inspection tables below;
    # the request only contributes the raise-vs-skip policy here.
    router = GlobalRouter(layout)
    request = RouteRequest(layout=layout, strategy="two-pass")
    outcome = TwoPassStrategy(penalty_weight=4.0, passes=4).run(router, request)

    before, after = outcome.congestion_before, outcome.congestion_after
    print("worst passages before the second pass:")
    worst = sorted(before.entries, key=lambda e: -e.utilization)[:5]
    rows = [
        [
            "|".join(e.passage.between),
            e.passage.capacity,
            e.usage,
            f"{e.utilization:.2f}",
        ]
        for e in worst
    ]
    print(format_table(["passage", "capacity", "nets", "utilization"], rows))
    print()

    summary = format_table(
        ["metric", "first pass", "after repasses"],
        [
            ["total overflow", before.total_overflow, after.total_overflow],
            ["peak utilization", f"{before.max_utilization:.2f}",
             f"{after.max_utilization:.2f}"],
            ["wirelength", outcome.first.total_length, outcome.route.total_length],
        ],
    )
    print(summary)
    print(f"\nnets rerouted: {len(outcome.rerouted_nets)}")


if __name__ == "__main__":
    main()
