#!/usr/bin/env python3
"""Placement feedback: let routing congestion adjust the floorplan.

The paper's introduction defers this to "further research": feed
routing congestion back into placement and worry about convergence.
This example runs the loop on a deliberately tight 2x2 floorplan and
prints the overflow trajectory, the cell moves applied, and the final
(adjusted) floorplan.

Run:  python examples/placement_feedback.py
"""

import random

from repro.core.feedback import adjust_placement
from repro.layout.generators import LayoutSpec, grid_layout, random_netlist
from repro.analysis.render import render_layout
from repro.analysis.tables import format_table


def main() -> None:
    layout = grid_layout(2, 2, cell_width=20, cell_height=20, gap=2, margin=14)
    rng = random.Random(7)
    spec = LayoutSpec(terminals_per_net=(2, 2), pad_fraction=0.0)
    for net in random_netlist(layout, 16, rng=rng, spec=spec):
        layout.add_net(net)

    print("original floorplan (2-unit passages):")
    print(render_layout(layout, width=60, show_pins=False))
    print()

    result = adjust_placement(layout, step=2, max_rounds=8)

    print("overflow trajectory:", " -> ".join(str(v) for v in result.overflow_history))
    outcome = "converged" if result.converged else (
        "stalled" if result.stalled else "stopped (budget or no legal move)"
    )
    print("outcome:", outcome)
    print()
    if result.moves:
        print(format_table(
            ["cell", "dx", "dy"],
            [[name, dx, dy] for name, dx, dy in result.moves],
            title="placement adjustments applied:",
        ))
        print()

    print("adjusted floorplan with final routing:")
    print(render_layout(result.layout, result.route, width=60, show_pins=False))


if __name__ == "__main__":
    main()
