#!/usr/bin/env python3
"""Design iteration without starting over: the incremental reroute loop.

The paper opens with the observation that "multiple design iterations
are inevitable".  This example plays three typical iterations against
a routed grid — an ECO net swap, a cell nudge, and a block of net
replacements — each expressed as a `LayoutDelta` and re-routed with
`RoutingPipeline.reroute`.  For every step it prints the dirty-set
partition (kept / ripped / new), the incremental wall time against a
from-scratch run of the same mutated layout, and whether the result
is byte-identical to scratch (guaranteed for net-only deltas under
the single strategy).

Run:  python examples/incremental_reroute.py
"""

import time

from repro.api import RerouteRequest, RouteRequest, RoutingPipeline
from repro.analysis.tables import format_table
from repro.incremental.scripts import (
    disjoint_delta,
    geometry_delta,
    replace_nets_delta,
)
from repro.layout.generators import LayoutSpec, grid_layout, random_netlist
from repro.scenarios import route_fingerprint


def build_layout():
    layout = grid_layout(3, 3, cell_width=16, cell_height=16, gap=3, margin=8)
    spec = LayoutSpec(terminals_per_net=(2, 3), pad_fraction=0.1)
    for net in random_netlist(layout, 18, seed=11, spec=spec):
        layout.add_net(net)
    return layout


def main() -> None:
    pipeline = RoutingPipeline()
    layout = build_layout()
    request = RouteRequest(layout=layout, strategy="single", on_unroutable="skip")

    started = time.perf_counter()
    result = pipeline.run(request)
    base_wall = time.perf_counter() - started
    print(
        f"base route: {len(result.route.trees)} nets, "
        f"wirelength {result.route.total_length}, {base_wall * 1e3:.1f} ms"
    )
    print()

    iterations = [
        ("ECO net swap", lambda cur: disjoint_delta(cur, tag="eco")),
        ("cell nudge", lambda cur: geometry_delta(cur, tag="nudge")),
        ("replace 2 nets", lambda cur: replace_nets_delta(cur, 2)),
    ]

    rows = []
    for label, make_delta in iterations:
        delta = make_delta(request.layout)
        reroute_request = RerouteRequest(base=request, delta=delta)

        started = time.perf_counter()
        incremental = pipeline.reroute(reroute_request, prev_result=result)
        reroute_wall = time.perf_counter() - started

        mutated_request = reroute_request.mutated_request()
        started = time.perf_counter()
        scratch = pipeline.run(mutated_request)
        scratch_wall = time.perf_counter() - started

        identical = route_fingerprint(incremental.route) == route_fingerprint(
            scratch.route
        )
        timings = incremental.timings
        rows.append([
            label,
            f"{timings['kept_nets']:.0f}",
            f"{timings['ripped_nets']:.0f}",
            f"{timings['new_nets']:.0f}",
            f"{reroute_wall * 1e3:.1f}",
            f"{scratch_wall * 1e3:.1f}",
            f"{scratch_wall / reroute_wall:.1f}x",
            "yes" if identical else "no (banded)",
        ])

        # The next iteration amends what this one produced.
        request = mutated_request
        result = incremental

    print(format_table(
        ["iteration", "kept", "ripped", "new", "reroute ms", "scratch ms",
         "speedup", "identical"],
        rows,
        title="three design iterations, incrementally re-routed:",
    ))
    print()
    print(
        "every result above verifies clean; net-only deltas are exact,\n"
        "geometry deltas stay inside the conformance wirelength band\n"
        "(see docs/incremental.md)."
    )


if __name__ == "__main__":
    main()
