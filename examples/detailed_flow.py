#!/usr/bin/env python3
"""The full flow: global routing, then dynamic-channel detailed routing.

Global routes are zero-width center lines that may share tracks; the
detailed phase groups them into dynamic channels by net interference,
left-edge assigns one track per net per channel, stitches moved wires,
and assigns the two metal layers with vias.

Run:  python examples/detailed_flow.py [out.svg]
"""

import sys

from repro import DetailedRouter, GlobalRouter
from repro.layout.generators import LayoutSpec, random_layout
from repro.analysis.svg import layout_to_svg, save_svg
from repro.analysis.tables import format_table
from repro.analysis.verify import verify_detailed, verify_global_route


def main() -> None:
    layout = random_layout(
        LayoutSpec(n_cells=12, n_nets=12, terminals_per_net=(2, 3)), seed=11
    )

    global_route = GlobalRouter(layout).route_all()
    assert verify_global_route(global_route, layout) == {}

    detailed = DetailedRouter(layout).run(global_route)
    assert verify_detailed(detailed, layout) == []

    print(format_table(
        ["phase", "wirelength", "extras"],
        [
            ["global", global_route.total_length,
             f"{global_route.stats.nodes_expanded} nodes expanded"],
            ["detailed", detailed.total_wirelength,
             f"{detailed.via_count} vias, {detailed.track_total} tracks"],
        ],
        title="flow summary",
    ))
    print()

    channel_rows = []
    for plan in sorted(detailed.channels, key=lambda p: -p.net_count)[:8]:
        channel = plan.channel
        orient = "H" if channel.horizontal else "V"
        corridor = str(channel.corridor) if channel.corridor else "broken"
        channel_rows.append(
            [orient, plan.net_count, plan.track_count, channel.capacity, corridor,
             "kept-original" if plan.kept_original else "assigned"]
        )
    print(format_table(
        ["orient", "nets", "tracks", "capacity", "corridor", "status"],
        channel_rows,
        title="busiest dynamic channels",
    ))
    print()
    print(
        f"channels: {detailed.channel_count}, over capacity: "
        f"{detailed.over_capacity_channels}, residual same-layer conflicts: "
        f"{detailed.conflict_count}"
    )

    out = sys.argv[1] if len(sys.argv) > 1 else "detailed_flow.svg"
    save_svg(out, layout_to_svg(layout, detailed=detailed))
    print(f"wrote {out}")


if __name__ == "__main__":
    main()
