#!/usr/bin/env python3
"""Quickstart: place two blocks, route a few nets, inspect the result.

Run:  python examples/quickstart.py
"""

from repro import (
    Cell,
    GlobalRouter,
    Layout,
    Net,
    Point,
    Rect,
    render_layout,
    summarize_route,
    validate_layout,
    verify_global_route,
)


def main() -> None:
    # 1. A routing surface with two macros a comfortable distance apart.
    layout = Layout(Rect(0, 0, 120, 80))
    layout.add_cell(Cell.rect("alu", 15, 20, 30, 40))
    layout.add_cell(Cell.rect("ram", 70, 25, 35, 30))

    # 2. Nets between pins on the cell boundaries (and one pad).
    layout.add_net(Net.two_point("data0", Point(45, 40), Point(70, 40)))
    layout.add_net(Net.two_point("data1", Point(45, 30), Point(70, 30)))
    layout.add_net(Net.two_point("clk", Point(0, 70), Point(85, 55)))

    # 3. Validate against the paper's placement restrictions.
    validate_layout(layout)

    # 4. Route every net independently with line-search A*.
    router = GlobalRouter(layout)
    route = router.route_all()

    # 5. Check and report.
    assert verify_global_route(route, layout) == {}
    summary = summarize_route(route, layout)
    print("routed:", summary.nets_routed, "of", summary.nets_total)
    print("total wirelength:", summary.total_length)
    print("nodes expanded:", summary.nodes_expanded)
    print()
    print(render_layout(layout, route, width=70))

    for name, tree in route.trees.items():
        print(f"{name}: length={tree.total_length} bends={tree.total_bends}")


if __name__ == "__main__":
    main()
