"""Search instrumentation.

The paper's efficiency claims are about *node counts* ("surprisingly
few nodes are generated before an optimal path is found"), so every
search records them; the experiment harness aggregates these into the
reproduced series.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class SearchStats:
    """Counters accumulated during one search.

    Attributes
    ----------
    nodes_expanded:
        Nodes taken off OPEN and expanded.
    nodes_generated:
        Successor nodes produced (including duplicates later discarded).
    nodes_reopened:
        Nodes moved from CLOSED back to OPEN because a cheaper path was
        found — the paper's "pointers must be redirected" case.
    max_open_size:
        High-water mark of the OPEN list (the space cost the paper
        contrasts against grid expansion).
    elapsed_seconds:
        Wall-clock duration of the search.
    termination:
        How the search ended: ``"goal"``, ``"exhausted"`` (OPEN ran
        empty), ``"limit"`` (node limit hit), or ``"none"`` (no search
        has been recorded yet — the neutral element for merging).
    cache_hits / cache_misses:
        Ray-query memo cache traffic attributable to this search (the
        :class:`~repro.geometry.raytrace.ObstacleSet` epoch cache).
        Zero when the cache is disabled.  Telemetry only: two runs that
        route identically may warm the cache differently (e.g. under a
        different worker partitioning), so these are excluded from any
        byte-identity comparison.
    """

    nodes_expanded: int = 0
    nodes_generated: int = 0
    nodes_reopened: int = 0
    max_open_size: int = 0
    elapsed_seconds: float = 0.0
    termination: str = "none"
    cache_hits: int = 0
    cache_misses: int = 0

    @property
    def cache_hit_rate(self) -> float:
        """Hits over total ray-cache lookups (0.0 when none were made)."""
        lookups = self.cache_hits + self.cache_misses
        return self.cache_hits / lookups if lookups else 0.0

    def observe_open_size(self, size: int) -> None:
        """Track the OPEN list high-water mark."""
        if size > self.max_open_size:
            self.max_open_size = size

    def merged_with(self, other: "SearchStats") -> "SearchStats":
        """Combine counters from two searches (multi-connection routing).

        The merged termination is the *worst* of the two, so an
        aggregate reads ``"goal"`` only when every constituent search
        reached its goal.
        """
        severity = {"none": 0, "goal": 1, "exhausted": 2, "limit": 3}
        worst = max(self.termination, other.termination, key=lambda t: severity.get(t, 3))
        return SearchStats(
            nodes_expanded=self.nodes_expanded + other.nodes_expanded,
            nodes_generated=self.nodes_generated + other.nodes_generated,
            nodes_reopened=self.nodes_reopened + other.nodes_reopened,
            max_open_size=max(self.max_open_size, other.max_open_size),
            elapsed_seconds=self.elapsed_seconds + other.elapsed_seconds,
            termination=worst,
            cache_hits=self.cache_hits + other.cache_hits,
            cache_misses=self.cache_misses + other.cache_misses,
        )


@dataclass
class ExpansionTrace:
    """Optional record of the order in which states were expanded.

    Drives the Figure 1 reproduction: rendering the expansion (each
    expanded state with a segment back to its parent) shows how few
    nodes the line-search A* touches compared to a grid wavefront.
    """

    entries: list = field(default_factory=list)

    def record(self, state, parent=None) -> None:
        """Append the next expanded state and its parent state."""
        self.entries.append((state, parent))

    @property
    def states(self) -> list:
        """Expanded states in expansion order."""
        return [state for state, _parent in self.entries]

    def __len__(self) -> int:
        return len(self.entries)
