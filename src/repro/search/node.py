"""Search nodes.

"In the implementation it is important to keep pointers from each
successor back to its parent node.  These pointers provide the means
for following back the path to the start node once the search has
terminated."
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Generic, Hashable, Optional, TypeVar

S = TypeVar("S", bound=Hashable)


@dataclass(eq=False, slots=True)
class SearchNode(Generic[S]):
    """A node in the search graph.

    Slotted: searches allocate one of these per generated state, so the
    per-instance ``__dict__`` is worth eliding (measurably smaller and
    faster to construct on the hot path).

    Attributes
    ----------
    state:
        The underlying problem state (a point, a grid coordinate...).
    g:
        Cost of the best known path from the start to this node — the
        paper's g-hat.
    h:
        Heuristic estimate of remaining cost — the paper's h-hat.
    parent:
        Back-pointer for path reconstruction; updated when a shorter
        path to this state is found ("its pointers must be redirected").
    depth:
        Hop count from the start node (used by depth-limited search).
    """

    state: S
    g: float
    h: float = 0.0
    parent: Optional["SearchNode[S]"] = field(default=None, repr=False)
    depth: int = 0

    @property
    def f(self) -> float:
        """The evaluation function f = g + h."""
        return self.g + self.h

    def path(self) -> list[S]:
        """States from the start node to this node, in order."""
        states: list[S] = []
        node: Optional[SearchNode[S]] = self
        while node is not None:
            states.append(node.state)
            node = node.parent
        states.reverse()
        return states

    def redirect(self, parent: Optional["SearchNode[S]"], g: float) -> None:
        """Point this node at a cheaper parent and update its cost."""
        self.parent = parent
        self.g = g
        self.depth = 0 if parent is None else parent.depth + 1

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"Node({self.state}, g={self.g}, h={self.h})"
