"""State-space search framework.

The paper frames routing as heuristic state-space search, borrowed
"from the field of artificial intelligence": an OPEN list of frontier
nodes, a CLOSED list of expanded nodes, and a family of algorithms
distinguished only by the order in which nodes leave OPEN —
depth-first (LIFO), breadth-first (FIFO), best-first / branch-and-bound
(ascending g), and A* (ascending f = g + h).

This package implements that family once, generically over a
:class:`~repro.search.problem.SearchProblem`, so the Lee–Moore grid
router and the gridless line-search router are literally the same
engine with different successor generators — the paper's central
observation.
"""

from repro.search.node import SearchNode
from repro.search.problem import SearchProblem
from repro.search.stats import SearchStats
from repro.search.engine import Order, SearchResult, search
from repro.search.blind import breadth_first_search, depth_first_search, exhaustive_search

__all__ = [
    "Order",
    "SearchNode",
    "SearchProblem",
    "SearchResult",
    "SearchStats",
    "breadth_first_search",
    "depth_first_search",
    "exhaustive_search",
    "search",
]
