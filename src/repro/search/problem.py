"""The abstract search problem.

A :class:`SearchProblem` supplies the three domain-specific ingredients
the paper identifies: where the search starts, when it is done, and —
"the most difficult step" — how successors are generated, with their
edge costs.  The heuristic defaults to zero, which specializes A* to
best-first / branch-and-bound (and, on a unit grid with FIFO order, to
the Lee–Moore algorithm).
"""

from __future__ import annotations

import abc
from typing import Generic, Hashable, Iterable, TypeVar

S = TypeVar("S", bound=Hashable)


class SearchProblem(abc.ABC, Generic[S]):
    """Domain interface consumed by :func:`repro.search.engine.search`."""

    @abc.abstractmethod
    def start_states(self) -> Iterable[tuple[S, float]]:
        """Initial states with their initial path costs.

        Usually one ``(start, 0)`` pair; the Steiner-tree router seeds
        the whole connected set, which is why this is a collection.
        """

    @abc.abstractmethod
    def is_goal(self, state: S) -> bool:
        """Whether *state* satisfies the search goal."""

    @abc.abstractmethod
    def successors(self, state: S) -> Iterable[tuple[S, float]]:
        """Successor states with the cost of the connecting edge.

        Edge costs must be non-negative: the paper's terminating
        condition relies on "adding non-negative numbers cannot result
        in a smaller number".
        """

    def heuristic(self, state: S) -> float:
        """Estimated remaining cost h-hat (default 0 — blind search).

        For admissibility (A* always finding a minimal-cost path) this
        must never exceed the true remaining cost.
        """
        return 0.0
