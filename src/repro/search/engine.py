"""The generic OPEN/CLOSED search engine.

One loop implements the paper's whole algorithm family: "Search
algorithms are often classified by the order in which nodes are placed
on, and removed from, the OPEN list."  The :class:`Order` enum selects
that order; everything else — goal testing at expansion, the single
active copy per state, reopening CLOSED nodes when a shorter path is
found, the admissible termination condition — is shared.
"""

from __future__ import annotations

import enum
import heapq
import itertools
import time
from collections import deque
from dataclasses import dataclass
from typing import Generic, Hashable, Optional, TypeVar

from repro.errors import SearchError
from repro.search.node import SearchNode
from repro.search.problem import SearchProblem
from repro.search.stats import ExpansionTrace, SearchStats

S = TypeVar("S", bound=Hashable)


class Order(enum.Enum):
    """OPEN-list disciplines, named as in the paper."""

    DEPTH_FIRST = "depth-first"
    BREADTH_FIRST = "breadth-first"
    BEST_FIRST = "best-first"
    A_STAR = "a-star"

    @property
    def is_cost_ordered(self) -> bool:
        """True for the disciplines that pop by path cost (g or f)."""
        return self in (Order.BEST_FIRST, Order.A_STAR)


@dataclass
class SearchResult(Generic[S]):
    """Outcome of one search.

    Attributes
    ----------
    goal:
        The goal node (with parent chain), or ``None`` if no goal was
        reached.
    stats:
        Node counters and timing.
    trace:
        Expansion order, when tracing was requested.
    """

    goal: Optional[SearchNode[S]]
    stats: SearchStats
    trace: Optional[ExpansionTrace] = None

    @property
    def found(self) -> bool:
        """Whether a goal was reached."""
        return self.goal is not None

    @property
    def cost(self) -> float:
        """Cost of the found path.

        Raises :class:`SearchError` when no goal was found.
        """
        if self.goal is None:
            raise SearchError("search found no goal; no cost available")
        return self.goal.g

    @property
    def path(self) -> list[S]:
        """States from start to goal.

        Raises :class:`SearchError` when no goal was found.
        """
        if self.goal is None:
            raise SearchError("search found no goal; no path available")
        return self.goal.path()


def search(
    problem: SearchProblem[S],
    order: Order = Order.A_STAR,
    *,
    node_limit: Optional[int] = None,
    depth_limit: Optional[int] = None,
    exhaustive: bool = False,
    trace: bool = False,
) -> SearchResult[S]:
    """Run the OPEN/CLOSED search over *problem*.

    Parameters
    ----------
    problem:
        Supplies start states, goal test, successors, and heuristic.
    order:
        OPEN-list discipline.  ``A_STAR`` uses f = g + h; ``BEST_FIRST``
        ignores the heuristic and orders by g alone (branch-and-bound);
        the blind orders ignore costs when choosing what to expand.
    node_limit:
        Abort (``stats.termination == "limit"``) after expanding this
        many nodes.  Guards against runaway searches on unroutable
        inputs when using incomplete orders.
    depth_limit:
        For ``DEPTH_FIRST``: "a depth limit is sometimes used to
        prevent the algorithm from going too far down the wrong path".
        Ignored by other orders.
    exhaustive:
        "If we were to ignore our terminating condition and stop only
        when no more nodes were left on OPEN ... This is called
        exhaustive search."  Tracks the best goal instead of stopping
        at the first.
    trace:
        Record the expansion order (for Figure 1 style rendering).

    Notes
    -----
    With cost-ordered disciplines the goal test happens when a node is
    *removed* from OPEN — the paper's admissible terminating condition —
    and CLOSED nodes are moved back to OPEN when a cheaper path to them
    appears.  With blind disciplines each state is visited at most once.
    """
    if order.is_cost_ordered:
        return _cost_ordered_search(
            problem, order, node_limit=node_limit, exhaustive=exhaustive, trace=trace
        )
    return _blind_search(
        problem,
        order,
        node_limit=node_limit,
        depth_limit=depth_limit,
        trace=trace,
    )


# ----------------------------------------------------------------------
# Cost-ordered searches (best-first, A*)
# ----------------------------------------------------------------------
def _cost_ordered_search(
    problem: SearchProblem[S],
    order: Order,
    *,
    node_limit: Optional[int],
    exhaustive: bool,
    trace: bool,
) -> SearchResult[S]:
    stats = SearchStats()
    expansion = ExpansionTrace() if trace else None
    started = time.perf_counter()
    counter = itertools.count()

    use_heuristic = order is Order.A_STAR
    nodes: dict[S, SearchNode[S]] = {}
    status: dict[S, str] = {}
    heap: list[tuple[tuple[float, float], int, float, SearchNode[S]]] = []
    open_size = 0
    best_goal: Optional[SearchNode[S]] = None

    def sort_key(node: SearchNode[S]) -> tuple[float, float]:
        # On equal f prefer the deeper (higher-g) node: it is closer to
        # the goal, which measurably trims expansions without touching
        # admissibility.
        if use_heuristic:
            return (node.f, -node.g)
        return (node.g, 0.0)

    def push(node: SearchNode[S]) -> None:
        nonlocal open_size
        heapq.heappush(heap, (sort_key(node), next(counter), node.g, node))
        status[node.state] = "open"
        open_size += 1
        stats.observe_open_size(open_size)

    for state, g0 in problem.start_states():
        if g0 < 0:
            raise SearchError(f"negative start cost {g0} for state {state}")
        h0 = problem.heuristic(state) if use_heuristic else 0.0
        node = SearchNode(state, g=g0, h=h0)
        existing = nodes.get(state)
        if existing is None or g0 < existing.g:
            nodes[state] = node
            push(node)

    while heap:
        _, _, pushed_g, node = heapq.heappop(heap)
        open_size -= 1
        if status.get(node.state) != "open" or pushed_g != node.g:
            continue  # stale heap entry: the node was re-pushed cheaper
        status[node.state] = "closed"

        if problem.is_goal(node.state):
            if not exhaustive:
                stats.termination = "goal"
                stats.elapsed_seconds = time.perf_counter() - started
                return SearchResult(node, stats, expansion)
            if best_goal is None or node.g < best_goal.g:
                best_goal = node

        stats.nodes_expanded += 1
        if expansion is not None:
            parent_state = node.parent.state if node.parent else None
            expansion.record(node.state, parent_state)
        if node_limit is not None and stats.nodes_expanded >= node_limit:
            stats.termination = "limit"
            stats.elapsed_seconds = time.perf_counter() - started
            return SearchResult(best_goal, stats, expansion)

        for succ_state, edge_cost in problem.successors(node.state):
            if edge_cost < 0:
                raise SearchError(
                    f"negative edge cost {edge_cost} from {node.state} to {succ_state}"
                )
            stats.nodes_generated += 1
            new_g = node.g + edge_cost
            existing = nodes.get(succ_state)
            if existing is None:
                h = problem.heuristic(succ_state) if use_heuristic else 0.0
                child = SearchNode(succ_state, g=new_g, h=h, parent=node, depth=node.depth + 1)
                nodes[succ_state] = child
                push(child)
            elif new_g < existing.g:
                # "If its new f is less than the old it must be placed
                # back on OPEN ... its pointers must be redirected."
                was_closed = status.get(succ_state) == "closed"
                existing.redirect(node, new_g)
                if was_closed:
                    stats.nodes_reopened += 1
                push(existing)

    stats.termination = "goal" if best_goal is not None else "exhausted"
    stats.elapsed_seconds = time.perf_counter() - started
    return SearchResult(best_goal, stats, expansion)


# ----------------------------------------------------------------------
# Blind searches (depth-first, breadth-first)
# ----------------------------------------------------------------------
def _blind_search(
    problem: SearchProblem[S],
    order: Order,
    *,
    node_limit: Optional[int],
    depth_limit: Optional[int],
    trace: bool,
) -> SearchResult[S]:
    stats = SearchStats()
    expansion = ExpansionTrace() if trace else None
    started = time.perf_counter()

    frontier: deque[SearchNode[S]] = deque()
    active: set[S] = set()
    for state, g0 in problem.start_states():
        node = SearchNode(state, g=g0)
        if state not in active:
            active.add(state)
            frontier.append(node)
    stats.observe_open_size(len(frontier))

    pop = frontier.pop if order is Order.DEPTH_FIRST else frontier.popleft

    while frontier:
        node = pop()
        if problem.is_goal(node.state):
            stats.termination = "goal"
            stats.elapsed_seconds = time.perf_counter() - started
            return SearchResult(node, stats, expansion)
        stats.nodes_expanded += 1
        if expansion is not None:
            parent_state = node.parent.state if node.parent else None
            expansion.record(node.state, parent_state)
        if node_limit is not None and stats.nodes_expanded >= node_limit:
            stats.termination = "limit"
            stats.elapsed_seconds = time.perf_counter() - started
            return SearchResult(None, stats, expansion)
        if depth_limit is not None and order is Order.DEPTH_FIRST and node.depth >= depth_limit:
            continue

        successors = list(problem.successors(node.state))
        if order is Order.DEPTH_FIRST:
            # Reverse so the first-listed successor is expanded first.
            successors.reverse()
        for succ_state, edge_cost in successors:
            stats.nodes_generated += 1
            if succ_state in active:
                continue
            active.add(succ_state)
            child = SearchNode(
                succ_state, g=node.g + edge_cost, parent=node, depth=node.depth + 1
            )
            frontier.append(child)
        stats.observe_open_size(len(frontier))

    stats.termination = "exhausted"
    stats.elapsed_seconds = time.perf_counter() - started
    return SearchResult(None, stats, expansion)
