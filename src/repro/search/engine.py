"""The generic OPEN/CLOSED search engine.

One loop implements the paper's whole algorithm family: "Search
algorithms are often classified by the order in which nodes are placed
on, and removed from, the OPEN list."  The :class:`Order` enum selects
that order; everything else — goal testing at expansion, the single
active copy per state, reopening CLOSED nodes when a shorter path is
found, the admissible termination condition — is shared.

The cost-ordered loop is the router's innermost hot path (everything
else in a routing run happens per net or per iteration; this happens
per node).  It is deliberately written lean: flat tuple heap entries
(no nested sort keys), integer OPEN/CLOSED codes, bound-method and
counter hoisting, and per-expansion allocations pulled out of the
loop.  The node accounting, expansion order, and results are
byte-identical to the straightforward form — the engine tests pin
golden expansion traces to keep it that way.
"""

from __future__ import annotations

import enum
import heapq
import time
from collections import deque
from dataclasses import dataclass
from typing import Generic, Hashable, Optional, TypeVar

from repro.errors import SearchError
from repro.search.node import SearchNode
from repro.search.problem import SearchProblem
from repro.search.stats import ExpansionTrace, SearchStats

S = TypeVar("S", bound=Hashable)

# OPEN/CLOSED codes for the status dict: comparing small ints is
# measurably cheaper than comparing strings in the stale-entry check
# that runs once per heap pop.
_OPEN = 1
_CLOSED = 2


class Order(enum.Enum):
    """OPEN-list disciplines, named as in the paper."""

    DEPTH_FIRST = "depth-first"
    BREADTH_FIRST = "breadth-first"
    BEST_FIRST = "best-first"
    A_STAR = "a-star"

    @property
    def is_cost_ordered(self) -> bool:
        """True for the disciplines that pop by path cost (g or f)."""
        return self in (Order.BEST_FIRST, Order.A_STAR)


@dataclass
class SearchResult(Generic[S]):
    """Outcome of one search.

    Attributes
    ----------
    goal:
        The goal node (with parent chain), or ``None`` if no goal was
        reached.
    stats:
        Node counters and timing.
    trace:
        Expansion order, when tracing was requested.
    """

    goal: Optional[SearchNode[S]]
    stats: SearchStats
    trace: Optional[ExpansionTrace] = None

    @property
    def found(self) -> bool:
        """Whether a goal was reached."""
        return self.goal is not None

    @property
    def cost(self) -> float:
        """Cost of the found path.

        Raises :class:`SearchError` when no goal was found.
        """
        if self.goal is None:
            raise SearchError("search found no goal; no cost available")
        return self.goal.g

    @property
    def path(self) -> list[S]:
        """States from start to goal.

        Raises :class:`SearchError` when no goal was found.
        """
        if self.goal is None:
            raise SearchError("search found no goal; no path available")
        return self.goal.path()


def search(
    problem: SearchProblem[S],
    order: Order = Order.A_STAR,
    *,
    node_limit: Optional[int] = None,
    depth_limit: Optional[int] = None,
    exhaustive: bool = False,
    trace: bool = False,
) -> SearchResult[S]:
    """Run the OPEN/CLOSED search over *problem*.

    Parameters
    ----------
    problem:
        Supplies start states, goal test, successors, and heuristic.
    order:
        OPEN-list discipline.  ``A_STAR`` uses f = g + h; ``BEST_FIRST``
        ignores the heuristic and orders by g alone (branch-and-bound);
        the blind orders ignore costs when choosing what to expand.
    node_limit:
        Abort (``stats.termination == "limit"``) after expanding this
        many nodes.  Guards against runaway searches on unroutable
        inputs when using incomplete orders.
    depth_limit:
        For ``DEPTH_FIRST``: "a depth limit is sometimes used to
        prevent the algorithm from going too far down the wrong path".
        Ignored by other orders.
    exhaustive:
        "If we were to ignore our terminating condition and stop only
        when no more nodes were left on OPEN ... This is called
        exhaustive search."  Tracks the best goal instead of stopping
        at the first.
    trace:
        Record the expansion order (for Figure 1 style rendering).

    Notes
    -----
    With cost-ordered disciplines the goal test happens when a node is
    *removed* from OPEN — the paper's admissible terminating condition —
    and CLOSED nodes are moved back to OPEN when a cheaper path to them
    appears.  With blind disciplines each state is visited at most once.
    """
    if order.is_cost_ordered:
        return _cost_ordered_search(
            problem, order, node_limit=node_limit, exhaustive=exhaustive, trace=trace
        )
    return _blind_search(
        problem,
        order,
        node_limit=node_limit,
        depth_limit=depth_limit,
        trace=trace,
    )


# ----------------------------------------------------------------------
# Cost-ordered searches (best-first, A*)
# ----------------------------------------------------------------------
def _cost_ordered_search(
    problem: SearchProblem[S],
    order: Order,
    *,
    node_limit: Optional[int],
    exhaustive: bool,
    trace: bool,
) -> SearchResult[S]:
    stats = SearchStats()
    expansion = ExpansionTrace() if trace else None
    record = expansion.record if expansion is not None else None
    started = time.perf_counter()

    use_heuristic = order is Order.A_STAR
    heuristic = problem.heuristic
    successors = problem.successors
    is_goal = problem.is_goal
    heappush = heapq.heappush
    heappop = heapq.heappop

    nodes: dict[S, SearchNode[S]] = {}
    status: dict[S, int] = {}
    # Flat heap entries: (f, -g, counter, pushed_g, node) for A*,
    # (g, 0.0, counter, pushed_g, node) for best-first.  The unique
    # counter breaks all remaining ties, so nodes never compare.  On
    # equal f the deeper (higher-g) node is preferred: it is closer to
    # the goal, which measurably trims expansions without touching
    # admissibility.
    heap: list[tuple[float, float, int, float, SearchNode[S]]] = []
    counter = 0
    open_size = 0
    max_open = 0
    expanded = 0
    generated = 0
    reopened = 0
    best_goal: Optional[SearchNode[S]] = None

    def finish(termination: str) -> None:
        stats.nodes_expanded = expanded
        stats.nodes_generated = generated
        stats.nodes_reopened = reopened
        stats.max_open_size = max_open
        stats.termination = termination
        stats.elapsed_seconds = time.perf_counter() - started

    for state, g0 in problem.start_states():
        if g0 < 0:
            raise SearchError(f"negative start cost {g0} for state {state}")
        existing = nodes.get(state)
        if existing is None or g0 < existing.g:
            h0 = heuristic(state) if use_heuristic else 0.0
            node = SearchNode(state, g0, h0)
            nodes[state] = node
            if use_heuristic:
                heappush(heap, (g0 + h0, -g0, counter, g0, node))
            else:
                heappush(heap, (g0, 0.0, counter, g0, node))
            counter += 1
            status[state] = _OPEN
            open_size += 1
            if open_size > max_open:
                max_open = open_size

    while heap:
        entry = heappop(heap)
        pushed_g = entry[3]
        node = entry[4]
        open_size -= 1
        state = node.state
        if status.get(state) != _OPEN or pushed_g != node.g:
            continue  # stale heap entry: the node was re-pushed cheaper
        status[state] = _CLOSED

        if is_goal(state):
            if not exhaustive:
                finish("goal")
                return SearchResult(node, stats, expansion)
            if best_goal is None or node.g < best_goal.g:
                best_goal = node

        expanded += 1
        if record is not None:
            parent = node.parent
            record(state, parent.state if parent is not None else None)
        if node_limit is not None and expanded >= node_limit:
            finish("limit")
            return SearchResult(best_goal, stats, expansion)

        node_g = node.g
        child_depth = node.depth + 1
        for succ_state, edge_cost in successors(state):
            if edge_cost < 0:
                raise SearchError(
                    f"negative edge cost {edge_cost} from {state} to {succ_state}"
                )
            generated += 1
            new_g = node_g + edge_cost
            existing = nodes.get(succ_state)
            if existing is None:
                h = heuristic(succ_state) if use_heuristic else 0.0
                child = SearchNode(succ_state, new_g, h, node, child_depth)
                nodes[succ_state] = child
                if use_heuristic:
                    heappush(heap, (new_g + h, -new_g, counter, new_g, child))
                else:
                    heappush(heap, (new_g, 0.0, counter, new_g, child))
                counter += 1
                status[succ_state] = _OPEN
                open_size += 1
                if open_size > max_open:
                    max_open = open_size
            elif new_g < existing.g:
                # "If its new f is less than the old it must be placed
                # back on OPEN ... its pointers must be redirected."
                if status.get(succ_state) == _CLOSED:
                    reopened += 1
                existing.parent = node
                existing.g = new_g
                existing.depth = child_depth
                if use_heuristic:
                    heappush(heap, (new_g + existing.h, -new_g, counter, new_g, existing))
                else:
                    heappush(heap, (new_g, 0.0, counter, new_g, existing))
                counter += 1
                status[succ_state] = _OPEN
                open_size += 1
                if open_size > max_open:
                    max_open = open_size

    finish("goal" if best_goal is not None else "exhausted")
    return SearchResult(best_goal, stats, expansion)


# ----------------------------------------------------------------------
# Blind searches (depth-first, breadth-first)
# ----------------------------------------------------------------------
def _blind_search(
    problem: SearchProblem[S],
    order: Order,
    *,
    node_limit: Optional[int],
    depth_limit: Optional[int],
    trace: bool,
) -> SearchResult[S]:
    stats = SearchStats()
    expansion = ExpansionTrace() if trace else None
    started = time.perf_counter()

    frontier: deque[SearchNode[S]] = deque()
    active: set[S] = set()
    for state, g0 in problem.start_states():
        node = SearchNode(state, g=g0)
        if state not in active:
            active.add(state)
            frontier.append(node)
    stats.observe_open_size(len(frontier))

    pop = frontier.pop if order is Order.DEPTH_FIRST else frontier.popleft

    while frontier:
        node = pop()
        if problem.is_goal(node.state):
            stats.termination = "goal"
            stats.elapsed_seconds = time.perf_counter() - started
            return SearchResult(node, stats, expansion)
        stats.nodes_expanded += 1
        if expansion is not None:
            parent_state = node.parent.state if node.parent else None
            expansion.record(node.state, parent_state)
        if node_limit is not None and stats.nodes_expanded >= node_limit:
            stats.termination = "limit"
            stats.elapsed_seconds = time.perf_counter() - started
            return SearchResult(None, stats, expansion)
        if depth_limit is not None and order is Order.DEPTH_FIRST and node.depth >= depth_limit:
            continue

        successors = list(problem.successors(node.state))
        if order is Order.DEPTH_FIRST:
            # Reverse so the first-listed successor is expanded first.
            successors.reverse()
        for succ_state, edge_cost in successors:
            stats.nodes_generated += 1
            if succ_state in active:
                continue
            active.add(succ_state)
            child = SearchNode(
                succ_state, g=node.g + edge_cost, parent=node, depth=node.depth + 1
            )
            frontier.append(child)
        stats.observe_open_size(len(frontier))

    stats.termination = "exhausted"
    stats.elapsed_seconds = time.perf_counter() - started
    return SearchResult(None, stats, expansion)
