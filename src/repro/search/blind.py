"""Named wrappers for the blind and exhaustive searches.

These exist for readability at call sites (and in the strategy
comparison experiment, E3): the engine is shared with A*.
"""

from __future__ import annotations

from typing import Hashable, Optional, TypeVar

from repro.search.engine import Order, SearchResult, search
from repro.search.problem import SearchProblem

S = TypeVar("S", bound=Hashable)


def depth_first_search(
    problem: SearchProblem[S],
    *,
    depth_limit: Optional[int] = None,
    node_limit: Optional[int] = None,
) -> SearchResult[S]:
    """LIFO search; optionally depth-limited, as the paper suggests.

    Finds *a* path, not a minimal one.
    """
    return search(
        problem, Order.DEPTH_FIRST, depth_limit=depth_limit, node_limit=node_limit
    )


def breadth_first_search(
    problem: SearchProblem[S], *, node_limit: Optional[int] = None
) -> SearchResult[S]:
    """FIFO search; minimal in hop count (and in cost on unit grids,
    which is exactly the Lee–Moore situation)."""
    return search(problem, Order.BREADTH_FIRST, node_limit=node_limit)


def exhaustive_search(
    problem: SearchProblem[S], *, node_limit: Optional[int] = None
) -> SearchResult[S]:
    """Expand until OPEN is empty, returning the best goal found.

    This ignores the terminating condition, as the paper describes;
    with non-negative edge weights it returns the same cost as A* at
    far greater expense, which experiment E3 quantifies.
    """
    return search(problem, Order.BEST_FIRST, exhaustive=True, node_limit=node_limit)
