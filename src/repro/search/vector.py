"""Batched frontier expansion for the cost-ordered search core.

The scalar engine (:mod:`repro.search.engine`) prices and pushes one
successor at a time; on congested workloads almost all of the wall
time is the per-successor Python work — a ``Segment`` allocation, a
cost-model call that loops over every congestion region, and a
heuristic call that loops over every target.  This module keeps the
scalar engine's OPEN/CLOSED loop *exactly* (same heap-entry shapes,
same tie-breaking counter, same stale-entry check, same goal-test-at-
pop) but asks the problem for a whole expansion at once: a
:class:`VectorSearchProblem` returns all successors of a state as
numpy columns, so edge costs and heuristics are evaluated with a few
array operations instead of thousands of interpreter dispatches.

Bit-exactness contract: ``numpy`` float64 elementwise arithmetic is
IEEE-identical to Python float scalar arithmetic, and every batched
cost/heuristic implementation accumulates per-successor contributions
in the same order as its scalar counterpart.  The differential parity
suite pins this: routes, costs, node counters, and expansion traces
from this engine are byte-identical to the scalar oracle.
"""

from __future__ import annotations

import heapq
import time
from abc import ABC, abstractmethod
from typing import Generic, Hashable, Optional, Sequence, TypeVar

import numpy as np

from repro.errors import SearchError
from repro.search.engine import _CLOSED, _OPEN, Order, SearchResult
from repro.search.node import SearchNode
from repro.search.stats import ExpansionTrace, SearchStats

S = TypeVar("S", bound=Hashable)


class VectorSearchProblem(ABC, Generic[S]):
    """A search problem whose successors arrive as numpy batches.

    The contract mirrors :class:`~repro.search.problem.SearchProblem`
    except that :meth:`expand` replaces ``successors``: one call
    returns every successor of a state, with edge costs (and, for A*,
    heuristic values) already evaluated as float64 arrays.  Successor
    *order* within the batch must match what the scalar problem would
    have yielded — the engine preserves it, and the tie-breaking
    counter makes it observable.
    """

    @abstractmethod
    def start_states(self) -> Sequence[tuple[S, float]]:
        """``(state, initial cost)`` pairs seeding the search."""

    @abstractmethod
    def is_goal(self, state: S) -> bool:
        """Whether *state* satisfies the search goal."""

    @abstractmethod
    def heuristic(self, state: S) -> float:
        """Admissible estimate for one state (used for start states)."""

    @abstractmethod
    def expand(
        self, state: S, with_h: bool
    ) -> tuple[list[S], np.ndarray, Optional[np.ndarray]]:
        """All successors of *state* as one batch.

        Returns ``(states, edge_costs, heuristics)`` where ``states``
        is a list of hashable successor states, ``edge_costs`` is a
        float64 array of the same length, and ``heuristics`` is a
        float64 array when *with_h* is true (``None`` otherwise).
        """

    # -- optional dense-key protocol ---------------------------------
    #
    # On congested workloads ~80% of generated successors fail the
    # ``new_g < existing.g`` improvement test and cost a pure-Python
    # dict probe each.  A problem whose states map into a small dense
    # integer range can opt in to a batched prefilter: the engine
    # keeps a flat float64 array of best-known g values and gathers /
    # compares a whole batch in two numpy ops, so the Python loop only
    # visits actual improvements.  The comparison is the identical
    # float64 ``<`` the loop performs (unknown states hold +inf), so
    # the visited set, push order, and all counters are unchanged.

    def dense_size(self) -> Optional[int]:
        """Flat key-space size, or ``None`` to use the generic path."""
        return None

    def dense_key(self, state: S) -> int:
        """Flat key of one state (used for start states)."""
        raise NotImplementedError

    def expand_dense(self, state: S) -> tuple[np.ndarray, np.ndarray]:
        """Keys and edge costs of the full expansion of *state*.

        Returns ``(keys, edge_costs)`` — an int64 array of flat state
        keys and the float64 edge costs, both in batch order — and
        retains the batch so :meth:`dense_winners` can materialize the
        surviving subset.  Only called when :meth:`dense_size` returns
        a size.
        """
        raise NotImplementedError

    def dense_winners(
        self, winners: np.ndarray, with_h: bool
    ) -> tuple[list[S], Optional[np.ndarray]]:
        """States (and heuristics) of a subset of the last batch.

        *winners* holds ascending batch indices from the last
        :meth:`expand_dense` call.  Heuristic values are pure per-state
        functions, so evaluating them on the subset must be
        bit-identical to evaluating the full batch and slicing.
        """
        raise NotImplementedError


def search_vectorized(
    problem: VectorSearchProblem[S],
    order: Order = Order.A_STAR,
    *,
    node_limit: Optional[int] = None,
    exhaustive: bool = False,
    trace: bool = False,
) -> SearchResult[S]:
    """Run the OPEN/CLOSED search with batched expansion.

    Mirrors :func:`repro.search.engine.search` for the cost-ordered
    disciplines; blind orders have no per-successor pricing to batch
    and are rejected.  Semantics — admissible goal test at pop,
    reopening of CLOSED nodes, node-limit termination, stats, traces —
    are identical to the scalar loop, node for node.
    """
    if not order.is_cost_ordered:
        raise SearchError(
            f"vectorized search supports cost-ordered orders only, got {order.value}"
        )

    stats = SearchStats()
    expansion = ExpansionTrace() if trace else None
    record = expansion.record if expansion is not None else None
    started = time.perf_counter()

    use_heuristic = order is Order.A_STAR
    heuristic = problem.heuristic
    expand = problem.expand
    is_goal = problem.is_goal
    heappush = heapq.heappush
    heappop = heapq.heappop

    nodes: dict[S, SearchNode[S]] = {}
    status: dict[S, int] = {}
    nodes_get = nodes.get
    status_get = status.get
    dense_size = problem.dense_size()
    g_flat: Optional[np.ndarray] = None
    if dense_size is not None:
        g_flat = np.full(dense_size, np.inf, dtype=np.float64)
        dense_key = problem.dense_key
        expand_dense = problem.expand_dense
        dense_winners = problem.dense_winners
    heap: list[tuple[float, float, int, float, SearchNode[S]]] = []
    counter = 0
    open_size = 0
    max_open = 0
    expanded = 0
    generated = 0
    reopened = 0
    best_goal: Optional[SearchNode[S]] = None

    def finish(termination: str) -> None:
        stats.nodes_expanded = expanded
        stats.nodes_generated = generated
        stats.nodes_reopened = reopened
        stats.max_open_size = max_open
        stats.termination = termination
        stats.elapsed_seconds = time.perf_counter() - started

    for state, g0 in problem.start_states():
        if g0 < 0:
            raise SearchError(f"negative start cost {g0} for state {state}")
        existing = nodes.get(state)
        if existing is None or g0 < existing.g:
            h0 = heuristic(state) if use_heuristic else 0.0
            node = SearchNode(state, g0, h0)
            nodes[state] = node
            if use_heuristic:
                heappush(heap, (g0 + h0, -g0, counter, g0, node))
            else:
                heappush(heap, (g0, 0.0, counter, g0, node))
            counter += 1
            status[state] = _OPEN
            open_size += 1
            if open_size > max_open:
                max_open = open_size
            if g_flat is not None:
                g_flat[dense_key(state)] = g0

    while heap:
        entry = heappop(heap)
        pushed_g = entry[3]
        node = entry[4]
        open_size -= 1
        state = node.state
        if status_get(state) != _OPEN or pushed_g != node.g:
            continue  # stale heap entry: the node was re-pushed cheaper
        status[state] = _CLOSED

        if is_goal(state):
            if not exhaustive:
                finish("goal")
                return SearchResult(node, stats, expansion)
            if best_goal is None or node.g < best_goal.g:
                best_goal = node

        expanded += 1
        if record is not None:
            parent = node.parent
            record(state, parent.state if parent is not None else None)
        if node_limit is not None and expanded >= node_limit:
            finish("limit")
            return SearchResult(best_goal, stats, expansion)

        node_g = node.g
        child_depth = node.depth + 1

        if g_flat is not None:
            # Dense prefilter: ``g_flat`` mirrors the best-known g of
            # every node (+inf when unknown), so the gathered float64
            # comparison below selects exactly the successors the
            # generic loop would create or improve — in the same
            # (ascending-index) order, with the same counter values.
            # Only the winners are ever materialized as states, and
            # heuristics are evaluated on that subset alone (they are
            # pure per-state functions, so the values are identical).
            keys, edge_costs = expand_dense(state)
            count = keys.shape[0]
            if not count:
                continue
            if edge_costs.min() < 0:
                bad = int(np.flatnonzero(edge_costs < 0)[0])
                raise SearchError(
                    f"negative edge cost {edge_costs[bad]} from {state} "
                    f"(successor {bad} of the batch)"
                )
            generated += count
            new_arr = node_g + edge_costs
            winners = np.flatnonzero(new_arr < g_flat[keys])
            if not winners.size:
                continue
            succ_states, succ_hs = dense_winners(winners, use_heuristic)
            new_gs = new_arr[winners].tolist()
            win_keys = keys[winners].tolist()
            if use_heuristic:
                for succ_state, new_g, key, h in zip(
                    succ_states, new_gs, win_keys, succ_hs.tolist()
                ):
                    existing = nodes_get(succ_state)
                    if existing is None:
                        g_flat[key] = new_g
                        child = SearchNode(succ_state, new_g, h, node, child_depth)
                        nodes[succ_state] = child
                        heappush(heap, (new_g + h, -new_g, counter, new_g, child))
                    elif new_g < existing.g:
                        g_flat[key] = new_g
                        if status_get(succ_state) == _CLOSED:
                            reopened += 1
                        existing.parent = node
                        existing.g = new_g
                        existing.depth = child_depth
                        heappush(
                            heap,
                            (new_g + existing.h, -new_g, counter, new_g, existing),
                        )
                    else:  # pragma: no cover - batch states are distinct
                        continue
                    counter += 1
                    status[succ_state] = _OPEN
                    open_size += 1
                    if open_size > max_open:
                        max_open = open_size
            else:
                for succ_state, new_g, key in zip(succ_states, new_gs, win_keys):
                    existing = nodes_get(succ_state)
                    if existing is None:
                        g_flat[key] = new_g
                        child = SearchNode(succ_state, new_g, 0.0, node, child_depth)
                        nodes[succ_state] = child
                        heappush(heap, (new_g, 0.0, counter, new_g, child))
                    elif new_g < existing.g:
                        g_flat[key] = new_g
                        if status_get(succ_state) == _CLOSED:
                            reopened += 1
                        existing.parent = node
                        existing.g = new_g
                        existing.depth = child_depth
                        heappush(heap, (new_g, 0.0, counter, new_g, existing))
                    else:  # pragma: no cover - batch states are distinct
                        continue
                    counter += 1
                    status[succ_state] = _OPEN
                    open_size += 1
                    if open_size > max_open:
                        max_open = open_size
            continue

        succ_states, edge_costs, succ_hs = expand(state, use_heuristic)
        count = len(succ_states)
        if not count:
            continue
        if edge_costs.min() < 0:
            bad = int(np.flatnonzero(edge_costs < 0)[0])
            raise SearchError(
                f"negative edge cost {edge_costs[bad]} from {state} to {succ_states[bad]}"
            )
        generated += count
        # node_g + float64 column == the scalar per-successor addition,
        # element for element; .tolist() yields native floats so heap
        # entries compare exactly as in the scalar engine.  The two
        # specialized loops below are the same per-successor body with
        # the order-dependent branches hoisted out; most successors
        # fall through both tests untouched, so the fall-through path
        # is kept as short as possible.
        new_gs = (node_g + edge_costs).tolist()
        if use_heuristic:
            for succ_state, new_g, h in zip(succ_states, new_gs, succ_hs.tolist()):
                existing = nodes_get(succ_state)
                if existing is None:
                    child = SearchNode(succ_state, new_g, h, node, child_depth)
                    nodes[succ_state] = child
                    heappush(heap, (new_g + h, -new_g, counter, new_g, child))
                    counter += 1
                    status[succ_state] = _OPEN
                    open_size += 1
                    if open_size > max_open:
                        max_open = open_size
                elif new_g < existing.g:
                    if status_get(succ_state) == _CLOSED:
                        reopened += 1
                    existing.parent = node
                    existing.g = new_g
                    existing.depth = child_depth
                    heappush(
                        heap, (new_g + existing.h, -new_g, counter, new_g, existing)
                    )
                    counter += 1
                    status[succ_state] = _OPEN
                    open_size += 1
                    if open_size > max_open:
                        max_open = open_size
        else:
            for succ_state, new_g in zip(succ_states, new_gs):
                existing = nodes_get(succ_state)
                if existing is None:
                    child = SearchNode(succ_state, new_g, 0.0, node, child_depth)
                    nodes[succ_state] = child
                    heappush(heap, (new_g, 0.0, counter, new_g, child))
                    counter += 1
                    status[succ_state] = _OPEN
                    open_size += 1
                    if open_size > max_open:
                        max_open = open_size
                elif new_g < existing.g:
                    if status_get(succ_state) == _CLOSED:
                        reopened += 1
                    existing.parent = node
                    existing.g = new_g
                    existing.depth = child_depth
                    heappush(heap, (new_g, 0.0, counter, new_g, existing))
                    counter += 1
                    status[succ_state] = _OPEN
                    open_size += 1
                    if open_size > max_open:
                        max_open = open_size

    finish("goal" if best_goal is not None else "exhausted")
    return SearchResult(best_goal, stats, expansion)
