"""Optional numba-jitted kernels for the vectorized engine.

``engine="native"`` runs the same batched OPEN/CLOSED loop as
``engine="vectorized"`` but replaces the two hottest batch evaluations
— the congestion surcharge and the target-distance heuristic — with
numba-compiled loops.  The kernels are straight transliterations of
the scalar accumulation order, so their float64 results are
bit-identical to both the scalar oracle and the numpy path.

numba is an *optional* dependency: when it is not importable,
:data:`NATIVE_AVAILABLE` is ``False`` and every caller falls back to
the pure-numpy batch path, so ``engine="native"`` degrades cleanly to
``engine="vectorized"`` behaviour (results are identical either way —
only the wall clock changes).  The first native call per process pays
the JIT compilation cost; ``cache=True`` amortises it across runs.
"""

from __future__ import annotations

try:  # pragma: no cover - exercised only where numba is installed
    from numba import njit

    NATIVE_AVAILABLE = True
except ImportError:  # pragma: no cover - the only path on bare installs
    NATIVE_AVAILABLE = False

    def njit(*args, **kwargs):
        """Decorator stand-in so the kernels below stay importable."""
        if args and callable(args[0]):
            return args[0]

        def wrap(func):
            return func

        return wrap


@njit(cache=True)
def congestion_surcharge_on_track(a, b, span_lo, span_hi, weights, costs):
    """Add per-region congestion surcharges to *costs* in place.

    One batch of same-axis segments: successor ``j`` spans
    ``[a[j], b[j]]`` along the travel axis; the region columns are
    already filtered to the segments' track.  Regions are iterated in
    declaration order per successor — the same accumulation order as
    the scalar cost model, which is what keeps the float64 sums
    bit-identical.
    """
    n_regions = weights.shape[0]
    n = a.shape[0]
    for j in range(n):
        acc = costs[j]
        for r in range(n_regions):
            lo = span_lo[r] if span_lo[r] > a[j] else a[j]
            hi = span_hi[r] if span_hi[r] < b[j] else b[j]
            if lo < hi:
                acc += weights[r] * (hi - lo)
        costs[j] = acc


@njit(cache=True)
def min_target_distance(xs, ys, px, py, hy, hx0, hx1, vx, vy0, vy1, out):
    """Minimum rectilinear distance from each ``(xs, ys)`` to any target.

    Pure int64 arithmetic (exact), mirroring
    :meth:`repro.core.route.TargetSet.distance_to`: point targets by
    manhattan distance, segment targets by clamping the varying
    coordinate to the span.  Writes into *out* (int64).
    """
    n = xs.shape[0]
    for j in range(n):
        x = xs[j]
        y = ys[j]
        best = -1
        for i in range(px.shape[0]):
            d = abs(px[i] - x) + abs(py[i] - y)
            if best < 0 or d < best:
                best = d
        for i in range(hy.shape[0]):
            dx = 0
            if x < hx0[i]:
                dx = hx0[i] - x
            elif x > hx1[i]:
                dx = x - hx1[i]
            d = dx + abs(hy[i] - y)
            if best < 0 or d < best:
                best = d
        for i in range(vx.shape[0]):
            dy = 0
            if y < vy0[i]:
                dy = vy0[i] - y
            elif y > vy1[i]:
                dy = y - vy1[i]
            d = abs(vx[i] - x) + dy
            if best < 0 or d < best:
                best = d
        out[j] = best
