"""Named, seeded scenario families for the conformance corpus.

The paper validated on proprietary Caltech layouts that no longer
exist, so this reproduction's evidence rests on synthetic scenes.  One
generic :class:`~repro.layout.generators.LayoutSpec` family cannot
cover the congestion regimes routers actually disagree on, so each
family here targets a distinct regime:

``channel-corridors``
    Rows of wide, flat macros forming parallel routing channels — the
    classic channeled-chip regime where most wirelength lives in a few
    shared corridors.
``macro-maze``
    Serpentine walls with alternating openings; routes must snake the
    full surface, maximizing detour length and corner hugging.
``pad-ring``
    Almost every terminal is a boundary pad; routing pressure
    concentrates along the surface edge rather than between macros.
``steiner-stress``
    Multi-terminal (3-6) nets with equivalent-pin terminals, exercising
    the Steiner tree machinery far beyond two-point connections.
``congestion-hotspot``
    A tight grid of macros with deliberately narrow passages, so
    passage capacity overflows and the congestion strategies must
    actually negotiate.
``long-critical-nets``
    A congested macro grid plus hand-placed cross-chip two-pin pairs
    (``crit*``): the long nets dominate the delay profile, so the
    timing-driven strategy must protect them while plain negotiation
    happily detours them — the timing-delay conformance gate lives on
    this family.
``zero-nets``
    Degenerate: a placed layout with an empty netlist.
``single-cell``
    Degenerate: one macro, one net hugging its boundary.
``min-separation``
    Degenerate: two macros exactly one unit apart — the paper's
    "finite and non-zero distance" lower bound — with a net forced
    through the unit slot.
``skewed-surface``
    Degenerate: a pathologically tall, narrow surface where every net
    spans the long axis.

Every builder draws all randomness from one seeded
:class:`random.Random`, so a :class:`Scenario` regenerates
byte-identically from its ``(family, seed, params)`` triple — that
triple plus the generated layout is what the corpus files on disk
carry (see :mod:`repro.scenarios.corpus`).
"""

from __future__ import annotations

import json
import random
from dataclasses import dataclass, field
from typing import Any, Callable, Mapping

from repro.errors import LayoutError
from repro.geometry.point import Point
from repro.geometry.rect import Rect
from repro.layout.cell import Cell
from repro.layout.generators import LayoutSpec, grid_layout, random_layout, random_netlist
from repro.layout.io import layout_from_dict, layout_to_dict
from repro.layout.layout import Layout
from repro.layout.net import Net
from repro.layout.pin import Pin
from repro.layout.terminal import Terminal

FORMAT_VERSION = 1

#: A family builder: (rng, **params) -> Layout.
FamilyBuilder = Callable[..., Layout]


@dataclass(frozen=True)
class ScenarioFamily:
    """One named generator with its documentation and defaults."""

    name: str
    description: str
    builder: FamilyBuilder
    default_params: Mapping[str, Any] = field(default_factory=dict)

    def build(self, seed: int = 0, **overrides: Any) -> Layout:
        """Generate this family's layout for *seed* (+ param overrides)."""
        params = {**self.default_params, **overrides}
        return self.builder(random.Random(seed), **params)


#: Registry of every scenario family, keyed by name.
FAMILIES: dict[str, ScenarioFamily] = {}


def _family(name: str, description: str, **default_params: Any):
    """Register the decorated builder as a scenario family."""

    def _install(builder: FamilyBuilder) -> FamilyBuilder:
        FAMILIES[name] = ScenarioFamily(name, description, builder, default_params)
        return builder

    return _install


@dataclass(frozen=True)
class Scenario:
    """One corpus entry: a generated layout plus its provenance.

    ``(family, seed, params)`` is the regeneration recipe; ``layout``
    is the generated design it must reproduce byte-for-byte (the
    corpus tests pin that, so a generator refactor that silently
    changes the scenes is caught).
    """

    name: str
    family: str
    seed: int
    params: Mapping[str, Any]
    description: str
    layout: Layout

    def __post_init__(self) -> None:
        object.__setattr__(self, "params", dict(self.params))

    def regenerate(self) -> Layout:
        """Rebuild the layout from the recipe (ignoring the stored one).

        Raises :class:`LayoutError` when the family is not registered —
        loading a scenario file with an unknown family succeeds (the
        stored layout is still usable), but its recipe cannot run.
        """
        return _family_or_raise(self.family).build(self.seed, **self.params)

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def to_dict(self) -> dict[str, Any]:
        """Convert to a JSON-ready dict (layout embedded)."""
        return {
            "version": FORMAT_VERSION,
            "name": self.name,
            "family": self.family,
            "seed": self.seed,
            "params": dict(self.params),
            "description": self.description,
            "layout": layout_to_dict(self.layout),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "Scenario":
        """Rebuild a scenario from :meth:`to_dict` output."""
        try:
            version = data["version"]
            if version != FORMAT_VERSION:
                raise LayoutError(f"unsupported scenario format version {version!r}")
            return cls(
                name=data["name"],
                family=data["family"],
                seed=int(data["seed"]),
                params=dict(data.get("params", {})),
                description=data.get("description", ""),
                layout=layout_from_dict(data["layout"]),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise LayoutError(f"malformed scenario data: {exc}") from exc

    def to_json(self, *, indent: int | None = 2) -> str:
        """Serialize to a JSON string."""
        return json.dumps(self.to_dict(), indent=indent)

    @classmethod
    def from_json(cls, text: str) -> "Scenario":
        """Parse a scenario from a JSON string."""
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise LayoutError(f"invalid scenario JSON: {exc}") from exc
        return cls.from_dict(data)


def _family_or_raise(family: str) -> ScenarioFamily:
    """Look up *family*, raising :class:`LayoutError` when unregistered."""
    try:
        return FAMILIES[family]
    except KeyError:
        raise LayoutError(
            f"unknown scenario family {family!r}; known: {sorted(FAMILIES)}"
        ) from None


def build_scenario(
    family: str,
    *,
    seed: int = 0,
    params: Mapping[str, Any] | None = None,
    name: str | None = None,
) -> Scenario:
    """Generate a :class:`Scenario` from a registered family."""
    fam = _family_or_raise(family)
    params = dict(params or {})
    layout = fam.build(seed, **params)
    return Scenario(
        name=name or f"{family}-s{seed}",
        family=family,
        seed=seed,
        params=params,
        description=fam.description,
        layout=layout,
    )


# ----------------------------------------------------------------------
# Families
# ----------------------------------------------------------------------
@_family(
    "channel-corridors",
    "Rows of wide flat macros forming parallel routing channels",
    rows=3,
    cols=2,
    cell_width=30,
    cell_height=8,
    gap=5,
    margin=6,
    n_nets=6,
)
def _channel_corridors(
    rng: random.Random,
    *,
    rows: int,
    cols: int,
    cell_width: int,
    cell_height: int,
    gap: int,
    margin: int,
    n_nets: int,
) -> Layout:
    layout = grid_layout(
        rows, cols, cell_width=cell_width, cell_height=cell_height, gap=gap, margin=margin
    )
    spec = LayoutSpec(terminals_per_net=(2, 2), pad_fraction=0.15)
    for net in random_netlist(layout, n_nets, rng=rng, spec=spec):
        layout.add_net(net)
    return layout


@_family(
    "macro-maze",
    "Serpentine walls with alternating openings force full-surface detours",
    width=110,
    height=90,
    bars=3,
    bar_thickness=10,
    opening=14,
    n_nets=3,
)
def _macro_maze(
    rng: random.Random,
    *,
    width: int,
    height: int,
    bars: int,
    bar_thickness: int,
    opening: int,
    n_nets: int,
) -> Layout:
    layout = Layout(Rect(0, 0, width, height))
    corridor = (height - 2 * bar_thickness - bars * bar_thickness) // (bars + 1)
    corridor = max(corridor, 4)
    for index in range(bars):
        y0 = bar_thickness + corridor + index * (bar_thickness + corridor)
        if index % 2 == 0:
            x0, x1 = 1, width - opening
        else:
            x0, x1 = opening, width - 1
        layout.add_cell(Cell.rect(f"bar{index}", x0, y0, x1 - x0, bar_thickness))
    for net_index in range(n_nets):
        bottom = Point(rng.randint(2, width - 2), 0)
        top = Point(rng.randint(2, width - 2), height)
        layout.add_net(
            Net(
                f"m{net_index}",
                [
                    Terminal(f"m{net_index}.s", [Pin(f"m{net_index}.s.p0", bottom, None)]),
                    Terminal(f"m{net_index}.d", [Pin(f"m{net_index}.d.p0", top, None)]),
                ],
            )
        )
    return layout


@_family(
    "pad-ring",
    "Boundary-pad-dominated netlist concentrates pressure along the surface edge",
    n_cells=5,
    n_nets=7,
)
def _pad_ring(rng: random.Random, *, n_cells: int, n_nets: int) -> Layout:
    spec = LayoutSpec(
        n_cells=n_cells,
        n_nets=n_nets,
        pad_fraction=0.85,
        terminals_per_net=(2, 3),
    )
    layout = random_layout(spec, seed=rng.randrange(2**31))
    return layout


@_family(
    "steiner-stress",
    "Multi-terminal nets with equivalent pins stress the Steiner machinery",
    n_cells=8,
    n_nets=4,
)
def _steiner_stress(rng: random.Random, *, n_cells: int, n_nets: int) -> Layout:
    spec = LayoutSpec(
        n_cells=n_cells,
        n_nets=n_nets,
        terminals_per_net=(3, 6),
        pins_per_terminal=(1, 3),
        pad_fraction=0.1,
    )
    return random_layout(spec, seed=rng.randrange(2**31))


@_family(
    "congestion-hotspot",
    "Tight macro grid with narrow passages provokes real passage overflow",
    rows=2,
    cols=2,
    cell_side=14,
    gap=3,
    margin=5,
    n_nets=8,
)
def _congestion_hotspot(
    rng: random.Random,
    *,
    rows: int,
    cols: int,
    cell_side: int,
    gap: int,
    margin: int,
    n_nets: int,
) -> Layout:
    layout = grid_layout(
        rows, cols, cell_width=cell_side, cell_height=cell_side, gap=gap, margin=margin
    )
    spec = LayoutSpec(terminals_per_net=(2, 2), pad_fraction=0.0)
    for net in random_netlist(layout, n_nets, rng=rng, spec=spec):
        layout.add_net(net)
    return layout


@_family(
    "long-critical-nets",
    "Cross-chip critical pairs over a congested macro grid split the timing-aware strategies from the timing-blind ones",
    rows=2,
    cols=3,
    cell_side=14,
    gap=3,
    margin=5,
    n_critical=3,
    n_filler=10,
)
def _long_critical_nets(
    rng: random.Random,
    *,
    rows: int,
    cols: int,
    cell_side: int,
    gap: int,
    margin: int,
    n_critical: int,
    n_filler: int,
) -> Layout:
    layout = grid_layout(
        rows, cols, cell_width=cell_side, cell_height=cell_side, gap=gap, margin=margin
    )
    width = layout.outline.width
    height = layout.outline.height
    # The critical pairs span the full chip width at rng-chosen heights;
    # their source→sink path length towers over every filler net, so
    # they own the worst-delay slot whatever the router does with them.
    for index in range(n_critical):
        left = Point(0, rng.randint(2, height - 2))
        right = Point(width, rng.randint(2, height - 2))
        layout.add_net(
            Net(
                f"crit{index}",
                [
                    Terminal(f"crit{index}.s", [Pin(f"crit{index}.s.p0", left, None)]),
                    Terminal(f"crit{index}.d", [Pin(f"crit{index}.d.p0", right, None)]),
                ],
            )
        )
    spec = LayoutSpec(terminals_per_net=(2, 2), pad_fraction=0.0)
    for net in random_netlist(layout, n_filler, rng=rng, spec=spec):
        layout.add_net(net)
    return layout


@_family(
    "zero-nets",
    "Degenerate: placed macros with an empty netlist",
    n_cells=4,
)
def _zero_nets(rng: random.Random, *, n_cells: int) -> Layout:
    spec = LayoutSpec(n_cells=n_cells, n_nets=0)
    return random_layout(spec, seed=rng.randrange(2**31))


@_family(
    "single-cell",
    "Degenerate: one macro, one net hugging its boundary",
    surface=48,
)
def _single_cell(rng: random.Random, *, surface: int) -> Layout:
    layout = Layout(Rect(0, 0, surface, surface))
    lo, hi = surface // 4, 3 * surface // 4
    cell = Cell.rect("c0", lo, lo, hi - lo, hi - lo)
    layout.add_cell(cell)
    left = Point(lo, rng.randint(lo, hi))
    right = Point(hi, rng.randint(lo, hi))
    layout.add_net(
        Net(
            "n0",
            [
                Terminal("n0.a", [Pin("n0.a.p0", left, "c0")]),
                Terminal("n0.b", [Pin("n0.b.p0", right, "c0")]),
            ],
        )
    )
    return layout


@_family(
    "min-separation",
    "Degenerate: two macros exactly one unit apart with a net through the slot",
    cell_side=20,
)
def _min_separation(rng: random.Random, *, cell_side: int) -> Layout:
    margin = 6
    slot_x = margin + cell_side  # left cell's right edge; slot is [slot_x, slot_x + 1]
    width = 2 * margin + 2 * cell_side + 1
    height = 2 * margin + cell_side
    layout = Layout(Rect(0, 0, width, height))
    layout.add_cell(Cell.rect("left", margin, margin, cell_side, cell_side))
    layout.add_cell(Cell.rect("right", slot_x + 1, margin, cell_side, cell_side))
    y_a = rng.randint(margin, margin + cell_side)
    y_b = rng.randint(margin, margin + cell_side)
    layout.add_net(
        Net(
            "slot",
            [
                Terminal("slot.a", [Pin("slot.a.p0", Point(slot_x, y_a), "left")]),
                Terminal("slot.b", [Pin("slot.b.p0", Point(slot_x + 1, y_b), "right")]),
            ],
        )
    )
    layout.add_net(
        Net(
            "around",
            [
                Terminal("around.a", [Pin("around.a.p0", Point(margin, y_a), "left")]),
                Terminal(
                    "around.b",
                    [Pin("around.b.p0", Point(slot_x + 1 + cell_side, y_b), "right")],
                ),
            ],
        )
    )
    return layout


@_family(
    "skewed-surface",
    "Degenerate: pathologically tall, narrow surface with long-axis nets",
    width=16,
    height=220,
    n_cells=4,
    cell_width=8,
    cell_height=12,
    n_nets=3,
)
def _skewed_surface(
    rng: random.Random,
    *,
    width: int,
    height: int,
    n_cells: int,
    cell_width: int,
    cell_height: int,
    n_nets: int,
) -> Layout:
    layout = Layout(Rect(0, 0, width, height))
    pitch = height // (n_cells + 1)
    for index in range(n_cells):
        # Alternate which side wall the macro hugs so the free channel
        # zigzags up the strip.
        x = 1 if index % 2 == 0 else width - cell_width - 1
        y = pitch * (index + 1) - cell_height // 2
        layout.add_cell(Cell.rect(f"s{index}", x, y, cell_width, cell_height))
    for net_index in range(n_nets):
        bottom = Point(rng.randint(1, width - 1), 0)
        top = Point(rng.randint(1, width - 1), height)
        layout.add_net(
            Net(
                f"v{net_index}",
                [
                    Terminal(f"v{net_index}.s", [Pin(f"v{net_index}.s.p0", bottom, None)]),
                    Terminal(f"v{net_index}.d", [Pin(f"v{net_index}.d.p0", top, None)]),
                ],
            )
        )
    return layout
