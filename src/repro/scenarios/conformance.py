"""Differential conformance: every scenario × strategy × toggle combo.

The runner routes each corpus scenario through every registered
strategy under the full PR-3 config-toggle matrix (``ray_cache``
on/off, serial vs parallel net fan-out, ``prune_clean_nets`` on/off,
plus the PR-9 search ``engine`` axis) and checks three kinds of
promises:

1. **Oracle validity** — every routed result must come back clean from
   the independent checker (:func:`repro.analysis.verify.verify_global_route`)
   with no failed nets.
2. **Byte identity where guaranteed** — ``ray_cache``, ``workers``,
   and ``engine`` are documented as result-preserving, so every config
   that differs only in those knobs must produce the identical route
   fingerprint.
   ``prune_clean_nets`` changes which nets the negotiation loop rips
   up, so for the ``negotiated`` strategy identity is asserted per
   pruning flag; for the others the flag is inert and all configs must
   agree.
3. **Cross-strategy tolerance** — the congestion strategies may trade
   wirelength for overflow, but only within recorded bands: final
   wirelength must stay within :data:`WIRELENGTH_BAND` of the
   single-pass baseline, and a congestion strategy must never end with
   more overflow than it started with.
4. **Timing separation** — on scenarios with designated critical nets
   (the ``long-critical-nets`` family names them ``crit*``), the
   ``timing-driven`` strategy must finish with a *strictly* lower
   worst critical-net delay than plain ``negotiated`` routing of the
   same scene: the criticality machinery has to buy something real, on
   every corpus entry of the family, forever.

With ``incremental=True`` a fourth axis replays scripted layout deltas
(:mod:`repro.incremental.scripts`) through
:meth:`~repro.api.pipeline.RoutingPipeline.reroute` at every matrix
point, for the strategies that implement warm starts, and checks the
incremental contract differentially against from-scratch routes of the
mutated layouts: ``incremental-identity`` (empty deltas reproduce the
base fingerprint; congestion-neutral deltas reproduce the scratch
fingerprint for order-independent strategies), ``incremental-validity``
(every reroute verifies clean), and ``incremental-band`` (reroute
wirelength within :data:`WIRELENGTH_BAND` of scratch, overflow never
worse than the warm start's opening measurement).

The report (:class:`ConformanceReport`) records every case and check
and serializes to JSON — CI uploads it as the ``conformance-smoke``
artifact, and ``python -m repro conformance`` renders it for humans.
"""

from __future__ import annotations

import hashlib
import json
import time
from dataclasses import dataclass, field
from typing import Any, Iterable, Mapping, Optional, Sequence

from repro.errors import ReproError
from repro.api.pipeline import RoutingPipeline
from repro.api.request import RouteRequest
from repro.api.rerouting import RerouteRequest
from repro.api.result import RouteResult
from repro.core.route import GlobalRoute
from repro.core.router import RouterConfig
from repro.incremental.delta import LayoutDelta
from repro.core.timing import analyze_route_timing
from repro.incremental.scripts import disjoint_delta, empty_delta, geometry_delta
from repro.scenarios.families import Scenario

#: Strategies the conformance matrix covers by default, with bounded
#: parameters so the corpus stays fast enough for tier-1.
DEFAULT_STRATEGIES: dict[str, dict[str, Any]] = {
    "single": {},
    "two-pass": {"passes": 2},
    "negotiated": {"max_iterations": 8},
    "timing-driven": {"max_iterations": 8},
}

#: Strategies exercised by the incremental axis: the ones whose
#: pipeline strategies implement ``run_incremental`` (two-pass is
#: deliberately from-scratch-only; see ``repro.api.strategies``).
INCREMENTAL_STRATEGIES: tuple[str, ...] = ("single", "negotiated")

#: Final wirelength of any strategy, relative to the single-pass
#: baseline on the same scenario.  Congestion strategies buy overflow
#: relief with detours, so the band is asymmetric: they may not beat
#: the unpenalized shortest-path pass by much (floor guards against a
#: strategy silently dropping work), but may pay a bounded premium.
WIRELENGTH_BAND: tuple[float, float] = (0.90, 1.60)


@dataclass(frozen=True)
class MatrixPoint:
    """One config-toggle combination of the conformance matrix."""

    name: str
    ray_cache: bool = True
    workers: int = 1
    prune_clean_nets: bool = True
    engine: str = "scalar"

    def to_config(self) -> RouterConfig:
        """The :class:`RouterConfig` this point routes under.

        Parallel points use the thread executor: the serial-vs-parallel
        identity promise is executor-independent, and threads avoid
        paying process-pool spawn costs once per matrix cell.
        """
        return RouterConfig(
            ray_cache=self.ray_cache,
            workers=self.workers,
            executor="thread",
            prune_clean_nets=self.prune_clean_nets,
            engine=self.engine,
        )


#: All eight toggle combinations, plus one flip per non-scalar search
#: engine.  Engine points deliberately share identity groups with the
#: scalar points (``_identity_key`` ignores the engine): the batched
#: engines promise byte-identical routes, and this matrix is where that
#: promise is differentially pinned across the whole corpus.  ``native``
#: silently degrades to the vectorized numpy path when numba is absent,
#: so the point is safe to run everywhere.
FULL_MATRIX: tuple[MatrixPoint, ...] = tuple(
    MatrixPoint(
        name=(
            f"cache={'on' if cache else 'off'}"
            f"|workers={workers}"
            f"|prune={'on' if prune else 'off'}"
        ),
        ray_cache=cache,
        workers=workers,
        prune_clean_nets=prune,
    )
    for cache in (True, False)
    for workers in (1, 2)
    for prune in (True, False)
) + tuple(
    MatrixPoint(name=f"engine={engine}", engine=engine)
    for engine in ("vectorized", "native")
)

#: Baseline plus one flip per toggle — every identity promise is still
#: exercised against the baseline, at half the matrix cost.
QUICK_MATRIX: tuple[MatrixPoint, ...] = (
    MatrixPoint(name="baseline"),
    MatrixPoint(name="cache=off", ray_cache=False),
    MatrixPoint(name="workers=2", workers=2),
    MatrixPoint(name="prune=off", prune_clean_nets=False),
    MatrixPoint(name="engine=vectorized", engine="vectorized"),
)


def route_fingerprint(route: GlobalRoute) -> str:
    """A deterministic digest of a route's exact geometry.

    Two routes fingerprint equal iff they hold the same trees with the
    same per-path point sequences and the same failed-net list.
    """
    doc = {
        "trees": {
            name: [[(p.x, p.y) for p in path.points] for path in tree.paths]
            for name, tree in sorted(route.trees.items())
        },
        "failed": sorted(route.failed_nets),
    }
    blob = json.dumps(doc, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()[:16]


@dataclass
class CaseRecord:
    """One routed (scenario, strategy, matrix-point) cell."""

    scenario: str
    strategy: str
    config: str
    fingerprint: str
    wirelength: int
    routed_nets: int
    failed_nets: int
    violations: int
    overflow_before: Optional[int]
    overflow_after: Optional[int]
    elapsed_seconds: float
    #: max routed-tree delay over the scenario's designated ``crit*``
    #: nets; None when the scenario has none (or the cell is a reroute
    #: of a mutated layout, where the stored scene no longer applies).
    worst_critical_delay: Optional[float] = None

    def as_dict(self) -> dict[str, Any]:
        """JSON-ready representation."""
        return dict(self.__dict__)


@dataclass
class CheckRecord:
    """One conformance assertion's outcome (identity or tolerance)."""

    kind: str  # "validity" | "identity" | "warning-contract" | "wirelength-band" | "overflow" | "timing-delay"
    scenario: str
    strategy: str
    ok: bool
    detail: str

    def as_dict(self) -> dict[str, Any]:
        """JSON-ready representation."""
        return dict(self.__dict__)


@dataclass
class ConformanceReport:
    """Everything one conformance run measured and asserted."""

    cases: list[CaseRecord] = field(default_factory=list)
    checks: list[CheckRecord] = field(default_factory=list)
    elapsed_seconds: float = 0.0

    @property
    def ok(self) -> bool:
        """True when every check passed."""
        return all(check.ok for check in self.checks)

    def failures(self) -> list[CheckRecord]:
        """The checks that failed."""
        return [check for check in self.checks if not check.ok]

    def summary(self) -> str:
        """One human line: totals plus the first failure, if any."""
        failed = self.failures()
        head = (
            f"{len(self.cases)} routed cases, {len(self.checks)} checks, "
            f"{len(failed)} failed, {self.elapsed_seconds:.1f}s"
        )
        if failed:
            first = failed[0]
            head += f"; first failure [{first.kind}] {first.scenario}/{first.strategy}: {first.detail}"
        return head

    def to_dict(self) -> dict[str, Any]:
        """JSON-ready representation."""
        return {
            "ok": self.ok,
            "elapsed_seconds": self.elapsed_seconds,
            "wirelength_band": list(WIRELENGTH_BAND),
            "cases": [case.as_dict() for case in self.cases],
            "checks": [check.as_dict() for check in self.checks],
        }

    def to_json(self, *, indent: int | None = 2) -> str:
        """Serialize to a JSON string."""
        return json.dumps(self.to_dict(), indent=indent)


def _identity_key(strategy: str, point: MatrixPoint) -> tuple:
    """Configs mapping to the same key must route byte-identically.

    Only the negotiation-style loops read ``prune_clean_nets``, so it
    splits identity groups for ``negotiated`` and ``timing-driven``
    alone; ``ray_cache``, ``workers``, and ``engine`` are documented
    result-preserving everywhere — the engine deliberately does *not*
    split groups, which is exactly what makes this matrix the
    cross-engine parity gate.
    """
    if strategy in ("negotiated", "timing-driven"):
        return (strategy, point.prune_clean_nets)
    return (strategy,)


def run_conformance(
    scenarios: Iterable[Scenario],
    *,
    strategies: Mapping[str, Mapping[str, Any]] | Sequence[str] | None = None,
    matrix: Sequence[MatrixPoint] = FULL_MATRIX,
    incremental: bool = False,
) -> ConformanceReport:
    """Route every scenario through every strategy × matrix point.

    ``strategies`` maps strategy name to its params; a bare sequence of
    names uses :data:`DEFAULT_STRATEGIES` params.  Results land in a
    :class:`ConformanceReport`; nothing raises on a failed check (the
    report carries the verdicts), though a crash inside the pipeline
    itself is recorded as a failed ``validity`` check rather than
    propagated, so one broken combination cannot hide the rest of the
    matrix.

    With ``incremental=True``, every cell of a strategy in
    :data:`INCREMENTAL_STRATEGIES` additionally replays the scripted
    deltas through :meth:`RoutingPipeline.reroute` against that cell's
    own result and appends the ``incremental-*`` checks.
    """
    if strategies is None:
        strategy_params = dict(DEFAULT_STRATEGIES)
    elif isinstance(strategies, Mapping):
        strategy_params = {name: dict(params) for name, params in strategies.items()}
    else:
        unknown = [name for name in strategies if name not in DEFAULT_STRATEGIES]
        if unknown:
            raise ReproError(
                f"no default params for strategies {unknown}; pass a mapping instead"
            )
        strategy_params = {name: dict(DEFAULT_STRATEGIES[name]) for name in strategies}

    report = ConformanceReport()
    started = time.perf_counter()
    pipeline = RoutingPipeline()
    for scenario in scenarios:
        baselines: dict[str, CaseRecord] = {}  # strategy -> first-point record
        for strategy, params in strategy_params.items():
            groups: dict[tuple, dict[str, str]] = {}  # identity key -> config -> digest
            for point in matrix:
                routed = _route_case(pipeline, scenario, strategy, params, point)
                if isinstance(routed, CheckRecord):
                    report.checks.append(routed)
                    continue
                case, result = routed
                report.cases.append(case)
                report.checks.append(_validity_check(case))
                report.checks.append(_warning_contract_check(case, result))
                groups.setdefault(_identity_key(strategy, point), {})[point.name] = (
                    case.fingerprint
                )
                baselines.setdefault(strategy, case)
                if incremental and strategy in INCREMENTAL_STRATEGIES:
                    _incremental_checks(
                        pipeline, report, scenario, strategy, params, point,
                        base_case=case, base_result=result,
                    )
            for key, digests in groups.items():
                report.checks.append(_identity_check(scenario.name, strategy, key, digests))
        _cross_strategy_checks(report, scenario.name, baselines)
    report.elapsed_seconds = time.perf_counter() - started
    return report


def _route_case(
    pipeline: RoutingPipeline,
    scenario: Scenario,
    strategy: str,
    params: Mapping[str, Any],
    point: MatrixPoint,
) -> tuple[CaseRecord, RouteResult] | CheckRecord:
    """Route one matrix cell; a pipeline crash becomes a failed check.

    Request construction sits inside the try: the typed params schemas
    reject bad ``strategy_params`` at :class:`RouteRequest` creation
    now, and that rejection must land in the report like any other
    broken cell.
    """
    started = time.perf_counter()
    try:
        request = _cell_request(scenario, strategy, params, point)
        result = pipeline.run(request)
    except Exception as exc:  # noqa: BLE001 - any crash must stay in its cell
        # A crash becomes a failing validity check so the rest of the
        # matrix still runs and the report names the broken cell.  This
        # deliberately catches beyond ReproError: a router bug raising
        # IndexError under one toggle is exactly the regression class
        # this differential harness exists to surface.
        return CheckRecord(
            kind="validity",
            scenario=scenario.name,
            strategy=strategy,
            ok=False,
            detail=f"config {point.name}: pipeline raised {type(exc).__name__}: {exc}",
        )
    elapsed = time.perf_counter() - started
    case = _case_record(scenario.name, strategy, point.name, result, elapsed)
    case.worst_critical_delay = _worst_critical_delay(result, scenario)
    return case, result


def _worst_critical_delay(result: RouteResult, scenario: Scenario) -> Optional[float]:
    """Max routed-tree delay over the scenario's ``crit*`` nets, if any.

    Computed with the same tree-walk delay model every strategy is
    judged by (:func:`repro.core.timing.analyze_route_timing`), so the
    timing-blind strategies are measured on exactly the metric the
    timing-driven one optimizes.
    """
    names = [net.name for net in scenario.layout.nets if net.name.startswith("crit")]
    if not names:
        return None
    analysis = analyze_route_timing(result.route, scenario.layout)
    delays = [analysis.nets[name].delay for name in names if name in analysis.nets]
    return max(delays) if delays else None


def _cell_request(
    scenario: Scenario,
    strategy: str,
    params: Mapping[str, Any],
    point: MatrixPoint,
) -> RouteRequest:
    """The canonical request one matrix cell routes."""
    return RouteRequest(
        layout=scenario.layout,
        config=point.to_config(),
        strategy=strategy,
        strategy_params=dict(params),
        on_unroutable="skip",
        verify=True,
    )


def _case_record(
    scenario: str, strategy: str, config: str, result: RouteResult, elapsed: float
) -> CaseRecord:
    """Fold one :class:`RouteResult` into the report's case shape."""
    return CaseRecord(
        scenario=scenario,
        strategy=strategy,
        config=config,
        fingerprint=route_fingerprint(result.route),
        wirelength=result.total_length,
        routed_nets=result.route.routed_count,
        failed_nets=len(result.route.failed_nets),
        violations=sum(len(v) for v in result.violations.values()),
        overflow_before=(
            None
            if result.congestion_before is None
            else result.congestion_before.total_overflow
        ),
        overflow_after=(
            None
            if result.congestion_after is None
            else result.congestion_after.total_overflow
        ),
        elapsed_seconds=elapsed,
    )


def _validity_check(case: CaseRecord) -> CheckRecord:
    """Oracle validity: clean verification, nothing unrouted."""
    problems = []
    if case.violations:
        problems.append(f"{case.violations} verification violations")
    if case.failed_nets:
        problems.append(f"{case.failed_nets} unrouted nets")
    return CheckRecord(
        kind="validity",
        scenario=case.scenario,
        strategy=case.strategy,
        ok=not problems,
        detail=(
            f"config {case.config}: " + ("; ".join(problems) if problems else "clean")
        ),
    )


def _warning_contract_check(case: CaseRecord, result: RouteResult) -> CheckRecord:
    """Non-convergence must surface as a structured warning — and only then.

    A strategy that stops with ``converged=False`` must attach exactly
    one ``non-convergence`` warning (with its iteration count and
    remaining overflow); a converged or convergence-free run must attach
    none.  This pins the RouteResult warning contract across the whole
    corpus, not just the unit tests.
    """
    flagged = [w for w in result.warnings if w.get("kind") == "non-convergence"]
    problems = []
    if result.converged is False:
        if len(flagged) != 1:
            problems.append(
                f"converged=False but {len(flagged)} non-convergence warnings"
            )
        elif "message" not in flagged[0] or "total_overflow" not in flagged[0]:
            problems.append(f"warning missing fields: {sorted(flagged[0])}")
    elif flagged:
        problems.append(
            f"converged={result.converged} yet {len(flagged)} non-convergence warnings"
        )
    return CheckRecord(
        kind="warning-contract",
        scenario=case.scenario,
        strategy=case.strategy,
        ok=not problems,
        detail=(
            f"config {case.config}: "
            + ("; ".join(problems) if problems else
               f"converged={result.converged}, warnings={len(result.warnings)}")
        ),
    )


def _identity_check(
    scenario: str, strategy: str, key: tuple, digests: Mapping[str, str]
) -> CheckRecord:
    """Byte identity across every config sharing an identity key."""
    unique = sorted(set(digests.values()))
    ok = len(unique) <= 1
    if ok:
        detail = f"{len(digests)} configs agree on {unique[0] if unique else '-'}"
    else:
        by_digest: dict[str, list[str]] = {}
        for config, digest in sorted(digests.items()):
            by_digest.setdefault(digest, []).append(config)
        detail = "configs diverge: " + "; ".join(
            f"{digest} <- {', '.join(configs)}" for digest, configs in by_digest.items()
        )
    if len(key) > 1:
        detail = f"prune={'on' if key[-1] else 'off'}: {detail}"
    return CheckRecord(
        kind="identity", scenario=scenario, strategy=strategy, ok=ok, detail=detail
    )


def _cross_strategy_checks(
    report: ConformanceReport, scenario: str, baselines: Mapping[str, CaseRecord]
) -> None:
    """Wirelength band vs single-pass; overflow never worsens; timing wins.

    The ``timing-delay`` check fires only on scenarios carrying
    designated critical nets (``crit*``): there, timing-driven must
    beat plain negotiation on worst critical-net delay, strictly.
    """
    single = baselines.get("single")
    for strategy, case in baselines.items():
        if strategy != "single" and single is not None and single.wirelength > 0:
            ratio = case.wirelength / single.wirelength
            lo, hi = WIRELENGTH_BAND
            report.checks.append(
                CheckRecord(
                    kind="wirelength-band",
                    scenario=scenario,
                    strategy=strategy,
                    ok=lo <= ratio <= hi,
                    detail=(
                        f"wirelength {case.wirelength} is {ratio:.3f}x single "
                        f"({single.wirelength}); band [{lo}, {hi}]"
                    ),
                )
            )
        if (
            case.overflow_before is not None
            and case.overflow_after is not None
            and strategy != "single"
        ):
            report.checks.append(
                CheckRecord(
                    kind="overflow",
                    scenario=scenario,
                    strategy=strategy,
                    ok=case.overflow_after <= case.overflow_before,
                    detail=(
                        f"total overflow {case.overflow_before} -> {case.overflow_after}"
                    ),
                )
            )
    timing = baselines.get("timing-driven")
    negotiated = baselines.get("negotiated")
    if (
        timing is not None
        and negotiated is not None
        and timing.worst_critical_delay is not None
        and negotiated.worst_critical_delay is not None
    ):
        report.checks.append(
            CheckRecord(
                kind="timing-delay",
                scenario=scenario,
                strategy="timing-driven",
                ok=timing.worst_critical_delay < negotiated.worst_critical_delay,
                detail=(
                    f"worst critical-net delay {timing.worst_critical_delay:g} vs "
                    f"negotiated {negotiated.worst_critical_delay:g} "
                    f"(must be strictly lower)"
                ),
            )
        )


# ----------------------------------------------------------------------
# Incremental axis
# ----------------------------------------------------------------------
def _scripted_deltas(scenario: Scenario) -> dict[str, LayoutDelta]:
    """The per-scenario delta script the incremental axis replays.

    All three are deterministic functions of the scenario layout, so
    every matrix point reroutes the exact same mutations:

    ``empty``
        No change at all — the reroute must return the base result
        untouched, byte for byte, for every warm-startable strategy.
    ``disjoint``
        Net-list-only churn (remove one net, clone another) that leaves
        cell geometry alone, so an order-independent strategy must
        reproduce the from-scratch route of the mutated layout exactly.
    ``geometry``
        A unit cell move (falling back to ``disjoint`` when no legal
        move exists) that actually rips routes crossing the changed
        rectangles — the band checks carry the contract here.
    """
    return {
        "empty": empty_delta(),
        "disjoint": disjoint_delta(scenario.layout),
        "geometry": geometry_delta(scenario.layout),
    }


def _incremental_checks(
    pipeline: RoutingPipeline,
    report: ConformanceReport,
    scenario: Scenario,
    strategy: str,
    params: Mapping[str, Any],
    point: MatrixPoint,
    *,
    base_case: CaseRecord,
    base_result: RouteResult,
) -> None:
    """Replay the scripted deltas through ``reroute`` for one cell."""
    base_request = _cell_request(scenario, strategy, params, point)
    for delta_name, delta in _scripted_deltas(scenario).items():
        label = f"{point.name}+reroute[{delta_name}]"
        reroute_request = RerouteRequest(base=base_request, delta=delta)
        started = time.perf_counter()
        try:
            rerouted = pipeline.reroute(reroute_request, prev_result=base_result)
        except Exception as exc:  # noqa: BLE001 - keep the crash in its cell
            report.checks.append(
                CheckRecord(
                    kind="incremental-validity",
                    scenario=scenario.name,
                    strategy=strategy,
                    ok=False,
                    detail=(
                        f"config {label}: reroute raised "
                        f"{type(exc).__name__}: {exc}"
                    ),
                )
            )
            continue
        elapsed = time.perf_counter() - started
        case = _case_record(scenario.name, strategy, label, rerouted, elapsed)
        report.cases.append(case)
        report.checks.append(_incremental_validity(case, rerouted))

        if delta.is_empty:
            # An empty delta keeps every net: the engines return the
            # previous routing untouched, whatever the strategy.
            report.checks.append(
                _incremental_identity(
                    case, base_case.fingerprint,
                    f"config {label}: vs base {base_case.config}",
                )
            )
            continue

        scratch_label = f"{point.name}+scratch[{delta_name}]"
        started = time.perf_counter()
        try:
            scratch = pipeline.run(reroute_request.mutated_request())
        except Exception as exc:  # noqa: BLE001 - keep the crash in its cell
            report.checks.append(
                CheckRecord(
                    kind="incremental-validity",
                    scenario=scenario.name,
                    strategy=strategy,
                    ok=False,
                    detail=(
                        f"config {scratch_label}: pipeline raised "
                        f"{type(exc).__name__}: {exc}"
                    ),
                )
            )
            continue
        scratch_case = _case_record(
            scenario.name, strategy, scratch_label, scratch,
            time.perf_counter() - started,
        )
        report.cases.append(scratch_case)

        if delta_name == "disjoint" and strategy == "single":
            # Cell geometry is untouched, and ``single`` routes every
            # net independently of the others — so routing only the
            # dirty nets must land exactly where from scratch does.
            report.checks.append(
                _incremental_identity(
                    case, scratch_case.fingerprint,
                    f"config {label}: vs scratch {scratch_label}",
                )
            )
        report.checks.append(_incremental_band(case, scratch_case))


def _incremental_validity(case: CaseRecord, result: RouteResult) -> CheckRecord:
    """A reroute is always a valid routing: clean verify, nothing lost."""
    problems = []
    if case.violations:
        problems.append(f"{case.violations} verification violations")
    if case.failed_nets:
        problems.append(f"{case.failed_nets} unrouted nets")
    kept = result.timings.get("kept_nets")
    ripped = result.timings.get("ripped_nets")
    new = result.timings.get("new_nets")
    classified = (
        f" (kept={kept:.0f} ripped={ripped:.0f} new={new:.0f})"
        if None not in (kept, ripped, new)
        else ""
    )
    return CheckRecord(
        kind="incremental-validity",
        scenario=case.scenario,
        strategy=case.strategy,
        ok=not problems,
        detail=(
            f"config {case.config}: "
            + ("; ".join(problems) if problems else "clean")
            + classified
        ),
    )


def _incremental_identity(
    case: CaseRecord, expected: str, context: str
) -> CheckRecord:
    """Byte identity between a reroute and its oracle route."""
    ok = case.fingerprint == expected
    return CheckRecord(
        kind="incremental-identity",
        scenario=case.scenario,
        strategy=case.strategy,
        ok=ok,
        detail=(
            f"{context}: {case.fingerprint}"
            + ("" if ok else f" != {expected}")
        ),
    )


def _incremental_band(case: CaseRecord, scratch: CaseRecord) -> CheckRecord:
    """Reroute quality stays within the from-scratch bands."""
    problems = []
    lo, hi = WIRELENGTH_BAND
    if scratch.wirelength > 0:
        ratio = case.wirelength / scratch.wirelength
        if not lo <= ratio <= hi:
            problems.append(
                f"wirelength {case.wirelength} is {ratio:.3f}x scratch "
                f"({scratch.wirelength}); band [{lo}, {hi}]"
            )
    if (
        case.overflow_before is not None
        and case.overflow_after is not None
        and case.overflow_after > case.overflow_before
    ):
        problems.append(
            f"overflow worsened {case.overflow_before} -> {case.overflow_after}"
        )
    return CheckRecord(
        kind="incremental-band",
        scenario=case.scenario,
        strategy=case.strategy,
        ok=not problems,
        detail=(
            f"config {case.config}: "
            + ("; ".join(problems) if problems else
               f"wirelength {case.wirelength} vs scratch {scratch.wirelength}, "
               f"overflow {case.overflow_before} -> {case.overflow_after}")
        ),
    )
