"""The checked-in scenario corpus: save, load, regenerate.

The corpus lives as one JSON file per scenario under ``scenarios/`` at
the repository root (:data:`DEFAULT_CORPUS_DIR`).  Each file is a
:class:`~repro.scenarios.families.Scenario` document: the regeneration
recipe ``(family, seed, params)`` *and* the generated layout inline.
Storing both makes the corpus stable under generator refactors — the
loader hands out the stored layout, while the corpus tests assert that
regenerating from the recipe still reproduces it byte-for-byte, so a
silent generator change fails loudly instead of quietly shifting every
downstream number.

``python -m repro conformance --write-corpus`` rewrites the default
corpus from :func:`default_corpus_specs` (do this deliberately, with
the diff reviewed, when a generator change is intentional).
"""

from __future__ import annotations

from pathlib import Path
from typing import Any, Iterable

from repro.errors import LayoutError
from repro.scenarios.families import Scenario, build_scenario

#: scenarios/ at the repository root (…/src/repro/scenarios/corpus.py -> repo).
DEFAULT_CORPUS_DIR = Path(__file__).resolve().parents[3] / "scenarios"

#: The recipes behind the checked-in corpus: (family, seed, params).
#: Seeds are arbitrary but frozen; two entries per congestion-critical
#: family give the cross-strategy comparisons more than one data point.
DEFAULT_CORPUS_SPECS: tuple[tuple[str, int, dict[str, Any]], ...] = (
    ("channel-corridors", 11, {}),
    ("macro-maze", 23, {}),
    ("pad-ring", 37, {}),
    ("steiner-stress", 41, {}),
    ("congestion-hotspot", 53, {}),
    ("congestion-hotspot", 59, {"rows": 3, "cols": 2, "n_nets": 10, "gap": 2}),
    ("long-critical-nets", 79, {}),
    ("long-critical-nets", 107, {"rows": 3, "cols": 2, "n_filler": 12, "n_critical": 4}),
    ("zero-nets", 61, {}),
    ("single-cell", 67, {}),
    ("min-separation", 71, {}),
    ("skewed-surface", 73, {}),
)


def default_corpus_specs() -> list[Scenario]:
    """Freshly generate every default corpus scenario (no disk access)."""
    return [
        build_scenario(family, seed=seed, params=params, name=_entry_name(family, seed))
        for family, seed, params in DEFAULT_CORPUS_SPECS
    ]


def _entry_name(family: str, seed: int) -> str:
    return f"{family}-s{seed}"


def save_scenario(scenario: Scenario, directory: Path | str) -> Path:
    """Write *scenario* as ``<name>.json`` under *directory*; returns the path."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / f"{scenario.name}.json"
    path.write_text(scenario.to_json() + "\n", encoding="utf-8")
    return path


def load_scenario(path: Path | str) -> Scenario:
    """Load one scenario JSON file."""
    return Scenario.from_json(Path(path).read_text(encoding="utf-8"))


def load_corpus(directory: Path | str = DEFAULT_CORPUS_DIR) -> list[Scenario]:
    """Load every ``*.json`` scenario under *directory*, sorted by filename.

    Raises :class:`LayoutError` when the directory is missing or empty —
    an empty conformance run would vacuously pass, which is worse than
    failing.
    """
    directory = Path(directory)
    paths = sorted(directory.glob("*.json"))
    if not paths:
        raise LayoutError(
            f"no scenario corpus found under {directory} "
            f"(expected scenarios/*.json; see docs/scenarios.md)"
        )
    return [load_scenario(path) for path in paths]


def write_corpus(
    directory: Path | str = DEFAULT_CORPUS_DIR,
    scenarios: Iterable[Scenario] | None = None,
) -> list[Path]:
    """(Re)write the corpus files; returns the written paths."""
    entries = list(scenarios) if scenarios is not None else default_corpus_specs()
    return [save_scenario(scenario, directory) for scenario in entries]


def corpus_stale_entries(directory: Path | str = DEFAULT_CORPUS_DIR) -> list[str]:
    """Names of corpus entries whose stored layout no longer matches its recipe.

    Empty means every checked-in scene is exactly what its generator
    produces today (the corpus regression test asserts this).
    """
    from repro.layout.io import layout_to_json

    stale: list[str] = []
    for scenario in load_corpus(directory):
        if layout_to_json(scenario.regenerate()) != layout_to_json(scenario.layout):
            stale.append(scenario.name)
    return stale
