"""Scenario corpus and differential conformance harness.

Three layers (see ``docs/scenarios.md``):

- :mod:`repro.scenarios.families` — named, seeded, JSON-round-trippable
  scenario generators, each targeting a distinct congestion regime.
- :mod:`repro.scenarios.corpus` — the checked-in ``scenarios/*.json``
  corpus: loader, writer, and staleness detection.
- :mod:`repro.scenarios.conformance` — the differential runner that
  routes every corpus entry through every strategy × config-toggle
  combination, oracle-verifies each result, and asserts byte identity
  and cross-strategy tolerance bands.
"""

from repro.scenarios.families import (
    FAMILIES,
    Scenario,
    ScenarioFamily,
    build_scenario,
)
from repro.scenarios.corpus import (
    DEFAULT_CORPUS_DIR,
    corpus_stale_entries,
    default_corpus_specs,
    load_corpus,
    load_scenario,
    save_scenario,
    write_corpus,
)
from repro.scenarios.conformance import (
    DEFAULT_STRATEGIES,
    FULL_MATRIX,
    INCREMENTAL_STRATEGIES,
    QUICK_MATRIX,
    WIRELENGTH_BAND,
    ConformanceReport,
    MatrixPoint,
    route_fingerprint,
    run_conformance,
)

__all__ = [
    "FAMILIES",
    "Scenario",
    "ScenarioFamily",
    "build_scenario",
    "DEFAULT_CORPUS_DIR",
    "corpus_stale_entries",
    "default_corpus_specs",
    "load_corpus",
    "load_scenario",
    "save_scenario",
    "write_corpus",
    "DEFAULT_STRATEGIES",
    "FULL_MATRIX",
    "INCREMENTAL_STRATEGIES",
    "QUICK_MATRIX",
    "WIRELENGTH_BAND",
    "ConformanceReport",
    "MatrixPoint",
    "route_fingerprint",
    "run_conformance",
]
