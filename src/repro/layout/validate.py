"""Layout validation against the paper's placement restrictions.

"There are, however, three restrictions placed on the block placement:
The blocks must be rectangular, oriented orthogonally, and placed a
finite and non-zero distance apart."

Rectangularity and orthogonality are structural (the geometry types
admit nothing else; polygonal cells are the explicitly-flagged
extension), so validation focuses on separation, containment, and pin
legality.
"""

from __future__ import annotations

from repro.errors import ValidationError
from repro.layout.layout import Layout


def validate_layout(
    layout: Layout,
    *,
    min_separation: int = 1,
    allow_polygon_cells: bool = True,
) -> None:
    """Check *layout* against the paper's placement restrictions.

    Parameters
    ----------
    layout:
        The layout to check.
    min_separation:
        Minimum required gap between any two cell bounding boxes.  The
        paper requires a "finite and non-zero distance", i.e. at least
        1 database unit.
    allow_polygon_cells:
        When ``False``, enforce the base paper's rectangularity
        restriction strictly (reject :class:`OrthoPolygon` outlines).

    Raises
    ------
    ValidationError
        Describing the first violation found, with the offending names.
    """
    if min_separation < 1:
        raise ValidationError("min_separation must be >= 1 (paper requires non-zero spacing)")

    cells = layout.cells
    for cell in cells:
        if not allow_polygon_cells and not cell.is_rectangular:
            raise ValidationError(
                f"cell {cell.name!r} is polygonal but rectangular cells were required"
            )
        if not layout.outline.contains_rect(cell.bounding_box):
            raise ValidationError(f"cell {cell.name!r} extends outside the routing surface")

    for i in range(len(cells)):
        for j in range(i + 1, len(cells)):
            a, b = cells[i], cells[j]
            gap = a.bounding_box.separation(b.bounding_box)
            if gap < min_separation:
                raise ValidationError(
                    f"cells {a.name!r} and {b.name!r} are {gap} apart; "
                    f"placement requires separation >= {min_separation}"
                )

    _validate_pins(layout)


def _validate_pins(layout: Layout) -> None:
    """Every pin must be a legal route endpoint.

    Rules: a pin attached to a cell must lie on that cell's boundary; a
    pad pin must lie on or inside the outline; no pin may fall strictly
    inside any cell interior (it would be unreachable).
    """
    for net in layout.nets:
        for terminal in net.terminals:
            for pin in terminal.pins:
                where = f"pin {pin.name!r} of net {net.name!r}"
                if not layout.outline.contains_point(pin.location):
                    raise ValidationError(f"{where} lies outside the routing surface")
                if pin.cell is not None:
                    cell = layout.cell(pin.cell)
                    if not cell.on_boundary(pin.location):
                        raise ValidationError(
                            f"{where} is not on the boundary of its cell {pin.cell!r}"
                        )
                for cell in layout.cells:
                    if cell.contains_point(pin.location, strict=True):
                        raise ValidationError(
                            f"{where} is strictly inside cell {cell.name!r} and unreachable"
                        )
