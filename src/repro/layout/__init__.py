"""General-cell layout model.

This package models the paper's problem setting: a routing surface
holding rectangular (or, via the extension, orthogonal-polygon) cells
placed a finite non-zero distance apart, with nets connecting
multi-pin terminals on cell boundaries.

The model is deliberately independent of any router; routers consume a
:class:`Layout` through its :meth:`~repro.layout.layout.Layout.obstacles`
view and the net list.
"""

from repro.layout.cell import Cell
from repro.layout.pin import Pin
from repro.layout.terminal import Terminal
from repro.layout.net import Net
from repro.layout.layout import Layout
from repro.layout.validate import validate_layout
from repro.layout.generators import (
    LayoutSpec,
    grid_layout,
    random_layout,
    random_netlist,
)
from repro.layout.io import layout_from_dict, layout_from_json, layout_to_dict, layout_to_json

__all__ = [
    "Cell",
    "Layout",
    "LayoutSpec",
    "Net",
    "Pin",
    "Terminal",
    "grid_layout",
    "layout_from_dict",
    "layout_from_json",
    "layout_to_dict",
    "layout_to_json",
    "random_layout",
    "random_netlist",
    "validate_layout",
]
