"""Synthetic layout and netlist generators.

The paper evaluated on proprietary Caltech layouts that no longer
exist; these generators are the documented substitution (DESIGN.md §3).
They produce valid general-cell layouts — random macro placements with
guaranteed non-zero separation, boundary pins, multi-terminal and
multi-pin netlists — parameterized so every experiment can sweep
problem size and density.

All randomness flows through an explicit seed; the same spec + seed
always yields the identical layout.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Optional

from repro.errors import LayoutError
from repro.geometry.point import Point
from repro.geometry.rect import Rect
from repro.layout.cell import Cell
from repro.layout.layout import Layout
from repro.layout.net import Net
from repro.layout.pin import Pin
from repro.layout.terminal import Terminal


@dataclass(frozen=True)
class LayoutSpec:
    """Parameters for :func:`random_layout`.

    Attributes
    ----------
    n_cells, n_nets:
        Problem size.
    surface:
        Routing surface extent; ``None`` sizes it automatically from
        the requested cell count and density.
    cell_min, cell_max:
        Side-length range for the square-ish random macros.
    separation:
        Minimum gap enforced between placed cells (>= 1 per the paper).
    terminals_per_net:
        Inclusive range of terminal counts; nets above 2 exercise the
        Steiner machinery.
    pins_per_terminal:
        Inclusive range of equivalent-pin counts; above 1 exercises
        multi-pin terminals.
    pad_fraction:
        Fraction of terminals placed on the surface boundary (pads).
    density:
        Target cell-area utilization used when auto-sizing the surface.
    """

    n_cells: int = 10
    n_nets: int = 10
    surface: Optional[Rect] = None
    cell_min: int = 8
    cell_max: int = 24
    separation: int = 2
    terminals_per_net: tuple[int, int] = (2, 2)
    pins_per_terminal: tuple[int, int] = (1, 1)
    pad_fraction: float = 0.1
    density: float = 0.35


def random_layout(spec: LayoutSpec = LayoutSpec(), *, seed: int = 0) -> Layout:
    """Generate a valid random general-cell layout.

    Placement uses rejection sampling against the separation
    constraint; if the surface fills up before ``n_cells`` are placed,
    a :class:`LayoutError` is raised (lower the density or cell sizes).
    """
    rng = random.Random(seed)
    surface = spec.surface or _auto_surface(spec)
    layout = Layout(surface)
    _place_random_cells(layout, spec, rng)
    nets = random_netlist(layout, spec.n_nets, rng=rng, spec=spec)
    for net in nets:
        layout.add_net(net)
    return layout


def _auto_surface(spec: LayoutSpec) -> Rect:
    """Square surface sized so expected cell area hits ``spec.density``."""
    mean_side = (spec.cell_min + spec.cell_max) / 2
    expected_area = spec.n_cells * mean_side * mean_side
    side = max(int((expected_area / spec.density) ** 0.5), spec.cell_max + 2 * spec.separation)
    return Rect(0, 0, side, side)


def _place_random_cells(layout: Layout, spec: LayoutSpec, rng: random.Random) -> None:
    """Place ``spec.n_cells`` random macros with separation enforced."""
    surface = layout.outline
    placed: list[Rect] = []
    attempts_per_cell = 400
    for index in range(spec.n_cells):
        for attempt in range(attempts_per_cell):
            width = rng.randint(spec.cell_min, spec.cell_max)
            height = rng.randint(spec.cell_min, spec.cell_max)
            max_x = surface.x1 - width - spec.separation
            max_y = surface.y1 - height - spec.separation
            min_x = surface.x0 + spec.separation
            min_y = surface.y0 + spec.separation
            if max_x < min_x or max_y < min_y:
                continue
            x = rng.randint(min_x, max_x)
            y = rng.randint(min_y, max_y)
            candidate = Rect.from_origin_size(x, y, width, height)
            inflated = candidate.inflated(spec.separation)
            if any(inflated.intersects(other, strict=True) for other in placed):
                continue
            placed.append(candidate)
            layout.add_cell(Cell(f"c{index}", candidate))
            break
        else:
            raise LayoutError(
                f"could not place cell {index} of {spec.n_cells}: surface too dense "
                f"(density={spec.density}, separation={spec.separation})"
            )


def random_netlist(
    layout: Layout,
    n_nets: int,
    *,
    rng: random.Random | None = None,
    seed: int = 0,
    spec: LayoutSpec = LayoutSpec(),
) -> list[Net]:
    """Generate *n_nets* random nets over the layout's existing cells.

    Terminals attach to random boundary points of distinct random
    cells (or to the surface boundary for pads); pin counts and
    terminal counts follow *spec*.
    """
    if rng is None:
        rng = random.Random(seed)
    cells = list(layout.cells)
    if not cells:
        raise LayoutError("cannot build a netlist for a layout with no cells")
    nets: list[Net] = []
    for net_index in range(n_nets):
        n_terms = rng.randint(*spec.terminals_per_net)
        n_terms = max(2, n_terms)
        terminals: list[Terminal] = []
        chosen_cells = _sample_cells(cells, n_terms, rng)
        for term_index in range(n_terms):
            term_name = f"n{net_index}.t{term_index}"
            if rng.random() < spec.pad_fraction:
                terminals.append(
                    _pad_terminal(term_name, layout.outline, rng, spec.pins_per_terminal)
                )
            else:
                cell = chosen_cells[term_index % len(chosen_cells)]
                terminals.append(_cell_terminal(term_name, cell, rng, spec.pins_per_terminal))
        nets.append(Net(f"n{net_index}", terminals))
    return nets


def _sample_cells(cells: list[Cell], count: int, rng: random.Random) -> list[Cell]:
    """Sample up to *count* distinct cells (with reuse if too few exist)."""
    if count <= len(cells):
        return rng.sample(cells, count)
    return [rng.choice(cells) for _ in range(count)]


def _cell_terminal(
    name: str, cell: Cell, rng: random.Random, pin_range: tuple[int, int]
) -> Terminal:
    """A terminal with 1..k pins at random points of *cell*'s boundary."""
    n_pins = rng.randint(*pin_range)
    pins = [
        Pin(f"{name}.p{i}", _random_boundary_point(cell.bounding_box, rng), cell.name)
        for i in range(max(1, n_pins))
    ]
    return Terminal(name, pins)


def _pad_terminal(
    name: str, outline: Rect, rng: random.Random, pin_range: tuple[int, int]
) -> Terminal:
    """A pad terminal on the routing-surface boundary."""
    n_pins = rng.randint(*pin_range)
    pins = [
        Pin(f"{name}.p{i}", _random_boundary_point(outline, rng), None)
        for i in range(max(1, n_pins))
    ]
    return Terminal(name, pins)


def _random_boundary_point(rect: Rect, rng: random.Random) -> Point:
    """A uniformly random point on the boundary of *rect*."""
    side = rng.randrange(4)
    if side == 0:  # bottom
        return Point(rng.randint(rect.x0, rect.x1), rect.y0)
    if side == 1:  # right
        return Point(rect.x1, rng.randint(rect.y0, rect.y1))
    if side == 2:  # top
        return Point(rng.randint(rect.x0, rect.x1), rect.y1)
    return Point(rect.x0, rng.randint(rect.y0, rect.y1))


def grid_layout(
    rows: int,
    cols: int,
    *,
    cell_width: int = 16,
    cell_height: int = 16,
    gap: int = 4,
    margin: int = 6,
) -> Layout:
    """A deterministic grid of identical cells with uniform passages.

    The congestion experiments use this: every inter-cell passage has
    width *gap*, so passage capacity is uniform and overflow is easy to
    provoke and measure.
    """
    if rows < 1 or cols < 1:
        raise LayoutError("grid_layout needs at least a 1x1 grid")
    if gap < 1:
        raise LayoutError("grid gap must be >= 1 (non-zero separation)")
    width = margin * 2 + cols * cell_width + (cols - 1) * gap
    height = margin * 2 + rows * cell_height + (rows - 1) * gap
    layout = Layout(Rect(0, 0, width, height))
    for r in range(rows):
        for c in range(cols):
            x = margin + c * (cell_width + gap)
            y = margin + r * (cell_height + gap)
            layout.add_cell(Cell.rect(f"g{r}_{c}", x, y, cell_width, cell_height))
    return layout


def figure1_layout() -> tuple[Layout, Point, Point]:
    """A reconstruction of the paper's Figure 1 scene.

    Figure 1 shows the A* expansion routing between two points across a
    field of several blocks.  The published figure is schematic (no
    coordinates are given), so this reconstruction preserves its
    topology: a start point at the lower left, a destination at the
    upper right, and a handful of blocks that force the route to hug
    corners on the way.

    Returns
    -------
    (layout, start, destination)
    """
    layout = Layout(Rect(0, 0, 120, 100))
    blocks = [
        Cell.rect("a", 12, 58, 22, 30),
        Cell.rect("b", 14, 12, 24, 24),
        Cell.rect("c", 46, 34, 26, 30),
        Cell.rect("d", 50, 74, 30, 16),
        Cell.rect("e", 52, 8, 26, 16),
        Cell.rect("f", 86, 30, 24, 34),
    ]
    for block in blocks:
        layout.add_cell(block)
    start = Point(6, 6)
    destination = Point(114, 92)
    return layout, start, destination
