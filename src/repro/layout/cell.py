"""Cells (blocks / macros) in a general-cell layout.

"General cell routing refers to the problem of routing between several
blocks of arbitrary size."  A :class:`Cell` is such a block: named,
rectangular by default, optionally an orthogonal polygon (the paper's
proposed extension).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union

from repro.errors import LayoutError
from repro.geometry.orthpoly import OrthoPolygon
from repro.geometry.point import Point
from repro.geometry.rect import Rect

Shape = Union[Rect, OrthoPolygon]


@dataclass(frozen=True)
class Cell:
    """A placed block.

    Parameters
    ----------
    name:
        Unique identifier within a layout.
    shape:
        Either a :class:`Rect` (the paper's base restriction: "blocks
        must be rectangular, oriented orthogonally") or an
        :class:`OrthoPolygon` (the Extensions section's generalization).
    """

    name: str
    shape: Shape

    def __post_init__(self) -> None:
        if not self.name:
            raise LayoutError("cell name must be non-empty")
        if isinstance(self.shape, Rect) and (self.shape.width == 0 or self.shape.height == 0):
            raise LayoutError(f"cell {self.name!r} has a degenerate outline {self.shape}")

    # ------------------------------------------------------------------
    # Shape views
    # ------------------------------------------------------------------
    @property
    def is_rectangular(self) -> bool:
        """True for plain rectangular blocks."""
        return isinstance(self.shape, Rect)

    @property
    def bounding_box(self) -> Rect:
        """Axis-aligned bounding box of the outline."""
        if isinstance(self.shape, Rect):
            return self.shape
        return self.shape.bounding_box

    @property
    def blocking_rects(self) -> tuple[Rect, ...]:
        """Disjoint rects whose open interiors block routing.

        A rectangular cell blocks with itself; a polygonal cell blocks
        with its slab decomposition (wires may still hug every boundary
        edge because blocking uses open interiors).
        """
        if isinstance(self.shape, Rect):
            return (self.shape,)
        return tuple(self.shape.to_rects())

    @property
    def area(self) -> int:
        """Area of the outline."""
        return self.shape.area

    def on_boundary(self, p: Point) -> bool:
        """Whether *p* lies on the cell's outline boundary."""
        return self.shape.on_boundary(p)

    def contains_point(self, p: Point, *, strict: bool = False) -> bool:
        """Whether *p* is inside the outline (open interior if strict)."""
        return self.shape.contains_point(p, strict=strict)

    # ------------------------------------------------------------------
    # Placement transforms (used when instancing cells from a library)
    # ------------------------------------------------------------------
    def translated(self, dx: int, dy: int) -> "Cell":
        """The same cell displaced by ``(dx, dy)``."""
        if isinstance(self.shape, Rect):
            return Cell(self.name, self.shape.translated(dx, dy))
        moved = OrthoPolygon([v.translated(dx, dy) for v in self.shape.vertices])
        return Cell(self.name, moved)

    def renamed(self, name: str) -> "Cell":
        """The same outline under a new name (library instancing)."""
        return Cell(name, self.shape)

    def rotated90(self) -> "Cell":
        """The cell rotated 90 degrees counter-clockwise about its bbox origin.

        Orthogonal orientation is preserved, matching the paper's second
        placement restriction.
        """
        box = self.bounding_box
        if isinstance(self.shape, Rect):
            rotated = Rect.from_origin_size(box.x0, box.y0, box.height, box.width)
            return Cell(self.name, rotated)
        vertices = [
            Point(box.x0 + (box.y1 - v.y), box.y0 + (v.x - box.x0)) for v in self.shape.vertices
        ]
        return Cell(self.name, OrthoPolygon(vertices))

    @staticmethod
    def rect(name: str, x: int, y: int, width: int, height: int) -> "Cell":
        """Convenience constructor from origin and size."""
        return Cell(name, Rect.from_origin_size(x, y, width, height))

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"Cell({self.name!r}, {self.shape})"
