"""Layout serialization to/from plain dicts and JSON.

A small, stable text format so that example layouts, regression cases,
and externally produced placements can move in and out of the library.
Polygonal cells round-trip via their vertex lists.
"""

from __future__ import annotations

import json
from typing import Any

from repro.errors import LayoutError
from repro.geometry.orthpoly import OrthoPolygon
from repro.geometry.point import Point
from repro.geometry.rect import Rect
from repro.layout.cell import Cell
from repro.layout.layout import Layout
from repro.layout.net import Net
from repro.layout.pin import Pin
from repro.layout.terminal import Terminal

FORMAT_VERSION = 1


def layout_to_dict(layout: Layout) -> dict[str, Any]:
    """Convert *layout* to a JSON-ready dict."""
    return {
        "version": FORMAT_VERSION,
        "outline": _rect_to_list(layout.outline),
        "cells": [_cell_to_dict(cell) for cell in layout.cells],
        "nets": [_net_to_dict(net) for net in layout.nets],
    }


def layout_from_dict(data: dict[str, Any]) -> Layout:
    """Rebuild a layout from :func:`layout_to_dict` output.

    Raises :class:`LayoutError` on malformed or wrong-version input.
    """
    try:
        version = data["version"]
        if version != FORMAT_VERSION:
            raise LayoutError(f"unsupported layout format version {version!r}")
        layout = Layout(_rect_from_list(data["outline"]))
        for cell_data in data["cells"]:
            layout.add_cell(_cell_from_dict(cell_data))
        for net_data in data["nets"]:
            layout.add_net(_net_from_dict(net_data))
    except (KeyError, TypeError, ValueError) as exc:
        raise LayoutError(f"malformed layout data: {exc}") from exc
    return layout


def layout_to_json(layout: Layout, *, indent: int | None = 2) -> str:
    """Serialize *layout* to a JSON string."""
    return json.dumps(layout_to_dict(layout), indent=indent)


def layout_from_json(text: str) -> Layout:
    """Parse a layout from a JSON string."""
    try:
        data = json.loads(text)
    except json.JSONDecodeError as exc:
        raise LayoutError(f"invalid JSON: {exc}") from exc
    return layout_from_dict(data)


# ----------------------------------------------------------------------
# Element converters
# ----------------------------------------------------------------------
def _rect_to_list(rect: Rect) -> list[int]:
    """``[x0, y0, x1, y1]`` — the rect shape used throughout the format."""
    return [rect.x0, rect.y0, rect.x1, rect.y1]


def _rect_from_list(values: list[int]) -> Rect:
    """Inverse of :func:`rect_to_list`."""
    x0, y0, x1, y1 = values
    return Rect(x0, y0, x1, y1)


def _cell_to_dict(cell: Cell) -> dict[str, Any]:
    """One cell as its layout-file entry (``rect`` or ``polygon`` form)."""
    if cell.is_rectangular:
        return {"name": cell.name, "rect": _rect_to_list(cell.bounding_box)}
    assert isinstance(cell.shape, OrthoPolygon)
    return {
        "name": cell.name,
        "polygon": [[v.x, v.y] for v in cell.shape.vertices],
    }


def _cell_from_dict(data: dict[str, Any]) -> Cell:
    """Inverse of :func:`cell_to_dict`; raises :class:`LayoutError` when malformed."""
    if "rect" in data:
        return Cell(data["name"], _rect_from_list(data["rect"]))
    if "polygon" in data:
        vertices = [Point(int(x), int(y)) for x, y in data["polygon"]]
        return Cell(data["name"], OrthoPolygon(vertices))
    raise LayoutError(f"cell entry {data.get('name')!r} has neither 'rect' nor 'polygon'")


def _net_to_dict(net: Net) -> dict[str, Any]:
    """One net as its layout-file entry (terminals with pin lists)."""
    return {
        "name": net.name,
        "terminals": [
            {
                "name": term.name,
                "pins": [
                    {"name": pin.name, "at": [pin.location.x, pin.location.y], "cell": pin.cell}
                    for pin in term.pins
                ],
            }
            for term in net.terminals
        ],
    }


def _net_from_dict(data: dict[str, Any]) -> Net:
    """Inverse of :func:`net_to_dict`."""
    terminals = [
        Terminal(
            term["name"],
            [
                Pin(pin["name"], Point(int(pin["at"][0]), int(pin["at"][1])), pin.get("cell"))
                for pin in term["pins"]
            ],
        )
        for term in data["terminals"]
    ]
    return Net(data["name"], terminals)


# Public element-level converters.  The incremental delta format
# (:mod:`repro.incremental.delta`) serializes added cells and nets with
# exactly the layout-file shapes, so a delta file reads the same as the
# layout JSON it mutates.
rect_to_list = _rect_to_list
rect_from_list = _rect_from_list
cell_to_dict = _cell_to_dict
cell_from_dict = _cell_from_dict
net_to_dict = _net_to_dict
net_from_dict = _net_from_dict
