"""Pins: named connection points on cell boundaries (or chip pads).

The paper assumes no grid for pin locations — pins sit at arbitrary
coordinates, typically on the boundary of their owning cell, or on the
routing-surface boundary for pads.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.errors import LayoutError
from repro.geometry.point import Point


@dataclass(frozen=True, slots=True)
class Pin:
    """A single physical connection point.

    Parameters
    ----------
    name:
        Identifier, unique within its terminal.
    location:
        Position in the routing plane.
    cell:
        Name of the owning cell, or ``None`` for a pad / floating pin.
    """

    name: str
    location: Point
    cell: Optional[str] = None

    def __post_init__(self) -> None:
        if not self.name:
            raise LayoutError("pin name must be non-empty")

    @property
    def is_pad(self) -> bool:
        """True for pins not attached to any cell (chip pads)."""
        return self.cell is None

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        owner = self.cell or "pad"
        return f"Pin({self.name!r}@{self.location} on {owner})"
