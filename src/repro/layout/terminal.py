"""Multi-pin terminals.

From the paper's Extensions section: "Multi-pin terminals are handled
by logically grouping all pins which belong to a terminal.  When a
terminal is connected into the tree ... all the pins which are
associated with the newly connected terminal are brought into the
connected set."

A :class:`Terminal` is that logical group: one electrical connection
point of a net, physically reachable at any of several equivalent pins
(e.g. a power rail exposed on both cell edges).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from repro.errors import LayoutError
from repro.geometry.point import Point
from repro.layout.pin import Pin


@dataclass(frozen=True)
class Terminal:
    """A logical terminal: one or more electrically equivalent pins."""

    name: str
    pins: tuple[Pin, ...]

    def __init__(self, name: str, pins: Iterable[Pin]):
        pin_tuple = tuple(pins)
        if not name:
            raise LayoutError("terminal name must be non-empty")
        if not pin_tuple:
            raise LayoutError(f"terminal {name!r} has no pins")
        names = [p.name for p in pin_tuple]
        if len(set(names)) != len(names):
            raise LayoutError(f"terminal {name!r} has duplicate pin names")
        object.__setattr__(self, "name", name)
        object.__setattr__(self, "pins", pin_tuple)

    @property
    def locations(self) -> tuple[Point, ...]:
        """Locations of every equivalent pin."""
        return tuple(p.location for p in self.pins)

    @property
    def is_multi_pin(self) -> bool:
        """True when the terminal exposes more than one equivalent pin."""
        return len(self.pins) > 1

    def nearest_pin_to(self, point: Point) -> Pin:
        """The equivalent pin closest (L1) to *point*.

        Deterministic under ties (pin order breaks them).
        """
        return min(self.pins, key=lambda p: (p.location.manhattan(point), p.name))

    def distance_to(self, point: Point) -> int:
        """Rectilinear distance from *point* to the nearest pin."""
        return min(p.location.manhattan(point) for p in self.pins)

    @staticmethod
    def single(name: str, location: Point, cell: str | None = None) -> "Terminal":
        """Convenience constructor for the common one-pin terminal."""
        return Terminal(name, [Pin(name, location, cell)])

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"Terminal({self.name!r}, {len(self.pins)} pin(s))"
