"""The layout: routing surface, placed cells, and the netlist.

A :class:`Layout` is the single input artifact of the global router.
It is a mutable builder (cells and nets can be added incrementally, as
a silicon compiler or chip assembler would) with validation available
via :func:`repro.layout.validate.validate_layout`.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Optional

from repro.errors import LayoutError
from repro.geometry.point import Point
from repro.geometry.raytrace import ObstacleSet
from repro.geometry.rect import Rect
from repro.layout.cell import Cell
from repro.layout.net import Net
from repro.layout.pin import Pin


class Layout:
    """A general-cell layout.

    Parameters
    ----------
    outline:
        The routing surface boundary.  All cells and routes must stay
        inside it.
    cells, nets:
        Optional initial contents; more can be added afterwards.
    """

    def __init__(
        self,
        outline: Rect,
        cells: Iterable[Cell] = (),
        nets: Iterable[Net] = (),
    ):
        if outline.width == 0 or outline.height == 0:
            raise LayoutError(f"layout outline {outline} is degenerate")
        self.outline = outline
        self._cells: dict[str, Cell] = {}
        self._nets: dict[str, Net] = {}
        for cell in cells:
            self.add_cell(cell)
        for net in nets:
            self.add_net(net)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_cell(self, cell: Cell) -> None:
        """Add a cell.

        Raises :class:`LayoutError` on duplicate names or cells outside
        the outline.  Overlap/separation is checked by validation, not
        here, so that partially built layouts remain inspectable.
        """
        if cell.name in self._cells:
            raise LayoutError(f"duplicate cell name {cell.name!r}")
        if not self.outline.contains_rect(cell.bounding_box):
            raise LayoutError(f"cell {cell.name!r} extends outside the outline {self.outline}")
        self._cells[cell.name] = cell

    def add_net(self, net: Net) -> None:
        """Add a net.

        Raises :class:`LayoutError` on duplicate names or pins that
        reference unknown cells.
        """
        if net.name in self._nets:
            raise LayoutError(f"duplicate net name {net.name!r}")
        for terminal in net.terminals:
            for pin in terminal.pins:
                if pin.cell is not None and pin.cell not in self._cells:
                    raise LayoutError(
                        f"net {net.name!r} pin {pin.name!r} references unknown cell {pin.cell!r}"
                    )
        self._nets[net.name] = net

    def remove_net(self, name: str) -> Net:
        """Remove and return a net by name (rip-up support)."""
        try:
            return self._nets.pop(name)
        except KeyError:
            raise LayoutError(f"no net named {name!r}") from None

    # ------------------------------------------------------------------
    # Access
    # ------------------------------------------------------------------
    @property
    def cells(self) -> tuple[Cell, ...]:
        """All cells in insertion order."""
        return tuple(self._cells.values())

    @property
    def nets(self) -> tuple[Net, ...]:
        """All nets in insertion order."""
        return tuple(self._nets.values())

    def cell(self, name: str) -> Cell:
        """Look up a cell by name."""
        try:
            return self._cells[name]
        except KeyError:
            raise LayoutError(f"no cell named {name!r}") from None

    def net(self, name: str) -> Net:
        """Look up a net by name."""
        try:
            return self._nets[name]
        except KeyError:
            raise LayoutError(f"no net named {name!r}") from None

    def __contains__(self, name: str) -> bool:
        return name in self._cells or name in self._nets

    def iter_pins(self) -> Iterator[Pin]:
        """Every pin of every net."""
        for net in self._nets.values():
            for terminal in net.terminals:
                yield from terminal.pins

    def cell_at(self, point: Point) -> Optional[Cell]:
        """The cell whose closed outline contains *point*, if any.

        With valid (non-overlapping) placements at most one cell
        strictly contains a point; boundary points may touch several
        cells only if validation is violated, in which case the first
        in insertion order is returned.
        """
        for cell in self._cells.values():
            if cell.contains_point(point):
                return cell
        return None

    # ------------------------------------------------------------------
    # Router views
    # ------------------------------------------------------------------
    def obstacles(self) -> ObstacleSet:
        """A fresh obstacle view of the cells for ray tracing.

        Each call returns a new set so that routers may add transient
        obstacles (e.g. nets-as-obstacles baselines) without aliasing.
        """
        rects: list[Rect] = []
        for cell in self._cells.values():
            rects.extend(cell.blocking_rects)
        return ObstacleSet(self.outline, rects)

    # ------------------------------------------------------------------
    # Metrics
    # ------------------------------------------------------------------
    @property
    def cell_area(self) -> int:
        """Total placed cell area."""
        return sum(cell.area for cell in self._cells.values())

    @property
    def utilization(self) -> float:
        """Cell area over surface area (placement density)."""
        return self.cell_area / self.outline.area

    def min_cell_separation(self) -> Optional[int]:
        """Smallest pairwise bounding-box separation, or ``None`` if < 2 cells.

        The paper's third placement restriction requires this to be
        positive ("a finite and non-zero distance apart").
        """
        boxes = [cell.bounding_box for cell in self._cells.values()]
        if len(boxes) < 2:
            return None
        return min(
            boxes[i].separation(boxes[j])
            for i in range(len(boxes))
            for j in range(i + 1, len(boxes))
        )

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Layout({self.outline}, {len(self._cells)} cells, "
            f"{len(self._nets)} nets, util={self.utilization:.2f})"
        )
