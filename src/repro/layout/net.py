"""Nets: sets of terminals to be electrically connected.

"Both multi-pin terminals and multi-terminal nets are accommodated."
A two-terminal net is the base routing case; nets with more terminals
are routed as approximate Steiner trees (Extensions section).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from repro.errors import LayoutError
from repro.geometry.point import Point
from repro.geometry.rect import Rect, bounding_rect
from repro.layout.terminal import Terminal


@dataclass(frozen=True)
class Net:
    """A net over two or more terminals."""

    name: str
    terminals: tuple[Terminal, ...]

    def __init__(self, name: str, terminals: Iterable[Terminal]):
        terms = tuple(terminals)
        if not name:
            raise LayoutError("net name must be non-empty")
        if len(terms) < 2:
            raise LayoutError(f"net {name!r} needs >= 2 terminals, got {len(terms)}")
        names = [t.name for t in terms]
        if len(set(names)) != len(names):
            raise LayoutError(f"net {name!r} has duplicate terminal names")
        object.__setattr__(self, "name", name)
        object.__setattr__(self, "terminals", terms)

    @property
    def is_two_terminal(self) -> bool:
        """True for the simple point-to-point case."""
        return len(self.terminals) == 2

    @property
    def pin_count(self) -> int:
        """Total physical pins across all terminals."""
        return sum(len(t.pins) for t in self.terminals)

    @property
    def all_pin_locations(self) -> tuple[Point, ...]:
        """Locations of every pin of every terminal."""
        return tuple(p.location for t in self.terminals for p in t.pins)

    @property
    def bounding_box(self) -> Rect:
        """Bounding rect over all pin locations."""
        return bounding_rect(self.all_pin_locations)

    @property
    def hpwl(self) -> int:
        """Half-perimeter wirelength lower bound over all pins.

        The classical optimistic estimate; useful as a normalizer when
        reporting routed wirelength quality.
        """
        return self.bounding_box.half_perimeter

    def terminal(self, name: str) -> Terminal:
        """Look up a terminal by name.

        Raises :class:`LayoutError` when absent.
        """
        for term in self.terminals:
            if term.name == name:
                return term
        raise LayoutError(f"net {self.name!r} has no terminal {name!r}")

    @staticmethod
    def two_point(name: str, a: Point, b: Point) -> "Net":
        """Convenience constructor for a plain two-point net."""
        return Net(name, [Terminal.single(f"{name}.s", a), Terminal.single(f"{name}.d", b)])

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"Net({self.name!r}, {len(self.terminals)} terminals)"
