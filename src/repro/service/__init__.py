"""repro.service — routing as a service.

The long-lived serving surface over the
``RouteRequest → RoutingPipeline → RouteResult`` API:

* :class:`~repro.service.jobs.RoutingService` — the HTTP-independent
  core: an async job queue with a bounded admission window (429 on
  overload), a thread worker pool built on
  :func:`repro.core.parallel.make_executor`, content-addressed result
  reuse, and coalescing of concurrent identical requests.
* :class:`~repro.service.cache.ResultCache` — LRU over canonical
  request keys (:func:`repro.api.canonical.request_cache_key`).
* :class:`~repro.service.metrics.ServiceMetrics` — the counters and
  route-latency percentiles behind ``GET /metrics``.
* :func:`~repro.service.server.make_server` /
  :class:`~repro.service.server.RoutingServer` — the stdlib HTTP
  frontend (``POST /route``, ``POST /batch``, ``GET /jobs/<id>``,
  ``GET /healthz``, ``GET /metrics``).
* :class:`~repro.service.client.Client` — the thin stdlib HTTP client
  used by tests, CI, and scripts.

``python -m repro serve`` wires this into the CLI; see
``docs/service.md`` for the endpoint reference, the job lifecycle, and
the cache-key definition.
"""

from repro.service.cache import ResultCache
from repro.service.client import Client
from repro.service.jobs import JOB_STATES, Job, RoutingService
from repro.service.metrics import ServiceMetrics
from repro.service.server import RoutingServer, make_server

__all__ = [
    "Client",
    "JOB_STATES",
    "Job",
    "ResultCache",
    "RoutingServer",
    "RoutingService",
    "ServiceMetrics",
    "make_server",
]
