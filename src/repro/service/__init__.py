"""repro.service — routing as a service.

The long-lived serving surface over the
``RouteRequest → RoutingPipeline → RouteResult`` API:

* :class:`~repro.service.jobs.RoutingService` — the HTTP-independent
  core: an async job queue with a bounded admission window (429 on
  overload), dispatch workers built on
  :func:`repro.core.parallel.make_executor`, content-addressed result
  reuse, and coalescing of concurrent identical requests.
* :mod:`repro.service.store` — pluggable persistence:
  :func:`~repro.service.store.base.make_store` builds the paired
  :class:`~repro.service.store.base.ResultStore` (content-addressed
  results) + :class:`~repro.service.store.base.JobStore`
  (crash-recovery log) from ``"memory"`` or ``"sqlite:PATH"``.
* :class:`~repro.service.workers.ProcessTier` — the
  ``--executor process`` worker tier: routing runs in a crash-tolerant
  process pool instead of on the GIL-bound dispatch threads.
* :class:`~repro.service.cache.ResultCache` — the in-memory LRU
  result store under its historical name.
* :class:`~repro.service.metrics.ServiceMetrics` — the counters and
  route-latency percentiles behind ``GET /metrics``.
* :func:`~repro.service.server.make_server` /
  :class:`~repro.service.server.RoutingServer` — the stdlib HTTP
  frontend (``POST /route``, ``POST /batch``, ``GET /jobs/<id>``,
  ``GET /healthz``, ``GET /metrics``).
* :class:`~repro.service.client.Client` — the thin stdlib HTTP client
  used by tests, CI, and scripts.

``python -m repro serve`` wires this into the CLI; see
``docs/service.md`` for the endpoint reference, the job lifecycle, the
store backends, and the cache-key definition.
"""

from repro.service.cache import ResultCache
from repro.service.client import Client
from repro.service.jobs import JOB_STATES, Job, RoutingService
from repro.service.metrics import ServiceMetrics
from repro.service.server import RoutingServer, make_server
from repro.service.store import (
    JobRecord,
    JobStore,
    ResultStore,
    Store,
    make_store,
    parse_store_spec,
)
from repro.service.workers import WORKER_TIERS, ProcessTier

__all__ = [
    "Client",
    "JOB_STATES",
    "Job",
    "JobRecord",
    "JobStore",
    "ProcessTier",
    "ResultCache",
    "ResultStore",
    "RoutingServer",
    "RoutingService",
    "ServiceMetrics",
    "Store",
    "WORKER_TIERS",
    "make_server",
    "make_store",
    "parse_store_spec",
]
