"""repro.service.store — pluggable persistence for the routing service.

The :class:`~repro.service.store.base.Store` handle pairs a
content-addressed :class:`~repro.service.store.base.ResultStore` with
a crash-recovery :class:`~repro.service.store.base.JobStore`; two
backends exist — in-memory (``memory``, the default: fast,
shared-nothing, dies with the process) and sqlite (``sqlite:PATH``:
results survive restarts and can be shared across frontends, pending
jobs are re-queued at the next startup).  See ``docs/service.md`` for
the backend matrix and the recovery semantics.
"""

from repro.service.store.base import (
    JOB_KINDS,
    STORE_BACKENDS,
    JobRecord,
    JobStore,
    ResultStore,
    Store,
    make_store,
    parse_store_spec,
)
from repro.service.store.memory import MemoryJobStore, MemoryResultStore
from repro.service.store.sqlite import (
    SqliteJobStore,
    SqliteResultStore,
    open_sqlite_store,
)

__all__ = [
    "JOB_KINDS",
    "JobRecord",
    "JobStore",
    "MemoryJobStore",
    "MemoryResultStore",
    "ResultStore",
    "STORE_BACKENDS",
    "SqliteJobStore",
    "SqliteResultStore",
    "Store",
    "make_store",
    "open_sqlite_store",
    "parse_store_spec",
]
