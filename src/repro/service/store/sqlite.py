"""sqlite-backed store: results and jobs that survive the process.

One database file (``--store sqlite:PATH``) holds two tables:

``results``
    The content-addressed cache — canonical request key, the
    serialized :class:`~repro.api.result.RouteResult` JSON, and an
    LRU stamp.  Because keys are content hashes, rows written by one
    frontend are safe for any other to serve, so several service
    processes may point at the same file and share one cache.

``jobs``
    The durability log — every accepted-but-unfinished job's
    resubmission spec.  Rows are written at admission, updated on the
    ``queued → running`` transition, and deleted at terminal states;
    whatever survives a crash is exactly the work still owed, and the
    next startup re-queues it.  Unlike ``results``, this table assumes
    **one live frontend per file**: a second process recovering the
    rows would steal jobs a healthy first process still owns (share a
    results file across frontends; give each its own job file, or
    accept the single-frontend restart semantics).

Concurrency/durability choices: WAL journal mode (readers never block
the writer, and a SIGKILL mid-transaction loses at most the un-synced
tail, never table integrity), ``synchronous=NORMAL``, a 5 s busy
timeout for the multi-frontend case, and one connection guarded by an
in-process lock (the service calls in from multiple worker threads).
Results serialize through ``RouteResult.to_dict``/``from_dict`` — the
same wire round-trip the HTTP surface uses, so a result served from
sqlite is byte-identical (as JSON) to one served from memory.
"""

from __future__ import annotations

import json
import sqlite3
import threading
from typing import TYPE_CHECKING, Optional

from repro.errors import RoutingError, ServiceError
from repro.service.store.base import JobRecord, JobStore, ResultStore, Store

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.api.result import RouteResult

_SCHEMA = """
CREATE TABLE IF NOT EXISTS results (
    key         TEXT PRIMARY KEY,
    body        TEXT NOT NULL,
    created_at  REAL NOT NULL,
    last_used   INTEGER NOT NULL
);
CREATE INDEX IF NOT EXISTS results_lru ON results(last_used);
CREATE TABLE IF NOT EXISTS jobs (
    id           TEXT PRIMARY KEY,
    key          TEXT NOT NULL,
    state        TEXT NOT NULL,
    kind         TEXT NOT NULL,
    spec         TEXT NOT NULL,
    submitted_at REAL NOT NULL,
    error        TEXT
);
"""


class _SqliteBackend:
    """One connection + lock shared by the result and job stores."""

    def __init__(self, path: str):
        self.path = path
        try:
            self._conn: Optional[sqlite3.Connection] = sqlite3.connect(
                path, check_same_thread=False
            )
        except sqlite3.Error as exc:
            raise RoutingError(f"cannot open sqlite store {path!r}: {exc}") from exc
        self._lock = threading.RLock()
        with self._lock:
            self._conn.execute("PRAGMA journal_mode=WAL")
            self._conn.execute("PRAGMA synchronous=NORMAL")
            self._conn.execute("PRAGMA busy_timeout=5000")
            self._conn.executescript(_SCHEMA)
            self._conn.commit()

    def execute(self, sql: str, params: tuple = (), *, commit: bool = False):
        with self._lock:
            if self._conn is None:
                raise ServiceError(f"sqlite store {self.path!r} is closed")
            cursor = self._conn.execute(sql, params)
            if commit:
                self._conn.commit()
            return cursor.fetchall()

    def close(self) -> None:
        with self._lock:
            if self._conn is not None:
                self._conn.commit()
                self._conn.close()
                self._conn = None


class SqliteResultStore(ResultStore):
    """LRU result cache over a sqlite table (durable, shareable).

    The LRU stamp is a monotonically increasing integer drawn from a
    per-table counter rather than a wall-clock time, so recency is a
    total order even when many puts land in one clock tick (and across
    frontends sharing the file).
    """

    backend = "sqlite"

    def __init__(self, db: _SqliteBackend, *, max_entries: int = 256):
        if max_entries < 0:
            raise RoutingError(f"cache max_entries must be >= 0, got {max_entries}")
        self._db = db
        self.max_entries = max_entries
        self._lock = threading.Lock()
        self._hits = 0
        self._misses = 0
        self._evictions = 0

    def _touch(self, key: str) -> None:
        self._db.execute(
            "UPDATE results SET last_used ="
            " (SELECT COALESCE(MAX(last_used), 0) + 1 FROM results)"
            " WHERE key = ?",
            (key,),
            commit=True,
        )

    def get(self, key: str) -> Optional["RouteResult"]:
        from repro.api.result import RouteResult

        rows = self._db.execute("SELECT body FROM results WHERE key = ?", (key,))
        if not rows:
            with self._lock:
                self._misses += 1
            return None
        self._touch(key)
        with self._lock:
            self._hits += 1
        return RouteResult.from_dict(json.loads(rows[0][0]))

    def put(self, key: str, result: "RouteResult") -> None:
        if self.max_entries == 0:
            return
        import time

        body = json.dumps(result.to_dict(), separators=(",", ":"))
        self._db.execute(
            "INSERT OR REPLACE INTO results (key, body, created_at, last_used)"
            " VALUES (?, ?, ?,"
            " (SELECT COALESCE(MAX(last_used), 0) + 1 FROM results))",
            (key, body, time.time()),
            commit=True,
        )
        excess = len(self) - self.max_entries
        if excess > 0:
            self._db.execute(
                "DELETE FROM results WHERE key IN"
                " (SELECT key FROM results ORDER BY last_used ASC LIMIT ?)",
                (excess,),
                commit=True,
            )
            with self._lock:
                self._evictions += excess

    def clear(self) -> None:
        self._db.execute("DELETE FROM results", commit=True)

    def __len__(self) -> int:
        return self._db.execute("SELECT COUNT(*) FROM results")[0][0]

    def __contains__(self, key: str) -> bool:
        return bool(
            self._db.execute("SELECT 1 FROM results WHERE key = ?", (key,))
        )

    def stats(self) -> dict:
        with self._lock:
            hits, misses, evictions = self._hits, self._misses, self._evictions
        return {
            "backend": self.backend,
            "entries": len(self),
            "max_entries": self.max_entries,
            "hits": hits,
            "misses": misses,
            "evictions": evictions,
        }

    def close(self) -> None:
        self._db.close()


class SqliteJobStore(JobStore):
    """The crash-recovery log (see the module docstring's caveats)."""

    backend = "sqlite"

    def __init__(self, db: _SqliteBackend):
        self._db = db

    def record(self, record: JobRecord) -> None:
        self._db.execute(
            "INSERT OR REPLACE INTO jobs"
            " (id, key, state, kind, spec, submitted_at, error)"
            " VALUES (?, ?, ?, ?, ?, ?, NULL)",
            (
                record.id, record.key, record.state, record.kind,
                json.dumps(record.spec, separators=(",", ":")),
                record.submitted_at,
            ),
            commit=True,
        )

    def update(self, job_id: str, state: str, *, error: Optional[str] = None) -> None:
        self._db.execute(
            "UPDATE jobs SET state = ?, error = ? WHERE id = ?",
            (state, error, job_id),
            commit=True,
        )

    def delete(self, job_id: str) -> None:
        self._db.execute("DELETE FROM jobs WHERE id = ?", (job_id,), commit=True)

    def load_pending(self) -> list[JobRecord]:
        rows = self._db.execute(
            "SELECT id, key, state, kind, spec, submitted_at FROM jobs"
            " ORDER BY submitted_at ASC, id ASC"
        )
        return [
            JobRecord(
                id=job_id, key=key, state=state, kind=kind,
                spec=json.loads(spec), submitted_at=submitted_at,
            )
            for job_id, key, state, kind, spec, submitted_at in rows
        ]

    def close(self) -> None:
        self._db.close()


def open_sqlite_store(
    path: str, *, cache_size: int = 256, spec: str = ""
) -> Store:
    """Open (creating if needed) the sqlite store at *path*."""
    db = _SqliteBackend(path)
    return Store(
        results=SqliteResultStore(db, max_entries=cache_size),
        jobs=SqliteJobStore(db),
        backend="sqlite",
        spec=spec or f"sqlite:{path}",
    )
