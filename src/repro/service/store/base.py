"""The pluggable persistence interfaces behind the routing service.

Two small contracts split the service's durable state:

:class:`ResultStore`
    The content-addressed result cache — canonical request keys
    (:func:`repro.api.canonical.request_cache_key`) mapped to
    :class:`~repro.api.result.RouteResult` objects, with LRU bounds
    and hit/miss/eviction accounting.  A key covers everything that
    influences the result, so a hit is always safe to serve verbatim;
    there is no TTL and no invalidation beyond eviction.

:class:`JobStore`
    The durability log for accepted-but-unfinished work.  Each
    admitted job writes a :class:`JobRecord` carrying a self-contained
    resubmission *spec* (the request document with the layout inlined);
    state transitions update the row and terminal jobs delete it, so
    whatever :meth:`JobStore.load_pending` returns at startup is
    exactly the work a dead process still owed its clients.
    :meth:`RoutingService.__init__ <repro.service.jobs.RoutingService>`
    re-queues those records under their original job ids.

Backends pair the two behind one :class:`Store` handle:

==========================  ===========================  ==================
spec                        results                      jobs
==========================  ===========================  ==================
``memory`` (default)        in-process LRU               in-process table
                            (dies with the process)      (dies with it too)
``sqlite:PATH``             sqlite file, shareable       sqlite file —
                            across frontends             restart recovery
==========================  ===========================  ==================

:func:`make_store` turns a spec string into a wired :class:`Store`;
the service also accepts a pre-built :class:`Store` for tests and
embedders that compose their own backends.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Optional

from repro.errors import RoutingError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.api.result import RouteResult

#: Store spec prefixes understood by :func:`make_store`.
STORE_BACKENDS = ("memory", "sqlite")

#: Job-store record kinds (which submission path replays the spec).
JOB_KINDS = ("route", "reroute")


@dataclass(frozen=True)
class JobRecord:
    """One persisted job: everything needed to resubmit it.

    ``spec`` is a JSON-ready document — ``{"kind": "route", "request":
    <RouteRequest dict with the layout inlined>}`` or the ``reroute``
    analogue — so recovery never depends on layout files still being
    where they were.
    """

    id: str
    key: str
    state: str
    kind: str
    spec: dict
    submitted_at: float


class ResultStore(abc.ABC):
    """Content-addressed ``RouteResult`` storage with LRU bounds."""

    #: Backend name surfaced in ``/metrics`` (``"memory"``/``"sqlite"``).
    backend: str = "abstract"

    @abc.abstractmethod
    def get(self, key: str) -> Optional["RouteResult"]:
        """The cached result for *key*, or ``None`` (counts hit/miss)."""

    @abc.abstractmethod
    def put(self, key: str, result: "RouteResult") -> None:
        """Store *result* under *key*, evicting beyond the bound."""

    @abc.abstractmethod
    def clear(self) -> None:
        """Drop every entry (counters are kept)."""

    @abc.abstractmethod
    def __len__(self) -> int:
        """Entries currently stored."""

    @abc.abstractmethod
    def __contains__(self, key: str) -> bool:
        """Whether *key* is stored (does not count as a hit/miss)."""

    @abc.abstractmethod
    def stats(self) -> dict[str, Any]:
        """``/metrics`` counters: entries, max_entries, hits, misses,
        evictions, backend."""

    def close(self) -> None:
        """Release backend resources (no-op for in-memory stores)."""


class JobStore(abc.ABC):
    """Durability log for admitted-but-unfinished jobs."""

    backend: str = "abstract"

    @abc.abstractmethod
    def record(self, record: JobRecord) -> None:
        """Persist (or overwrite) one job row."""

    @abc.abstractmethod
    def update(self, job_id: str, state: str, *, error: Optional[str] = None) -> None:
        """Update a row's state in place (unknown ids are a no-op)."""

    @abc.abstractmethod
    def delete(self, job_id: str) -> None:
        """Drop a row — the job reached a terminal state."""

    @abc.abstractmethod
    def load_pending(self) -> list[JobRecord]:
        """Every persisted row, oldest submission first.

        Anything returned here was accepted by a previous process and
        never finished; the service re-queues each record at startup.
        """

    def close(self) -> None:
        """Release backend resources (no-op for in-memory stores)."""


@dataclass
class Store:
    """A wired pair of backends plus the spec that named them."""

    results: ResultStore
    jobs: JobStore
    backend: str
    #: The spec string this store was built from (diagnostics only).
    spec: str = field(default="")

    def close(self) -> None:
        """Close both backends (idempotent)."""
        self.results.close()
        self.jobs.close()


def parse_store_spec(spec: str) -> tuple[str, Optional[str]]:
    """Split a ``--store`` spec into ``(backend, path)``.

    ``"memory"`` → ``("memory", None)``; ``"sqlite:PATH"`` →
    ``("sqlite", PATH)``.  Anything else raises
    :class:`~repro.errors.RoutingError` naming the valid forms.
    """
    if spec == "memory":
        return "memory", None
    backend, sep, path = spec.partition(":")
    if backend == "sqlite" and sep and path:
        return "sqlite", path
    raise RoutingError(
        f"unknown store spec {spec!r}: expected 'memory' or 'sqlite:PATH'"
    )


def make_store(spec: str = "memory", *, cache_size: int = 256) -> Store:
    """Build the :class:`Store` a spec string names.

    *cache_size* bounds the result store (0 disables result reuse,
    exactly like ``repro serve --cache-size 0``); the job store is
    never bounded — it only ever holds in-flight work.
    """
    backend, path = parse_store_spec(spec)
    if backend == "memory":
        from repro.service.store.memory import MemoryJobStore, MemoryResultStore

        return Store(
            results=MemoryResultStore(max_entries=cache_size),
            jobs=MemoryJobStore(),
            backend="memory",
            spec=spec,
        )
    from repro.service.store.sqlite import open_sqlite_store

    return open_sqlite_store(path, cache_size=cache_size, spec=spec)
