"""In-process store backends — fast, shared-nothing, non-durable.

:class:`MemoryResultStore` is the LRU result cache the service has
always had (PR 5's ``ResultCache``), refactored behind the
:class:`~repro.service.store.base.ResultStore` interface and extended
with an eviction counter.  Cached results are shared objects: every
job that hits a key hands out the same
:class:`~repro.api.result.RouteResult` instance, so holders must treat
results as read-only (HTTP callers only ever see the serialized form).

:class:`MemoryJobStore` keeps the same bookkeeping shape as the
durable backends so the service's persistence hooks are unconditional,
but its rows die with the process — :meth:`load_pending` on a fresh
instance is empty, which is exactly the (non-)recovery semantics of an
in-memory deployment.  Tests pre-populate one to exercise the recovery
path deterministically.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import TYPE_CHECKING, Optional

from repro.errors import RoutingError
from repro.service.store.base import JobRecord, JobStore, ResultStore

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.api.result import RouteResult


class MemoryResultStore(ResultStore):
    """A thread-safe LRU over canonical request keys.

    Parameters
    ----------
    max_entries:
        Results retained before least-recently-used eviction; ``0``
        disables caching entirely (every lookup misses, nothing is
        stored) — the knob behind ``repro serve --cache-size 0``.
    """

    backend = "memory"

    def __init__(self, max_entries: int = 256):
        if max_entries < 0:
            raise RoutingError(f"cache max_entries must be >= 0, got {max_entries}")
        self.max_entries = max_entries
        self._entries: "OrderedDict[str, RouteResult]" = OrderedDict()
        self._lock = threading.Lock()
        self._hits = 0
        self._misses = 0
        self._evictions = 0

    def get(self, key: str) -> Optional["RouteResult"]:
        """The cached result for *key*, or ``None`` (counts hit/miss)."""
        with self._lock:
            result = self._entries.get(key)
            if result is None:
                self._misses += 1
                return None
            self._entries.move_to_end(key)
            self._hits += 1
            return result

    def put(self, key: str, result: "RouteResult") -> None:
        """Store *result* under *key*, evicting the LRU tail if needed."""
        if self.max_entries == 0:
            return
        with self._lock:
            self._entries[key] = result
            self._entries.move_to_end(key)
            while len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)
                self._evictions += 1

    def clear(self) -> None:
        """Drop every entry (counters are kept)."""
        with self._lock:
            self._entries.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: str) -> bool:
        with self._lock:
            return key in self._entries

    def stats(self) -> dict:
        """Hit/miss/size counters for the ``/metrics`` snapshot."""
        with self._lock:
            return {
                "backend": self.backend,
                "entries": len(self._entries),
                "max_entries": self.max_entries,
                "hits": self._hits,
                "misses": self._misses,
                "evictions": self._evictions,
            }


class MemoryJobStore(JobStore):
    """Job bookkeeping that dies with the process (no recovery)."""

    backend = "memory"

    def __init__(self):
        self._rows: dict[str, JobRecord] = {}
        self._lock = threading.Lock()

    def record(self, record: JobRecord) -> None:
        with self._lock:
            self._rows[record.id] = record

    def update(self, job_id: str, state: str, *, error: Optional[str] = None) -> None:
        with self._lock:
            row = self._rows.get(job_id)
            if row is not None:
                self._rows[job_id] = JobRecord(
                    id=row.id, key=row.key, state=state, kind=row.kind,
                    spec=row.spec, submitted_at=row.submitted_at,
                )

    def delete(self, job_id: str) -> None:
        with self._lock:
            self._rows.pop(job_id, None)

    def load_pending(self) -> list[JobRecord]:
        with self._lock:
            return sorted(self._rows.values(), key=lambda r: (r.submitted_at, r.id))
