"""Thin stdlib HTTP client for the routing service.

:class:`Client` wraps the six endpoints in plain-Python calls so
tests, CI smoke jobs, and scripts never hand-roll HTTP.  It speaks
dicts at the transport boundary (what the wire carries) and converts
to rich objects only where it is unambiguous —
:meth:`Client.route` returns a parsed
:class:`~repro.api.result.RouteResult`, everything else returns the
JSON documents documented in :mod:`repro.service.server`.

HTTP failures surface as :class:`~repro.errors.ServiceError` with
``status`` set; a 429 specifically raises
:class:`~repro.errors.QueueFullError` so backoff loops can catch the
one case that is retryable by design.  The client absorbs the common
case itself: a 429'd submission is retried up to ``retry_429`` times,
sleeping whatever the server's ``Retry-After`` header asks (capped by
``retry_after_cap``) — safe because a 429 by contract left no job
behind.  Only when the bounded attempts are exhausted does
:class:`QueueFullError` reach the caller, exactly as before.
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request
from typing import Any, Optional, Sequence, Union

from repro.errors import QueueFullError, ServiceError
from repro.api.request import RouteRequest
from repro.api.rerouting import RerouteRequest
from repro.api.result import RouteResult

#: Accepted request shapes: a built object or an already-encoded dict.
RequestLike = Union[RouteRequest, dict]

#: Accepted reroute shapes, analogously.
RerouteLike = Union[RerouteRequest, dict]


def _encode_request(request: RequestLike) -> dict:
    if isinstance(request, RouteRequest):
        return request.to_dict()
    if isinstance(request, dict):
        return request
    raise ServiceError(
        f"expected a RouteRequest or request dict, got {type(request).__name__}"
    )


def _encode_reroute(request: RerouteLike) -> dict:
    if isinstance(request, RerouteRequest):
        return request.to_dict()
    if isinstance(request, dict):
        return request
    raise ServiceError(
        f"expected a RerouteRequest or reroute dict, got {type(request).__name__}"
    )


class Client:
    """Talks to one service instance at *base_url*.

    Parameters
    ----------
    base_url:
        e.g. ``"http://127.0.0.1:8080"`` (trailing slash tolerated).
    timeout:
        Per-HTTP-call socket timeout in seconds.  Calls that block
        server-side (``wait=True``) get ``timeout`` added on top of
        the requested wait budget.
    retry_429:
        Times an admission-window 429 is retried before
        :class:`QueueFullError` propagates (0 disables — every 429
        raises immediately, the pre-retry behavior).
    retry_after_cap:
        Upper bound in seconds on how long one ``Retry-After`` sleep
        may last, whatever the server asks for.
    """

    def __init__(
        self,
        base_url: str,
        *,
        timeout: float = 30.0,
        retry_429: int = 2,
        retry_after_cap: float = 5.0,
    ):
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout
        self.retry_429 = retry_429
        self.retry_after_cap = retry_after_cap

    # ------------------------------------------------------------------
    # Transport
    # ------------------------------------------------------------------
    def _call(
        self,
        method: str,
        path: str,
        *,
        body: Optional[dict | list] = None,
        timeout: Optional[float] = None,
    ) -> Any:
        data = None if body is None else json.dumps(body).encode("utf-8")
        for attempt in range(self.retry_429 + 1):
            request = urllib.request.Request(
                self.base_url + path,
                data=data,
                method=method,
                headers={"Content-Type": "application/json"} if data else {},
            )
            try:
                with urllib.request.urlopen(
                    request, timeout=self.timeout if timeout is None else timeout
                ) as response:
                    return json.loads(response.read().decode("utf-8"))
            except urllib.error.HTTPError as exc:
                detail = exc.read().decode("utf-8", errors="replace")
                try:
                    message = json.loads(detail).get("error", detail)
                except json.JSONDecodeError:
                    message = detail or exc.reason
                if exc.code == 429:
                    # A 429 is pre-admission by contract: no job was
                    # created, so resending the identical body is safe.
                    if attempt < self.retry_429:
                        time.sleep(self._retry_after_seconds(exc))
                        continue
                    raise QueueFullError(message) from exc
                raise ServiceError(message, status=exc.code) from exc
            except urllib.error.URLError as exc:
                raise ServiceError(
                    f"service unreachable at {self.base_url}: {exc.reason}"
                ) from exc
        raise AssertionError("unreachable")  # pragma: no cover

    def _retry_after_seconds(self, exc: urllib.error.HTTPError) -> float:
        """The server's ``Retry-After`` ask, clamped to the cap."""
        header = exc.headers.get("Retry-After") if exc.headers else None
        try:
            asked = float(header) if header is not None else 1.0
        except ValueError:
            asked = 1.0
        return max(0.0, min(asked, self.retry_after_cap))

    # ------------------------------------------------------------------
    # Endpoints
    # ------------------------------------------------------------------
    def healthz(self) -> dict:
        """``GET /healthz``."""
        return self._call("GET", "/healthz")

    def metrics(self) -> dict:
        """``GET /metrics`` — the counter snapshot."""
        return self._call("GET", "/metrics")

    def strategies(self) -> dict:
        """``GET /strategies`` — registered strategies + params schemas."""
        return self._call("GET", "/strategies")["strategies"]

    def submit(self, request: RequestLike, *, wait: bool = False,
               wait_timeout: float = 120.0) -> dict:
        """``POST /route`` — returns the job document.

        With ``wait=True`` the server long-polls: it blocks up to
        ``wait_timeout`` seconds (capped by the server's own limit)
        and returns the job in whatever state it reached — terminal
        with the result embedded, or still pending if the budget
        elapsed first.  The HTTP socket timeout is widened by the same
        budget so the server always answers before the socket gives up.
        """
        path = f"/route?wait=1&timeout={wait_timeout:g}" if wait else "/route"
        timeout = self.timeout + wait_timeout if wait else None
        return self._call("POST", path, body=_encode_request(request), timeout=timeout)

    def submit_reroute(self, request: RerouteLike, *, wait: bool = False,
                       wait_timeout: float = 120.0) -> dict:
        """``POST /reroute`` — returns the job document.

        Same long-poll semantics as :meth:`submit`.  The job's
        ``incremental`` field reports whether the server warm-started
        from its cached base result (``True``) or fell back to routing
        the mutated layout from scratch (``False``).
        """
        path = f"/reroute?wait=1&timeout={wait_timeout:g}" if wait else "/reroute"
        timeout = self.timeout + wait_timeout if wait else None
        return self._call("POST", path, body=_encode_reroute(request), timeout=timeout)

    def submit_batch(self, requests: Sequence[RequestLike]) -> list[dict]:
        """``POST /batch`` — atomic admission; returns the job stubs."""
        body = {"requests": [_encode_request(r) for r in requests]}
        return self._call("POST", "/batch", body=body)["jobs"]

    def job(self, job_id: str) -> dict:
        """``GET /jobs/<id>`` — 404s raise ``ServiceError(status=404)``."""
        return self._call("GET", f"/jobs/{job_id}")

    def wait(
        self,
        job_id: str,
        *,
        timeout: float = 120.0,
        poll: float = 0.05,
        poll_max: float = 1.0,
    ) -> dict:
        """Poll ``GET /jobs/<id>`` until the job is terminal.

        The poll interval starts at *poll* and doubles each round up
        to *poll_max* — snappy for sub-second jobs, gentle on the
        server for long ones (N waiting clients settle at ~N/poll_max
        requests per second instead of hammering at the floor rate).
        Raises :class:`ServiceError` (status 504) if *timeout* elapses
        first; unknown ids propagate their 404 immediately.
        """
        deadline = time.monotonic() + timeout
        interval = poll
        while True:
            document = self.job(job_id)
            if document["state"] in ("done", "failed"):
                return document
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                raise ServiceError(
                    f"job {job_id} still {document['state']} after {timeout:.1f}s",
                    status=504,
                )
            time.sleep(min(interval, remaining))
            interval = min(interval * 2, poll_max)

    # ------------------------------------------------------------------
    # Conveniences
    # ------------------------------------------------------------------
    def route(self, request: RequestLike, *, wait_timeout: float = 120.0) -> RouteResult:
        """Submit, wait, and parse: the one-call happy path.

        Returns the parsed :class:`RouteResult`.  A failed job raises
        :class:`ServiceError` carrying the job's error text; so does a
        job still pending after ``wait_timeout`` (capped by the
        server's own long-poll limit) — with status 504, and the job
        keeps running server-side for later polling.
        """
        job = self.submit(request, wait=True, wait_timeout=wait_timeout)
        return self._finished_result(job, wait_timeout)

    def reroute(self, request: RerouteLike, *, wait_timeout: float = 120.0) -> RouteResult:
        """Submit a reroute, wait, and parse — :meth:`route`'s sibling.

        The server resolves the previous result from its
        content-addressed cache (submit the base request first, to the
        same instance); an evicted base silently degrades to a
        from-scratch run of the mutated layout, so the call always
        returns a usable :class:`RouteResult`.
        """
        job = self.submit_reroute(request, wait=True, wait_timeout=wait_timeout)
        return self._finished_result(job, wait_timeout)

    def _finished_result(self, job: dict, wait_timeout: float) -> RouteResult:
        if job["state"] in ("queued", "running"):
            raise ServiceError(
                f"job {job['id']} still {job['state']} after "
                f"{wait_timeout:.1f}s (poll GET /jobs/{job['id']})",
                status=504,
            )
        if job["state"] != "done":
            raise ServiceError(
                f"job {job['id']} {job['state']}: {job.get('error')}"
            )
        return RouteResult.from_dict(job["result"])
