"""The async job queue behind the routing service.

:class:`RoutingService` is the HTTP-independent core: submissions come
in as :class:`~repro.api.request.RouteRequest` objects and become
:class:`Job` records that move through ``queued → running → done`` (or
``failed``).  Three mechanisms keep a long-lived instance healthy
under concurrent load:

**Admission window.**  At most ``queue_limit`` routing runs may be in
flight (queued + running).  A submission past the window raises
:class:`~repro.errors.QueueFullError` *before* any job exists, so
acceptance is binary: a 429'd request left no trace, and every
accepted job is guaranteed to reach a terminal state — the worker
wrapper catches all routing exceptions into the job's ``failed``
state, and nothing between admission and completion can drop it.

**Result cache.**  Submissions are keyed by
:func:`repro.api.canonical.request_cache_key`; a key already in the
:class:`~repro.service.cache.ResultCache` completes instantly as a
``cache_hit`` job without consuming a window slot.

**Coalescing.**  A submission whose key matches an in-flight job
becomes a *follower*: it gets its own job id (its own lifecycle to
poll) but no second routing run — when the primary finishes, result or
failure fans out to every follower.  Followers do not consume window
slots either; the window bounds actual routing work.

Workers are threads from :func:`repro.core.parallel.make_executor`
(``minimum=1`` — a single-worker service is legitimate).  Threads,
not processes, because the cache, the job table, and any caller-
registered strategies live in this process; per-request *net* fan-out
(``config.workers`` with the process executor) still applies inside a
job, which is where the CPU scaling lives.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Any, Callable, Optional, Sequence

from repro.errors import QueueFullError, RoutingError, ServiceError
from repro.core.parallel import make_executor
from repro.incremental.delta import apply_delta
from repro.api.canonical import request_cache_key
from repro.api.pipeline import RoutingPipeline
from repro.api.registry import StrategyRegistry
from repro.api.request import RouteRequest
from repro.api.rerouting import RerouteRequest, reroute_cache_key
from repro.api.result import RouteResult
from repro.layout.layout import Layout
from repro.service.cache import ResultCache
from repro.service.metrics import ServiceMetrics

#: Every state a job can be observed in, in lifecycle order.
JOB_STATES = ("queued", "running", "done", "failed")

#: Terminal states — a job here never changes again.
TERMINAL_STATES = ("done", "failed")

#: Finished jobs retained for ``GET /jobs/<id>`` before pruning.
DEFAULT_JOB_HISTORY = 1024


@dataclass
class Job:
    """One submission's lifecycle record.

    ``cache_hit`` jobs are born terminal; ``coalesced`` jobs follow an
    identical in-flight primary and finish when it does.  All mutation
    happens under the owning service's lock — readers outside the
    service should go through :meth:`RoutingService.describe`.
    """

    id: str
    key: str
    state: str = "queued"
    cache_hit: bool = False
    coalesced: bool = False
    #: ``None`` for plain route jobs; for ``/reroute`` submissions,
    #: whether the base result was cached and the run warm-started
    #: (``True``) or fell back to routing the mutated layout from
    #: scratch (``False``).
    incremental: Optional[bool] = None
    submitted_at: float = 0.0
    started_at: Optional[float] = None
    finished_at: Optional[float] = None
    result: Optional[RouteResult] = None
    error: Optional[str] = None
    _done: threading.Event = field(
        default_factory=threading.Event, repr=False, compare=False
    )

    @property
    def finished(self) -> bool:
        """Whether the job reached a terminal state."""
        return self.state in TERMINAL_STATES

    def timings(self) -> dict[str, Optional[float]]:
        """Queued/route/total wall seconds (``None`` while pending)."""
        queued = (
            None
            if self.started_at is None
            else self.started_at - self.submitted_at
        )
        route = (
            None
            if self.started_at is None or self.finished_at is None
            else self.finished_at - self.started_at
        )
        total = (
            None
            if self.finished_at is None
            else self.finished_at - self.submitted_at
        )
        return {"queued": queued, "route": route, "total": total}

    def as_dict(self, *, include_result: bool = True) -> dict[str, Any]:
        """JSON-ready view (the shape ``GET /jobs/<id>`` serves)."""
        data: dict[str, Any] = {
            "id": self.id,
            "key": self.key,
            "state": self.state,
            "cache_hit": self.cache_hit,
            "coalesced": self.coalesced,
            "incremental": self.incremental,
            "submitted_at": self.submitted_at,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
            "timings": self.timings(),
            "error": self.error,
        }
        if include_result and self.state == "done" and self.result is not None:
            data["result"] = self.result.to_dict()
        return data


@dataclass
class _Inflight:
    """One key's in-flight routing run: the primary plus its followers."""

    primary: Job
    followers: list[Job] = field(default_factory=list)


class RoutingService:
    """Admission-controlled, cached, coalescing executor of requests.

    Parameters
    ----------
    workers:
        Concurrent routing runs (thread pool size), >= 1.
    queue_limit:
        Admission window: maximum queued + running routing runs; a
        submission past it raises :class:`QueueFullError` (HTTP 429).
    cache_size:
        :class:`ResultCache` capacity (0 disables result reuse).
    registry:
        Strategy registry for the pipeline (defaults to the built-ins).
    job_history:
        Terminal jobs retained for polling before the oldest are
        pruned; in-flight jobs are never pruned.
    """

    def __init__(
        self,
        *,
        workers: int = 2,
        queue_limit: int = 32,
        cache_size: int = 256,
        registry: Optional[StrategyRegistry] = None,
        job_history: int = DEFAULT_JOB_HISTORY,
    ):
        if queue_limit < 1:
            raise RoutingError(f"queue_limit must be >= 1, got {queue_limit}")
        if job_history < 1:
            raise RoutingError(f"job_history must be >= 1, got {job_history}")
        self.workers = workers
        self.queue_limit = queue_limit
        self.job_history = job_history
        self.metrics = ServiceMetrics()
        self.cache = ResultCache(max_entries=cache_size)
        self._pipeline = RoutingPipeline(registry)
        self._pool = make_executor(workers, "thread", minimum=1)
        self._lock = threading.Lock()
        self._jobs: "OrderedDict[str, Job]" = OrderedDict()
        self._inflight: dict[str, _Inflight] = {}
        self._pending = 0  # queued + running primaries (window occupancy)
        self._running = 0
        self._next_id = 0
        self._started_at = time.time()
        self._closed = False

    # ------------------------------------------------------------------
    # Submission
    # ------------------------------------------------------------------
    def submit(self, request: RouteRequest) -> Job:
        """Admit one request; returns its (possibly already-done) job.

        Raises :class:`~repro.errors.RoutingError` for malformed
        requests (unresolvable layout, non-canonicalizable params) and
        :class:`QueueFullError` when the admission window is full.
        """
        layout, key = self._prepare(request)
        with self._lock:
            self.metrics.record_request()
            return self._admit_locked(key, work=self._route_work(request, layout))

    def submit_reroute(self, request: RerouteRequest) -> Job:
        """Admit one incremental reroute; returns its job.

        The base result is resolved from the content-addressed cache
        *at admission time*: when present, the run warm-starts from it
        through :meth:`RoutingPipeline.reroute` (``job.incremental``
        is ``True``); when absent — evicted, or never routed here —
        the service falls back to routing the mutated layout from
        scratch (``incremental=False``), so a reroute submission
        always yields a usable result.  Either way the result is
        cached under :func:`~repro.api.rerouting.reroute_cache_key`,
        which is disjoint from the from-scratch key namespace: a
        warm-started result is never served for a plain ``/route`` of
        the mutated layout, or vice versa.
        """
        base_layout, mutated_layout, base_key, key = self._prepare_reroute(request)
        with self._lock:
            self.metrics.record_request()
            prev = self.cache.get(base_key)
            if prev is not None:
                work = self._reroute_work(request, base_layout, prev)
            else:
                work = self._route_work(
                    request.base.with_layout(mutated_layout), mutated_layout
                )
            self.metrics.record_reroute(incremental=prev is not None)
            return self._admit_locked(key, work=work, incremental=prev is not None)

    def submit_many(self, requests: Sequence[RouteRequest]) -> list[Job]:
        """Admit a batch atomically: all jobs are created, or none.

        The whole batch is hashed first (any malformed request fails
        the batch before admission), then admitted under one lock so
        the window check covers the batch's *new* routing runs as a
        unit — duplicates within the batch coalesce onto the first
        occurrence and cached keys cost no slots, exactly as they
        would submitted one at a time.
        """
        prepared = [self._prepare(r) for r in requests]
        with self._lock:
            for _ in prepared:
                self.metrics.record_request()
            new_keys = {
                key
                for _, key in prepared
                if key not in self._inflight and key not in self.cache
            }
            if self._pending + len(new_keys) > self.queue_limit:
                self.metrics.record_rejected()
                raise QueueFullError(
                    f"admission window full: {self._pending} in flight + "
                    f"{len(new_keys)} new > limit {self.queue_limit}"
                )
            return [
                self._admit_locked(key, work=self._route_work(request, layout))
                for (request, (layout, key)) in zip(requests, prepared)
            ]

    def _prepare(self, request: RouteRequest) -> tuple[Layout, str]:
        """Resolve and hash outside the lock (both can be slow).

        I/O failures on layout references become
        :class:`~repro.errors.RoutingError` so the whole rejection
        surface is the library's hierarchy (HTTP maps it to 400).
        """
        try:
            layout = request.resolve_layout()
        except OSError as exc:
            raise RoutingError(f"cannot resolve request layout: {exc}") from exc
        key = request_cache_key(request, layout=layout)
        return layout, key

    def _prepare_reroute(
        self, request: RerouteRequest
    ) -> tuple[Layout, Layout, str, str]:
        """Resolve, mutate, and hash a reroute outside the lock.

        Applying the delta here means a malformed one (removing a cell
        a surviving net still pins to, moving a cell nobody placed)
        rejects the submission with a 400-mappable error before any
        job exists — the same binary acceptance as :meth:`_prepare`.
        """
        try:
            base_layout = request.base.resolve_layout()
        except OSError as exc:
            raise RoutingError(f"cannot resolve reroute base layout: {exc}") from exc
        mutated_layout = apply_delta(base_layout, request.delta)
        base_key = request_cache_key(request.base, layout=base_layout)
        key = reroute_cache_key(request, base_layout=base_layout)
        return base_layout, mutated_layout, base_key, key

    # ------------------------------------------------------------------
    # Work closures (what a worker thread actually runs)
    # ------------------------------------------------------------------
    def _route_work(
        self, request: RouteRequest, layout: Optional[Layout]
    ) -> Callable[[], RouteResult]:
        return lambda: self._pipeline.run(request, layout=layout)

    def _reroute_work(
        self, request: RerouteRequest, base_layout: Layout, prev: RouteResult
    ) -> Callable[[], RouteResult]:
        return lambda: self._pipeline.reroute(
            request, prev_result=prev, base_layout=base_layout
        )

    def _admit_locked(
        self,
        key: str,
        *,
        work: Callable[[], RouteResult],
        incremental: Optional[bool] = None,
    ) -> Job:
        if self._closed:
            raise ServiceError("service is shut down", status=503)
        now = time.time()
        cached = self.cache.get(key)
        if cached is not None:
            self.metrics.record_cache(hit=True)
            job = self._new_job_locked(key, now)
            job.cache_hit = True
            job.incremental = incremental
            job.state = "done"
            job.started_at = now
            job.finished_at = now
            job.result = cached
            job._done.set()
            return job
        self.metrics.record_cache(hit=False)
        inflight = self._inflight.get(key)
        if inflight is not None:
            self.metrics.record_coalesced()
            job = self._new_job_locked(key, now)
            job.coalesced = True
            job.incremental = inflight.primary.incremental
            inflight.followers.append(job)
            return job
        if self._pending >= self.queue_limit:
            self.metrics.record_rejected()
            raise QueueFullError(
                f"admission window full: {self._pending} routing runs in "
                f"flight >= limit {self.queue_limit}"
            )
        job = self._new_job_locked(key, now)
        job.incremental = incremental
        self._inflight[key] = _Inflight(primary=job)
        self._pending += 1
        self._pool.submit(self._run_job, job, key, work)
        return job

    def _new_job_locked(self, key: str, now: float) -> Job:
        self._next_id += 1
        job = Job(id=f"job-{self._next_id:06d}", key=key, submitted_at=now)
        self._jobs[job.id] = job
        self._prune_jobs_locked()
        return job

    def _prune_jobs_locked(self) -> None:
        """Drop the oldest *terminal* jobs beyond the history bound."""
        excess = len(self._jobs) - self.job_history
        if excess <= 0:
            return
        for job_id in [
            job_id for job_id, job in self._jobs.items() if job.finished
        ][:excess]:
            del self._jobs[job_id]

    # ------------------------------------------------------------------
    # Execution (worker threads)
    # ------------------------------------------------------------------
    def _run_job(self, job: Job, key: str, work: Callable[[], RouteResult]) -> None:
        with self._lock:
            job.state = "running"
            job.started_at = time.time()
            self._running += 1
        try:
            result = work()
        except Exception as exc:  # noqa: BLE001 - accepted jobs must terminate, not vanish
            self._finish_job(job, key, result=None, error=f"{type(exc).__name__}: {exc}")
            return
        self._finish_job(job, key, result=result, error=None)

    def _finish_job(
        self, job: Job, key: str, *, result: Optional[RouteResult], error: Optional[str]
    ) -> None:
        now = time.time()
        with self._lock:
            self._running -= 1
            self._pending -= 1
            inflight = self._inflight.pop(key, None)
            followers = inflight.followers if inflight is not None else []
            if result is not None:
                self.cache.put(key, result)
                self.metrics.record_completed(now - (job.started_at or now))
            else:
                self.metrics.record_failed()
            for member in (job, *followers):
                member.state = "done" if result is not None else "failed"
                member.result = result
                member.error = error
                if member.started_at is None:
                    # Followers never queued for a worker: their wait
                    # began at submission, so queued=0 and the route
                    # timing is the time spent waiting on the shared
                    # run.  (Backdating to the primary's start would
                    # make queued negative.)
                    member.started_at = member.submitted_at
                member.finished_at = now
                member._done.set()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def get(self, job_id: str) -> Optional[Job]:
        """The live job record, or ``None`` for unknown ids."""
        with self._lock:
            return self._jobs.get(job_id)

    def describe(self, job_id: str, *, include_result: bool = True) -> Optional[dict]:
        """A consistent JSON-ready snapshot of one job (or ``None``)."""
        with self._lock:
            job = self._jobs.get(job_id)
            if job is None:
                return None
            return job.as_dict(include_result=include_result)

    def describe_job(self, job: Job, *, include_result: bool = True) -> dict:
        """Snapshot a job the caller already holds.

        Unlike :meth:`describe` this cannot miss: a terminal job may be
        pruned from the id table by a concurrent submission, but the
        live object stays valid — the HTTP handlers use this for jobs
        they just created.
        """
        with self._lock:
            return job.as_dict(include_result=include_result)

    def wait_job(self, job: Job, *, timeout: float = 60.0) -> bool:
        """Block until *job* (held by the caller) is terminal.

        Returns whether the job reached a terminal state within
        *timeout* — prune-proof like :meth:`describe_job`.
        """
        return job._done.wait(timeout)

    def wait(self, job_id: str, *, timeout: float = 60.0) -> Job:
        """Block until *job_id* is terminal; raises on unknown/timeout."""
        job = self.get(job_id)
        if job is None:
            raise ServiceError(f"unknown job {job_id!r}", status=404)
        if not job._done.wait(timeout):
            raise ServiceError(
                f"job {job_id} still {job.state} after {timeout:.1f}s", status=504
            )
        return job

    def snapshot(self) -> dict:
        """The ``/metrics`` document: counters, gauges, cache stats."""
        with self._lock:
            queue_depth = self._pending - self._running
            running = self._running
            jobs_tracked = len(self._jobs)
        data = self.metrics.snapshot()
        data.update(
            {
                "queue_depth": queue_depth,
                "running": running,
                "jobs_tracked": jobs_tracked,
                "workers": self.workers,
                "queue_limit": self.queue_limit,
                "uptime_seconds": time.time() - self._started_at,
                "cache": self.cache.stats(),
            }
        )
        return data

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def close(self, *, wait: bool = True) -> None:
        """Stop admitting work and shut the worker pool down."""
        with self._lock:
            self._closed = True
        self._pool.shutdown(wait=wait)

    def __enter__(self) -> "RoutingService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
