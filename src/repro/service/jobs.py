"""The async job queue behind the routing service.

:class:`RoutingService` is the HTTP-independent core: submissions come
in as :class:`~repro.api.request.RouteRequest` objects and become
:class:`Job` records that move through ``queued → running → done`` (or
``failed``).  Three mechanisms keep a long-lived instance healthy
under concurrent load:

**Admission window.**  At most ``queue_limit`` routing runs may be in
flight (queued + running).  A submission past the window raises
:class:`~repro.errors.QueueFullError` *before* any job exists, so
acceptance is binary: a 429'd request left no trace, and every
accepted job is guaranteed to reach a terminal state — the worker
wrapper catches all routing exceptions into the job's ``failed``
state, and nothing between admission and completion can drop it.

**Result store.**  Submissions are keyed by
:func:`repro.api.canonical.request_cache_key`; a key already in the
:class:`~repro.service.store.base.ResultStore` completes instantly as
a ``cache_hit`` job without consuming a window slot.  The store is
pluggable (``store="memory"`` or ``"sqlite:PATH"``): the sqlite
backend survives restarts and can be shared by several frontends.

**Coalescing.**  A submission whose key matches an in-flight job
becomes a *follower*: it gets its own job id (its own lifecycle to
poll) but no second routing run — when the primary finishes, result or
failure fans out to every follower.  Followers do not consume window
slots either; the window bounds actual routing work.

Two worker tiers execute the accepted work.  Dispatch is always a
thread pool from :func:`repro.core.parallel.make_executor`
(``minimum=1``); with ``executor="thread"`` the routing runs inline on
those threads (GIL-bound, but mandatory for caller-registered
strategies that only exist in this process), while
``executor="process"`` hands each run's JSON work spec to the
crash-tolerant :class:`~repro.service.workers.ProcessTier` — true
multi-core routing, with worker-crash detection, a per-job
retry-once, and restart accounting in ``/metrics``.

**Durability.**  Every accepted job also writes a resubmission spec to
the store's :class:`~repro.service.store.base.JobStore`; rows are
deleted at terminal states, and whatever a crashed process left behind
is re-queued — under the original job ids, bypassing the admission
window — when the next service instance opens the same store.
"""

from __future__ import annotations

import sys
import threading
import time
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Any, Callable, Optional, Sequence, Union

from repro.errors import QueueFullError, ReproError, RoutingError, ServiceError
from repro.core.parallel import make_executor
from repro.incremental.delta import apply_delta
from repro.api.canonical import request_cache_key
from repro.api.pipeline import RoutingPipeline
from repro.api.registry import StrategyRegistry
from repro.api.request import RouteRequest
from repro.api.rerouting import RerouteRequest, reroute_cache_key
from repro.api.result import RouteResult
from repro.layout.layout import Layout
from repro.service.store import JobRecord, Store, make_store
from repro.service.metrics import ServiceMetrics
from repro.service.workers import WORKER_TIERS, ProcessTier

#: Every state a job can be observed in, in lifecycle order.
JOB_STATES = ("queued", "running", "done", "failed")

#: Terminal states — a job here never changes again.
TERMINAL_STATES = ("done", "failed")

#: Finished jobs retained for ``GET /jobs/<id>`` before pruning.
DEFAULT_JOB_HISTORY = 1024


@dataclass
class Job:
    """One submission's lifecycle record.

    ``cache_hit`` jobs are born terminal; ``coalesced`` jobs follow an
    identical in-flight primary and finish when it does.  All mutation
    happens under the owning service's lock — readers outside the
    service should go through :meth:`RoutingService.describe`.
    """

    id: str
    key: str
    state: str = "queued"
    cache_hit: bool = False
    coalesced: bool = False
    #: ``None`` for plain route jobs; for ``/reroute`` submissions,
    #: whether the base result was cached and the run warm-started
    #: (``True``) or fell back to routing the mutated layout from
    #: scratch (``False``).
    incremental: Optional[bool] = None
    #: Whether this job was re-queued from a persistent job store
    #: after a previous process died with it unfinished.
    recovered: bool = False
    submitted_at: float = 0.0
    started_at: Optional[float] = None
    finished_at: Optional[float] = None
    #: Monotonic-clock twins of the ``*_at`` fields, used for every
    #: *interval* (queued/route/total, the completion metric).  The
    #: wall-clock fields above are kept for display only: arithmetic on
    #: ``time.time()`` goes wrong whenever NTP steps the clock mid-job
    #: (negative or wildly inflated durations).
    submitted_mono: float = 0.0
    started_mono: Optional[float] = None
    finished_mono: Optional[float] = None
    result: Optional[RouteResult] = None
    error: Optional[str] = None
    _done: threading.Event = field(
        default_factory=threading.Event, repr=False, compare=False
    )

    @property
    def finished(self) -> bool:
        """Whether the job reached a terminal state."""
        return self.state in TERMINAL_STATES

    def timings(self) -> dict[str, Optional[float]]:
        """Queued/route/total wall seconds (``None`` while pending).

        Computed from the monotonic timestamps, so a wall-clock step
        (NTP correction, DST, manual adjustment) mid-job cannot
        produce negative or inflated durations.
        """
        queued = (
            None
            if self.started_mono is None
            else self.started_mono - self.submitted_mono
        )
        route = (
            None
            if self.started_mono is None or self.finished_mono is None
            else self.finished_mono - self.started_mono
        )
        total = (
            None
            if self.finished_mono is None
            else self.finished_mono - self.submitted_mono
        )
        return {"queued": queued, "route": route, "total": total}

    def as_dict(self, *, include_result: bool = True) -> dict[str, Any]:
        """JSON-ready view (the shape ``GET /jobs/<id>`` serves)."""
        data: dict[str, Any] = {
            "id": self.id,
            "key": self.key,
            "state": self.state,
            "cache_hit": self.cache_hit,
            "coalesced": self.coalesced,
            "incremental": self.incremental,
            "recovered": self.recovered,
            "submitted_at": self.submitted_at,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
            "timings": self.timings(),
            "error": self.error,
        }
        if include_result and self.state == "done" and self.result is not None:
            data["result"] = self.result.to_dict()
        return data


@dataclass
class _Work:
    """One admitted routing run, in every form the service needs it.

    ``inline`` runs it on a dispatch thread (the thread tier, and the
    only form custom-registry strategies have); ``exec_spec`` is the
    JSON document the process tier ships to a worker; ``persist_spec``
    is the self-contained resubmission document the job store keeps
    for crash recovery (layout inlined — recovery never re-reads
    layout files).
    """

    kind: str
    inline: Callable[[], RouteResult]
    exec_spec: Optional[dict]
    persist_spec: dict


@dataclass
class _Inflight:
    """One key's in-flight routing run: the primary plus its followers."""

    primary: Job
    followers: list[Job] = field(default_factory=list)


class RoutingService:
    """Admission-controlled, cached, coalescing executor of requests.

    Parameters
    ----------
    workers:
        Concurrent routing runs (dispatch pool size, and the process
        pool size on the process tier), >= 1.
    queue_limit:
        Admission window: maximum queued + running routing runs; a
        submission past it raises :class:`QueueFullError` (HTTP 429).
    cache_size:
        Result-store capacity (0 disables result reuse).  Ignored when
        *store* is a pre-built :class:`Store`.
    registry:
        Strategy registry for the pipeline (defaults to the built-ins).
        Incompatible with ``executor="process"`` — worker processes
        resolve strategies by name from a fresh interpreter.
    job_history:
        Terminal jobs retained for polling before the oldest are
        pruned; in-flight jobs are never pruned.
    executor:
        ``"thread"`` (default) routes on the dispatch threads;
        ``"process"`` routes in a crash-tolerant process pool (see
        :mod:`repro.service.workers`).
    store:
        ``"memory"`` (default), ``"sqlite:PATH"``, or a pre-built
        :class:`~repro.service.store.base.Store`.  Persistent stores
        re-queue the previous process's unfinished jobs at startup.
    """

    def __init__(
        self,
        *,
        workers: int = 2,
        queue_limit: int = 32,
        cache_size: int = 256,
        registry: Optional[StrategyRegistry] = None,
        job_history: int = DEFAULT_JOB_HISTORY,
        executor: str = "thread",
        store: Union[str, Store] = "memory",
    ):
        if queue_limit < 1:
            raise RoutingError(f"queue_limit must be >= 1, got {queue_limit}")
        if job_history < 1:
            raise RoutingError(f"job_history must be >= 1, got {job_history}")
        if executor not in WORKER_TIERS:
            raise RoutingError(
                f"executor must be one of {WORKER_TIERS}, not {executor!r}"
            )
        if executor == "process" and registry is not None:
            raise RoutingError(
                "a custom strategy registry requires executor='thread': worker "
                "processes resolve strategies by name from a fresh interpreter "
                "and would not see runtime registrations"
            )
        self.workers = workers
        self.queue_limit = queue_limit
        self.job_history = job_history
        self.executor = executor
        self.metrics = ServiceMetrics()
        self.store = store if isinstance(store, Store) else make_store(
            store, cache_size=cache_size
        )
        #: The result store, under its historical attribute name.
        self.cache = self.store.results
        self._pipeline = RoutingPipeline(registry)
        self._pool = make_executor(workers, "thread", minimum=1)
        self._tier = (
            ProcessTier(workers, self.metrics) if executor == "process" else None
        )
        self._lock = threading.Lock()
        self._jobs: "OrderedDict[str, Job]" = OrderedDict()
        self._inflight: dict[str, _Inflight] = {}
        self._pending = 0  # queued + running primaries (window occupancy)
        self._running = 0
        self._next_id = 0
        self._started_at = time.time()
        self._started_mono = time.monotonic()
        self._closed = False
        self._final_snapshot: Optional[dict] = None
        self._recover_pending()

    # ------------------------------------------------------------------
    # Submission
    # ------------------------------------------------------------------
    def submit(self, request: RouteRequest) -> Job:
        """Admit one request; returns its (possibly already-done) job.

        Raises :class:`~repro.errors.RoutingError` for malformed
        requests (unresolvable layout, non-canonicalizable params) and
        :class:`QueueFullError` when the admission window is full.
        """
        layout, key = self._prepare(request)
        with self._lock:
            self.metrics.record_request()
            return self._admit_locked(key, work=self._route_work(request, layout))

    def submit_reroute(self, request: RerouteRequest) -> Job:
        """Admit one incremental reroute; returns its job.

        The base result is resolved from the content-addressed store
        *at admission time*: when present, the run warm-starts from it
        through :meth:`RoutingPipeline.reroute` (``job.incremental``
        is ``True``); when absent — evicted, or never routed here —
        the service falls back to routing the mutated layout from
        scratch (``incremental=False``), so a reroute submission
        always yields a usable result.  Either way the result is
        cached under :func:`~repro.api.rerouting.reroute_cache_key`,
        which is disjoint from the from-scratch key namespace: a
        warm-started result is never served for a plain ``/route`` of
        the mutated layout, or vice versa.
        """
        base_layout, mutated_layout, base_key, key = self._prepare_reroute(request)
        with self._lock:
            self.metrics.record_request()
            prev = self.cache.get(base_key)
            work = self._reroute_work(request, base_layout, mutated_layout, prev)
            self.metrics.record_reroute(incremental=prev is not None)
            return self._admit_locked(key, work=work, incremental=prev is not None)

    def submit_many(self, requests: Sequence[RouteRequest]) -> list[Job]:
        """Admit a batch atomically: all jobs are created, or none.

        The whole batch is hashed first (any malformed request fails
        the batch before admission), then admitted under one lock so
        the window check covers the batch's *new* routing runs as a
        unit — duplicates within the batch coalesce onto the first
        occurrence and cached keys cost no slots, exactly as they
        would submitted one at a time.
        """
        prepared = [self._prepare(r) for r in requests]
        with self._lock:
            for _ in prepared:
                self.metrics.record_request()
            new_keys = {
                key
                for _, key in prepared
                if key not in self._inflight and key not in self.cache
            }
            if self._pending + len(new_keys) > self.queue_limit:
                self.metrics.record_rejected()
                raise QueueFullError(
                    f"admission window full: {self._pending} in flight + "
                    f"{len(new_keys)} new > limit {self.queue_limit}"
                )
            return [
                self._admit_locked(key, work=self._route_work(request, layout))
                for (request, (layout, key)) in zip(requests, prepared)
            ]

    def _prepare(self, request: RouteRequest) -> tuple[Layout, str]:
        """Resolve and hash outside the lock (both can be slow).

        I/O failures on layout references become
        :class:`~repro.errors.RoutingError` so the whole rejection
        surface is the library's hierarchy (HTTP maps it to 400).
        """
        try:
            layout = request.resolve_layout()
        except OSError as exc:
            raise RoutingError(f"cannot resolve request layout: {exc}") from exc
        key = request_cache_key(request, layout=layout)
        return layout, key

    def _prepare_reroute(
        self, request: RerouteRequest
    ) -> tuple[Layout, Layout, str, str]:
        """Resolve, mutate, and hash a reroute outside the lock.

        Applying the delta here means a malformed one (removing a cell
        a surviving net still pins to, moving a cell nobody placed)
        rejects the submission with a 400-mappable error before any
        job exists — the same binary acceptance as :meth:`_prepare`.
        """
        try:
            base_layout = request.base.resolve_layout()
        except OSError as exc:
            raise RoutingError(f"cannot resolve reroute base layout: {exc}") from exc
        mutated_layout = apply_delta(base_layout, request.delta)
        base_key = request_cache_key(request.base, layout=base_layout)
        key = reroute_cache_key(request, base_layout=base_layout)
        return base_layout, mutated_layout, base_key, key

    # ------------------------------------------------------------------
    # Work construction (inline closure + process spec + persistence)
    # ------------------------------------------------------------------
    def _route_work(self, request: RouteRequest, layout: Layout) -> _Work:
        resolved = request.with_layout(layout).to_dict()
        spec = {"kind": "route", "request": resolved}
        return _Work(
            kind="route",
            inline=lambda: self._pipeline.run(request, layout=layout),
            exec_spec=spec,
            persist_spec=spec,
        )

    def _reroute_work(
        self,
        request: RerouteRequest,
        base_layout: Layout,
        mutated_layout: Layout,
        prev: Optional[RouteResult],
    ) -> _Work:
        """Reroute work: warm-started when *prev* exists, else fallback.

        The persisted spec is the reroute document either way — a
        recovered reroute re-resolves its base from the result store,
        so a base that was cached (or arrived) by then warm-starts
        even if the original run had to fall back.
        """
        inlined = RerouteRequest(
            base=request.base.with_layout(base_layout), delta=request.delta
        )
        persist_spec = {"kind": "reroute", "request": inlined.to_dict()}
        if prev is None:
            mutated_request = request.base.with_layout(mutated_layout)
            return _Work(
                kind="reroute",
                inline=lambda: self._pipeline.run(
                    mutated_request, layout=mutated_layout
                ),
                exec_spec={"kind": "route", "request": mutated_request.to_dict()},
                persist_spec=persist_spec,
            )
        return _Work(
            kind="reroute",
            inline=lambda: self._pipeline.reroute(
                request, prev_result=prev, base_layout=base_layout
            ),
            exec_spec={
                "kind": "reroute",
                "request": inlined.to_dict(),
                "prev": prev.to_dict(),
            },
            persist_spec=persist_spec,
        )

    # ------------------------------------------------------------------
    # Admission
    # ------------------------------------------------------------------
    def _admit_locked(
        self,
        key: str,
        *,
        work: _Work,
        incremental: Optional[bool] = None,
        job_id: Optional[str] = None,
        enforce_window: bool = True,
    ) -> Job:
        if self._closed:
            raise ServiceError("service is shut down", status=503)
        now = time.time()
        mono = time.monotonic()
        cached = self.cache.get(key)
        if cached is not None:
            self.metrics.record_cache(hit=True)
            job = self._new_job_locked(key, now, mono, job_id=job_id)
            job.cache_hit = True
            job.incremental = incremental
            job.state = "done"
            job.started_at = now
            job.finished_at = now
            job.started_mono = mono
            job.finished_mono = mono
            job.result = cached
            job._done.set()
            return job
        self.metrics.record_cache(hit=False)
        inflight = self._inflight.get(key)
        if inflight is not None:
            self.metrics.record_coalesced()
            job = self._new_job_locked(key, now, mono, job_id=job_id)
            job.coalesced = True
            job.incremental = inflight.primary.incremental
            inflight.followers.append(job)
            self._persist_job(job, work)
            return job
        if enforce_window and self._pending >= self.queue_limit:
            self.metrics.record_rejected()
            raise QueueFullError(
                f"admission window full: {self._pending} routing runs in "
                f"flight >= limit {self.queue_limit}"
            )
        job = self._new_job_locked(key, now, mono, job_id=job_id)
        job.incremental = incremental
        self._inflight[key] = _Inflight(primary=job)
        self._pending += 1
        self._persist_job(job, work)
        self._pool.submit(self._run_job, job, key, work)
        return job

    def _persist_job(self, job: Job, work: _Work) -> None:
        """Write the job's resubmission record to the durable log."""
        self.store.jobs.record(
            JobRecord(
                id=job.id,
                key=job.key,
                state=job.state,
                kind=work.kind,
                spec=work.persist_spec,
                submitted_at=job.submitted_at,
            )
        )

    def _new_job_locked(
        self, key: str, now: float, mono: float, *, job_id: Optional[str] = None
    ) -> Job:
        if job_id is None or job_id in self._jobs:
            self._next_id += 1
            job_id = f"job-{self._next_id:06d}"
        job = Job(id=job_id, key=key, submitted_at=now, submitted_mono=mono)
        self._jobs[job.id] = job
        self._prune_jobs_locked()
        return job

    def _prune_jobs_locked(self) -> None:
        """Drop the oldest *terminal* jobs beyond the history bound."""
        excess = len(self._jobs) - self.job_history
        if excess <= 0:
            return
        for job_id in [
            job_id for job_id, job in self._jobs.items() if job.finished
        ][:excess]:
            del self._jobs[job_id]

    # ------------------------------------------------------------------
    # Recovery (startup, before the service takes traffic)
    # ------------------------------------------------------------------
    def _recover_pending(self) -> None:
        """Re-queue whatever a previous process accepted but never ran.

        Records are replayed oldest-first under their original job
        ids, bypassing the admission window (the work was already
        admitted once; 429ing it now would drop accepted jobs).  Keys
        meanwhile satisfied by the shared result store complete as
        cache hits; duplicate keys coalesce exactly like live traffic.
        Unreplayable records (e.g. written by a newer format) are
        dropped with a warning rather than wedging startup.
        """
        records = self.store.jobs.load_pending()
        if not records:
            return
        for record in records:
            # Re-admission below re-records each row (same id); rows
            # that fail to replay must not wedge every later startup.
            self.store.jobs.delete(record.id)
        for record in records:
            try:
                self._resubmit_record(record)
                self.metrics.record_recovered()
            except ReproError as exc:
                print(
                    f"repro.service: dropping unrecoverable job "
                    f"{record.id}: {exc}",
                    file=sys.stderr,
                )

    def _resubmit_record(self, record: JobRecord) -> Job:
        self._reserve_id(record.id)
        if record.kind == "route":
            request = RouteRequest.from_dict(record.spec["request"])
            layout, key = self._prepare(request)
            with self._lock:
                job = self._admit_locked(
                    key,
                    work=self._route_work(request, layout),
                    job_id=record.id,
                    enforce_window=False,
                )
                job.recovered = True
                return job
        if record.kind == "reroute":
            request = RerouteRequest.from_dict(record.spec["request"])
            base_layout, mutated_layout, base_key, key = self._prepare_reroute(
                request
            )
            with self._lock:
                prev = self.cache.get(base_key)
                work = self._reroute_work(
                    request, base_layout, mutated_layout, prev
                )
                job = self._admit_locked(
                    key,
                    work=work,
                    incremental=prev is not None,
                    job_id=record.id,
                    enforce_window=False,
                )
                job.recovered = True
                return job
        raise RoutingError(f"unknown persisted job kind {record.kind!r}")

    def _reserve_id(self, job_id: str) -> None:
        """Keep fresh ids from colliding with a recovered job's id."""
        prefix, _, suffix = job_id.partition("-")
        if prefix == "job" and suffix.isdigit():
            with self._lock:
                self._next_id = max(self._next_id, int(suffix))

    # ------------------------------------------------------------------
    # Execution (dispatch threads)
    # ------------------------------------------------------------------
    def _run_job(self, job: Job, key: str, work: _Work) -> None:
        with self._lock:
            job.state = "running"
            job.started_at = time.time()
            job.started_mono = time.monotonic()
            self._running += 1
        self.store.jobs.update(job.id, "running")
        try:
            result = self._execute(work)
        except Exception as exc:  # noqa: BLE001 - accepted jobs must terminate, not vanish
            self._finish_job(job, key, result=None, error=f"{type(exc).__name__}: {exc}")
            return
        self._finish_job(job, key, result=result, error=None)

    def _execute(self, work: _Work) -> RouteResult:
        """Run one admitted work item on the configured tier.

        The process tier executes the JSON spec in a worker process
        (with crash retry — see :class:`ProcessTier`); the thread tier
        runs the closure right here on the dispatch thread.
        """
        if self._tier is not None and work.exec_spec is not None:
            return self._tier.run(work.exec_spec)
        return work.inline()

    def _finish_job(
        self, job: Job, key: str, *, result: Optional[RouteResult], error: Optional[str]
    ) -> None:
        now = time.time()
        mono = time.monotonic()
        with self._lock:
            self._running -= 1
            self._pending -= 1
            inflight = self._inflight.pop(key, None)
            followers = inflight.followers if inflight is not None else []
            if result is not None:
                self.cache.put(key, result)
                self.metrics.record_completed(mono - (job.started_mono or mono))
            else:
                self.metrics.record_failed()
            for member in (job, *followers):
                member.state = "done" if result is not None else "failed"
                member.result = result
                member.error = error
                if member.started_at is None:
                    # Followers never queued for a worker: their wait
                    # began at submission, so queued=0 and the route
                    # timing is the time spent waiting on the shared
                    # run.  (Backdating to the primary's start would
                    # make queued negative.)
                    member.started_at = member.submitted_at
                    member.started_mono = member.submitted_mono
                member.finished_at = now
                member.finished_mono = mono
                member._done.set()
        for member in (job, *followers):
            self.store.jobs.delete(member.id)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def get(self, job_id: str) -> Optional[Job]:
        """The live job record, or ``None`` for unknown ids."""
        with self._lock:
            return self._jobs.get(job_id)

    def describe(self, job_id: str, *, include_result: bool = True) -> Optional[dict]:
        """A consistent JSON-ready snapshot of one job (or ``None``)."""
        with self._lock:
            job = self._jobs.get(job_id)
            if job is None:
                return None
            return job.as_dict(include_result=include_result)

    def describe_job(self, job: Job, *, include_result: bool = True) -> dict:
        """Snapshot a job the caller already holds.

        Unlike :meth:`describe` this cannot miss: a terminal job may be
        pruned from the id table by a concurrent submission, but the
        live object stays valid — the HTTP handlers use this for jobs
        they just created.
        """
        with self._lock:
            return job.as_dict(include_result=include_result)

    def wait_job(self, job: Job, *, timeout: float = 60.0) -> bool:
        """Block until *job* (held by the caller) is terminal.

        Returns whether the job reached a terminal state within
        *timeout* — prune-proof like :meth:`describe_job`.
        """
        return job._done.wait(timeout)

    def wait(self, job_id: str, *, timeout: float = 60.0) -> Job:
        """Block until *job_id* is terminal; raises on unknown/timeout."""
        job = self.get(job_id)
        if job is None:
            raise ServiceError(f"unknown job {job_id!r}", status=404)
        if not job._done.wait(timeout):
            raise ServiceError(
                f"job {job_id} still {job.state} after {timeout:.1f}s", status=504
            )
        return job

    def snapshot(self) -> dict:
        """The ``/metrics`` document: counters, gauges, store stats.

        After :meth:`close` this returns the final pre-shutdown
        snapshot (the store may be gone), so supervisors can log the
        run's totals on the way out.
        """
        with self._lock:
            if self._final_snapshot is not None:
                return dict(self._final_snapshot)
            queue_depth = self._pending - self._running
            running = self._running
            jobs_tracked = len(self._jobs)
        data = self.metrics.snapshot()
        data.update(
            {
                "queue_depth": queue_depth,
                "running": running,
                "jobs_tracked": jobs_tracked,
                "workers": self.workers,
                "queue_limit": self.queue_limit,
                "executor": self.executor,
                "store_backend": self.store.backend,
                "uptime_seconds": time.monotonic() - self._started_mono,
                "cache": self.cache.stats(),
            }
        )
        return data

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def close(self, *, wait: bool = True) -> None:
        """Stop admitting work, drain the tiers, and release the store.

        With ``wait=True`` (the graceful path — what SIGTERM takes)
        every already-accepted job runs to a terminal state before the
        store closes, so a clean shutdown leaves an empty job log; an
        abrupt death instead leaves its unfinished rows for the next
        startup's recovery.
        """
        with self._lock:
            self._closed = True
        self._pool.shutdown(wait=wait)
        if self._tier is not None:
            self._tier.close(wait=wait)
        final = self.snapshot()
        with self._lock:
            self._final_snapshot = final
        self.store.close()

    def __enter__(self) -> "RoutingService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
