"""The process-pool worker tier: routing runs beyond the service GIL.

The service's dispatch pool is always threads (cheap, and the job
table lives in-process), but routing itself is CPU-bound pure Python —
threads serialize on the GIL, so ``repro serve --executor process``
hands the actual routing work to a :class:`ProcessTier`: a persistent
:class:`~concurrent.futures.ProcessPoolExecutor` built on
:func:`repro.core.parallel.make_executor`, fed JSON-ready *work specs*
(the request document with the layout inlined) and returning
serialized :class:`~repro.api.result.RouteResult` documents.  Results
round-trip the same ``to_dict``/``from_dict`` path as the HTTP wire,
so a process-tier result is byte-identical (as JSON) to an in-process
one.

Crash handling: a worker process dying (OOM kill, segfault, a hostile
``os._exit``) surfaces as :class:`~concurrent.futures.BrokenExecutor`
on every future sharing the pool.  The tier then rebuilds the pool
(counted as a ``worker_restart``) and retries the affected job **once**
(counted as a ``job_retry``); a second crash fails the job with a
:class:`~repro.errors.ServiceError` rather than looping — crashes that
follow the job are the job's fault, crashes that don't are absorbed.

Specs, not closures, cross the process boundary, which is why the
process tier requires strategies resolvable by name in a fresh
interpreter (the built-ins): a custom
:class:`~repro.api.registry.StrategyRegistry` lives only in the parent
and forces the thread tier.
"""

from __future__ import annotations

import threading
from concurrent.futures import BrokenExecutor
from typing import TYPE_CHECKING, Callable, Optional

from repro.errors import ServiceError
from repro.core.parallel import make_executor

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.api.result import RouteResult
    from repro.service.metrics import ServiceMetrics

#: Worker tiers ``RoutingService(executor=...)`` accepts.
WORKER_TIERS = ("thread", "process")


def execute_spec(spec: dict) -> dict:
    """Run one work spec to a serialized result (worker-process side).

    The pipeline is built once per worker process and reused across
    jobs — the default registry with the built-in strategies, which is
    exactly why the process tier refuses custom registries.
    """
    from repro.api.pipeline import RoutingPipeline
    from repro.api.request import RouteRequest
    from repro.api.rerouting import RerouteRequest
    from repro.api.result import RouteResult

    global _PIPELINE
    if _PIPELINE is None:
        _PIPELINE = RoutingPipeline()
    kind = spec["kind"]
    if kind == "route":
        result = _PIPELINE.run(RouteRequest.from_dict(spec["request"]))
    elif kind == "reroute":
        result = _PIPELINE.reroute(
            RerouteRequest.from_dict(spec["request"]),
            prev_result=RouteResult.from_dict(spec["prev"]),
        )
    else:
        raise ServiceError(f"unknown work spec kind {kind!r}")
    return result.to_dict()


_PIPELINE = None


class ProcessTier:
    """A crash-tolerant persistent process pool for routing work.

    Parameters
    ----------
    workers:
        Pool size, >= 1.
    metrics:
        The service's :class:`ServiceMetrics` — restart and retry
        counters land there.
    target:
        The worker-side function (spec dict in, result dict out).
        Overridable for tests that need a worker to crash on cue;
        production always uses :func:`execute_spec`.
    """

    def __init__(
        self,
        workers: int,
        metrics: "ServiceMetrics",
        *,
        target: Callable[[dict], dict] = execute_spec,
    ):
        self.workers = workers
        self.metrics = metrics
        self.target = target
        self._lock = threading.Lock()
        self._generation = 0
        self._pool = make_executor(workers, "process", minimum=1)

    def run(self, spec: dict) -> "RouteResult":
        """Execute *spec* in a worker process; retry once across a crash."""
        from repro.api.result import RouteResult

        last_error: Optional[BaseException] = None
        for attempt in range(2):
            with self._lock:
                pool, generation = self._pool, self._generation
            try:
                payload = pool.submit(self.target, spec).result()
                return RouteResult.from_dict(payload)
            except BrokenExecutor as exc:
                last_error = exc
                self._restart(generation)
                if attempt == 0:
                    self.metrics.record_retry()
        raise ServiceError(
            f"routing worker crashed twice running this job: {last_error}"
        )

    def _restart(self, generation: int) -> None:
        """Replace the broken pool exactly once per breakage.

        Every thread blocked on the dead pool sees the same
        :class:`BrokenExecutor`; the generation check makes the first
        one rebuild and the rest reuse its replacement instead of
        stampeding through N rebuilds.
        """
        with self._lock:
            if self._generation == generation:
                self._pool.shutdown(wait=False)
                self._pool = make_executor(self.workers, "process", minimum=1)
                self._generation += 1
                self.metrics.record_worker_restart()

    @property
    def restarts(self) -> int:
        """Pool rebuilds since construction."""
        with self._lock:
            return self._generation

    def close(self, *, wait: bool = True) -> None:
        """Shut the worker processes down."""
        with self._lock:
            pool = self._pool
        pool.shutdown(wait=wait)
