"""Back-compat shim: the result cache moved into the store subsystem.

PR 5 introduced ``repro.service.cache.ResultCache``; the store
refactor generalized it into the pluggable
:class:`~repro.service.store.base.ResultStore` interface with the LRU
living in :class:`~repro.service.store.memory.MemoryResultStore`
(unchanged semantics, plus an eviction counter) alongside the new
sqlite backend.  ``ResultCache`` remains the public name for the
in-memory backend so existing imports and constructor calls keep
working.
"""

from repro.service.store.memory import MemoryResultStore

#: The in-memory LRU result cache (historical name).
ResultCache = MemoryResultStore

__all__ = ["ResultCache"]
