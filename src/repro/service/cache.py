"""Content-addressed result cache for the routing service.

Keys are the canonical request hashes from
:func:`repro.api.canonical.request_cache_key`; values are live
:class:`~repro.api.result.RouteResult` objects.  Because a key covers
everything that influences the result (layout content, full router
config, strategy + params, verify/detail toggles), a hit is always
safe to serve verbatim — there is no TTL and no invalidation beyond
LRU eviction, since a changed input *is* a different key.

Cached results are shared objects: every job that hits a key hands out
the same :class:`RouteResult` instance, so holders must treat results
as read-only (HTTP callers only ever see the serialized form).
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import TYPE_CHECKING, Optional

from repro.errors import RoutingError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.api.result import RouteResult


class ResultCache:
    """A thread-safe LRU over canonical request keys.

    Parameters
    ----------
    max_entries:
        Results retained before least-recently-used eviction; ``0``
        disables caching entirely (every lookup misses, nothing is
        stored) — the knob behind ``repro serve --cache-size 0``.
    """

    def __init__(self, max_entries: int = 256):
        if max_entries < 0:
            raise RoutingError(f"cache max_entries must be >= 0, got {max_entries}")
        self.max_entries = max_entries
        self._entries: "OrderedDict[str, RouteResult]" = OrderedDict()
        self._lock = threading.Lock()
        self._hits = 0
        self._misses = 0

    def get(self, key: str) -> Optional["RouteResult"]:
        """The cached result for *key*, or ``None`` (counts hit/miss)."""
        with self._lock:
            result = self._entries.get(key)
            if result is None:
                self._misses += 1
                return None
            self._entries.move_to_end(key)
            self._hits += 1
            return result

    def put(self, key: str, result: "RouteResult") -> None:
        """Store *result* under *key*, evicting the LRU tail if needed."""
        if self.max_entries == 0:
            return
        with self._lock:
            self._entries[key] = result
            self._entries.move_to_end(key)
            while len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)

    def clear(self) -> None:
        """Drop every entry (counters are kept)."""
        with self._lock:
            self._entries.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: str) -> bool:
        with self._lock:
            return key in self._entries

    def stats(self) -> dict[str, int]:
        """Hit/miss/size counters for the ``/metrics`` snapshot."""
        with self._lock:
            return {
                "entries": len(self._entries),
                "max_entries": self.max_entries,
                "hits": self._hits,
                "misses": self._misses,
            }
