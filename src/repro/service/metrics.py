"""Service counters and latency percentiles for ``GET /metrics``.

A deliberately small, dependency-free metrics surface: monotonic
counters for the request-path events, plus a bounded reservoir of
route wall times from which p50/p95 are computed on demand.  The
reservoir keeps the most recent :data:`ROUTE_SAMPLE_WINDOW` completed
routing runs — cache hits and coalesced followers never enter it, so
the percentiles describe actual routing work, not cache lookups.
"""

from __future__ import annotations

import threading
from collections import deque
from typing import Optional

#: Completed-route wall times retained for the percentile estimates.
ROUTE_SAMPLE_WINDOW = 512


def percentile(samples: list[float], fraction: float) -> Optional[float]:
    """Nearest-rank percentile of *samples* (``None`` when empty).

    Nearest-rank keeps the estimate an actual observed value, which is
    the honest choice for the small windows a single service instance
    accumulates.
    """
    if not samples:
        return None
    ordered = sorted(samples)
    rank = max(0, min(len(ordered) - 1, round(fraction * (len(ordered) - 1))))
    return ordered[rank]


class ServiceMetrics:
    """Thread-safe counters + route-latency reservoir.

    Counter semantics (all monotonic since service start):

    ``requests``
        Every submission that reached admission — including ones the
        admission window then rejected.
    ``cache_hits`` / ``cache_misses``
        Result-cache outcomes at submission time.
    ``coalesced``
        Submissions attached to an identical already-in-flight job
        instead of spawning a second routing run.
    ``rejected``
        Submissions refused with 429 (admission window full).
    ``completed`` / ``failed``
        Routing runs that reached a terminal state (followers of a
        coalesced run count once — the run, not the followers).
    ``reroutes`` / ``reroute_fallbacks``
        ``/reroute`` submissions, and the subset whose base result was
        not cached and fell back to a from-scratch run of the mutated
        layout (a high fallback ratio means the cache is too small for
        the iteration loop driving the service).
    ``recovered``
        Jobs re-queued at startup from a persistent job store — work a
        previous process accepted but never finished.
    ``worker_restarts`` / ``job_retries``
        Process-tier crash handling: worker-pool rebuilds after a
        worker process died, and jobs given their one retry across
        such a crash (always 0 on the thread tier).
    """

    def __init__(self):
        self._lock = threading.Lock()
        self.requests = 0
        self.cache_hits = 0
        self.cache_misses = 0
        self.coalesced = 0
        self.rejected = 0
        self.completed = 0
        self.failed = 0
        self.reroutes = 0
        self.reroute_fallbacks = 0
        self.recovered = 0
        self.worker_restarts = 0
        self.job_retries = 0
        self._route_seconds: deque[float] = deque(maxlen=ROUTE_SAMPLE_WINDOW)

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def record_request(self) -> None:
        """Count one submission reaching admission."""
        with self._lock:
            self.requests += 1

    def record_cache(self, hit: bool) -> None:
        """Count one result-cache lookup outcome."""
        with self._lock:
            if hit:
                self.cache_hits += 1
            else:
                self.cache_misses += 1

    def record_coalesced(self) -> None:
        """Count one submission coalesced onto an in-flight run."""
        with self._lock:
            self.coalesced += 1

    def record_rejected(self) -> None:
        """Count one 429 rejection (admission window full)."""
        with self._lock:
            self.rejected += 1

    def record_completed(self, route_seconds: float) -> None:
        """Count one finished routing run and sample its wall time."""
        with self._lock:
            self.completed += 1
            self._route_seconds.append(route_seconds)

    def record_failed(self) -> None:
        """Count one routing run that raised."""
        with self._lock:
            self.failed += 1

    def record_reroute(self, *, incremental: bool) -> None:
        """Count one ``/reroute`` submission (and its fallback, if any)."""
        with self._lock:
            self.reroutes += 1
            if not incremental:
                self.reroute_fallbacks += 1

    def record_recovered(self) -> None:
        """Count one job re-queued from the persistent job store."""
        with self._lock:
            self.recovered += 1

    def record_worker_restart(self) -> None:
        """Count one process-pool rebuild after a worker crash."""
        with self._lock:
            self.worker_restarts += 1

    def record_retry(self) -> None:
        """Count one job retried across a worker crash."""
        with self._lock:
            self.job_retries += 1

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def snapshot(self) -> dict:
        """Counters plus p50/p95 route wall time (JSON-ready)."""
        with self._lock:
            samples = list(self._route_seconds)
            return {
                "requests": self.requests,
                "cache_hits": self.cache_hits,
                "cache_misses": self.cache_misses,
                "coalesced": self.coalesced,
                "rejected": self.rejected,
                "completed": self.completed,
                "failed": self.failed,
                "reroutes": self.reroutes,
                "reroute_fallbacks": self.reroute_fallbacks,
                "recovered": self.recovered,
                "worker_restarts": self.worker_restarts,
                "job_retries": self.job_retries,
                "route_samples": len(samples),
                "route_seconds_p50": percentile(samples, 0.50),
                "route_seconds_p95": percentile(samples, 0.95),
            }
