"""Stdlib HTTP frontend over :class:`~repro.service.jobs.RoutingService`.

No framework, no dependencies: a :class:`http.server.ThreadingHTTPServer`
whose handler translates seven endpoints into service calls and JSON —
the serving surface ``python -m repro serve`` exposes.

==========================  =============================================
Endpoint                    Meaning
==========================  =============================================
``POST /route``             Submit one ``RouteRequest`` JSON document.
                            Returns the job (``202`` while pending,
                            ``200`` when born done from the cache).
                            ``?wait=1`` long-polls: it blocks up to
                            ``&timeout=N`` seconds (capped at
                            :data:`WAIT_TIMEOUT_SECONDS`) and returns
                            the job in whatever state it reached —
                            ``200`` with the result when terminal,
                            ``202`` if the budget elapsed first.
``POST /reroute``           Submit one ``RerouteRequest`` JSON document
                            (``{"base": <route request>, "delta":
                            <layout delta>}``).  Warm-starts from the
                            cached base result when present, falls back
                            to from-scratch on the mutated layout
                            otherwise (``incremental`` on the job says
                            which); same ``?wait=1`` long-poll
                            semantics as ``/route``.
``POST /batch``             Submit ``{"requests": [...]}`` (or a bare
                            list) atomically; ``202`` with the job list
                            or ``429`` with nothing admitted.
``GET /jobs/<id>``          Poll one job; includes the serialized
                            ``RouteResult`` once the state is ``done``.
                            Unknown ids are ``404``.
``GET /healthz``            Liveness: ``{"status": "ok", ...}``.
``GET /metrics``            The counter snapshot (requests, cache hits,
                            queue depth, p50/p95 route seconds, ...).
``GET /strategies``         The strategy registry's ``describe()``
                            document: every registered strategy with
                            its description and typed params schema.
==========================  =============================================

Failure mapping: malformed JSON / bad requests → ``400``; a full
admission window → ``429`` (with ``Retry-After``); unknown paths and
jobs → ``404``.  Every body, success or failure, is JSON.
"""

from __future__ import annotations

import json
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Optional
from urllib.parse import parse_qs, urlsplit

from repro.errors import QueueFullError, ReproError, ServiceError
from repro.api.request import RouteRequest
from repro.api.rerouting import RerouteRequest
from repro.service.jobs import RoutingService

#: Upper bound on accepted request bodies (a layout JSON is small; a
#: multi-megabyte body is a mistake or abuse, not a route request).
MAX_BODY_BYTES = 16 * 1024 * 1024

#: Server-side cap on ``?wait=1`` long-poll blocking; when it elapses
#: the job is answered in its current (non-terminal) state with 202.
WAIT_TIMEOUT_SECONDS = 300.0


class RoutingServer(ThreadingHTTPServer):
    """A threading HTTP server bound to one :class:`RoutingService`."""

    daemon_threads = True
    allow_reuse_address = True

    def __init__(self, address, service: RoutingService, *, quiet: bool = True):
        super().__init__(address, _Handler)
        self.service = service
        self.quiet = quiet


def make_server(
    service: RoutingService, *, host: str = "127.0.0.1", port: int = 8080,
    quiet: bool = True,
) -> RoutingServer:
    """Bind a :class:`RoutingServer`; ``port=0`` picks an ephemeral port.

    The caller owns the loop: run ``server.serve_forever()`` (usually
    on a thread), stop with ``server.shutdown()``; the bound port is
    ``server.server_address[1]``.
    """
    return RoutingServer((host, port), service, quiet=quiet)


class _Handler(BaseHTTPRequestHandler):
    server_version = "repro-routing-service/1.0"
    protocol_version = "HTTP/1.1"

    # BaseHTTPRequestHandler logs every exchange to stderr; the service
    # is often run under pytest/CI where that is pure noise.
    def log_message(self, format: str, *args) -> None:  # noqa: A002 - stdlib signature
        if not self.server.quiet:  # type: ignore[attr-defined]
            super().log_message(format, *args)

    @property
    def service(self) -> RoutingService:
        return self.server.service  # type: ignore[attr-defined]

    # ------------------------------------------------------------------
    # Plumbing
    # ------------------------------------------------------------------
    def _send_json(self, status: int, payload: dict, *, headers: Optional[dict] = None) -> None:
        body = json.dumps(payload).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        for name, value in (headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)

    def _send_error_json(self, status: int, message: str, *, headers: Optional[dict] = None) -> None:
        # Error paths may answer before the declared request body was
        # read (unknown path, oversize body, malformed Content-Length);
        # on a keep-alive connection the unread bytes would be parsed
        # as the next request.  Close instead of desyncing.
        self.close_connection = True
        self._send_json(
            status, {"error": message}, headers={"Connection": "close", **(headers or {})}
        )

    def _read_body(self) -> bytes:
        raw = self.headers.get("Content-Length", "0") or "0"
        try:
            length = int(raw)
        except ValueError:
            raise ServiceError(
                f"malformed Content-Length header {raw!r}", status=400
            ) from None
        if length < 0 or length > MAX_BODY_BYTES:
            raise ServiceError(f"request body of {length} bytes refused", status=413)
        return self.rfile.read(length)

    def _parse_request(self, data) -> RouteRequest:
        if not isinstance(data, dict):
            raise ServiceError("request body must be a JSON object", status=400)
        return RouteRequest.from_dict(data)

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------
    def do_GET(self) -> None:  # noqa: N802 - stdlib casing
        self._dispatch("GET")

    def do_POST(self) -> None:  # noqa: N802 - stdlib casing
        self._dispatch("POST")

    def _dispatch(self, method: str) -> None:
        split = urlsplit(self.path)
        path = split.path.rstrip("/") or "/"
        query = parse_qs(split.query)
        try:
            if method == "GET" and path == "/healthz":
                self._handle_healthz()
            elif method == "GET" and path == "/metrics":
                self._send_json(200, self.service.snapshot())
            elif method == "GET" and path == "/strategies":
                self._handle_strategies()
            elif method == "GET" and path.startswith("/jobs/"):
                self._handle_job(path.removeprefix("/jobs/"))
            elif method == "POST" and path == "/route":
                self._handle_route(query)
            elif method == "POST" and path == "/reroute":
                self._handle_reroute(query)
            elif method == "POST" and path == "/batch":
                self._handle_batch()
            else:
                self._send_error_json(404, f"no such endpoint: {method} {path}")
        except QueueFullError as exc:
            self._send_error_json(429, str(exc), headers={"Retry-After": "1"})
        except ServiceError as exc:
            self._send_error_json(exc.status or 500, str(exc))
        except ReproError as exc:
            # Layout/validation/request construction failures are the
            # caller's malformed input, not a server fault.
            self._send_error_json(400, str(exc))
        except Exception as exc:  # noqa: BLE001 - a handler crash must still answer
            self._send_error_json(500, f"internal error: {type(exc).__name__}: {exc}")

    # ------------------------------------------------------------------
    # Endpoints
    # ------------------------------------------------------------------
    def _handle_healthz(self) -> None:
        service = self.service
        self._send_json(
            200,
            {
                "status": "ok",
                "workers": service.workers,
                "queue_limit": service.queue_limit,
                "executor": service.executor,
                "store": service.store.backend,
            },
        )

    def _handle_strategies(self) -> None:
        from repro.api.registry import DEFAULT_REGISTRY

        # The same document the CLI's `strategies --json` prints, so
        # remote callers can validate params before submitting.
        self._send_json(200, {"strategies": DEFAULT_REGISTRY.describe()})

    def _handle_job(self, job_id: str) -> None:
        if not job_id or "/" in job_id:
            self._send_error_json(404, f"malformed job id {job_id!r}")
            return
        described = self.service.describe(job_id)
        if described is None:
            self._send_error_json(404, f"unknown job {job_id!r}")
            return
        self._send_json(200, described)

    def _decode_json_body(self):
        try:
            return json.loads(self._read_body().decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise ServiceError(f"invalid JSON body: {exc}", status=400) from exc

    def _handle_route(self, query: dict) -> None:
        request = self._parse_request(self._decode_json_body())
        self._answer_job(self.service.submit(request), query)

    def _handle_reroute(self, query: dict) -> None:
        data = self._decode_json_body()
        if not isinstance(data, dict):
            raise ServiceError("reroute body must be a JSON object", status=400)
        self._answer_job(self.service.submit_reroute(RerouteRequest.from_dict(data)), query)

    def _answer_job(self, job, query: dict) -> None:
        """The shared ``/route``-style answer: optional long-poll, then JSON."""
        wait = query.get("wait", ["0"])[0] not in ("", "0", "false", "no")
        if wait and not job.finished:
            # Long-poll semantics: block up to the caller's budget
            # (capped server-side), then answer with whatever state the
            # job is in — a still-running job is a 202, not an error.
            raw_timeout = query.get("timeout", [None])[0]
            try:
                budget = (
                    WAIT_TIMEOUT_SECONDS
                    if raw_timeout is None
                    else min(float(raw_timeout), WAIT_TIMEOUT_SECONDS)
                )
            except ValueError:
                raise ServiceError(
                    f"malformed timeout parameter {raw_timeout!r}", status=400
                ) from None
            self.service.wait_job(job, timeout=budget)
        # describe_job, not describe: a cache-hit job is terminal at
        # birth and a concurrent submission may prune it from the id
        # table before this line — the held object is always valid.
        self._send_json(
            200 if job.finished else 202, self.service.describe_job(job)
        )

    def _handle_batch(self) -> None:
        data = self._decode_json_body()
        if isinstance(data, dict):
            data = data.get("requests")
        if not isinstance(data, list):
            raise ServiceError(
                'batch body must be a JSON list or {"requests": [...]}', status=400
            )
        requests = [self._parse_request(entry) for entry in data]
        jobs = self.service.submit_many(requests)
        payload = {
            "jobs": [
                self.service.describe_job(job, include_result=False) for job in jobs
            ]
        }
        self._send_json(202, payload)
