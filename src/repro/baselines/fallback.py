"""Quick-probe-then-maze-search, the production pattern of the era.

"As a result, some routers use Hightower's algorithm for a quick first
try, and if it fails, then the full power of the Lee–Moore maze search
algorithm is used."

Here the fallback is the paper's own admissible line-search A* (the
gridless equivalent of full Lee–Moore power); experiment E9 sweeps
obstacle density to show where the probe stops sufficing.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.baselines.hightower import HightowerResult, hightower_route
from repro.core.costs import CostModel
from repro.core.escape import EscapeMode
from repro.core.pathfinder import PathRequest, find_path
from repro.core.route import RoutePath, TargetSet
from repro.geometry.point import Point
from repro.geometry.raytrace import ObstacleSet
from repro.search.stats import SearchStats


@dataclass
class FallbackResult:
    """A connection plus which engine produced it.

    Attributes
    ----------
    engine:
        ``"hightower"`` when the probe succeeded, ``"line-search-a*"``
        when the fallback ran.
    probe:
        The probe attempt (kept for its counters either way).
    search_stats:
        A* telemetry when the fallback ran, else ``None``.
    """

    path: RoutePath
    engine: str
    probe: HightowerResult
    search_stats: Optional[SearchStats] = None


def route_with_fallback(
    obstacles: ObstacleSet,
    source: Point,
    target: Point,
    *,
    max_level: int = 6,
    max_lines: int = 256,
    mode: EscapeMode = EscapeMode.FULL,
    cost_model: Optional[CostModel] = None,
) -> FallbackResult:
    """Try the line probe; fall back to admissible line-search A*.

    Raises :class:`repro.errors.UnroutableError` only when *no* legal
    route exists at all (the fallback is complete).
    """
    probe = hightower_route(
        obstacles, source, target, max_level=max_level, max_lines=max_lines
    )
    if probe.found:
        assert probe.path is not None
        return FallbackResult(probe.path, "hightower", probe)

    request = PathRequest(
        obstacles=obstacles,
        sources=[(source, 0.0)],
        targets=TargetSet(points=[target]),
        mode=mode,
    )
    if cost_model is not None:
        request.cost_model = cost_model
    outcome = find_path(request)
    return FallbackResult(outcome.path, "line-search-a*", probe, outcome.stats)
