"""Net-ordering strategies for the sequential baseline.

"Independent net routing also eliminates the problem of net ordering
which can consume a great deal of computing resources in itself."

These are the classical orderings that consumed those resources; they
exist so experiment E7 (and downstream users comparing against
sequential flows) can do better than arbitrary order.  All orderings
are deterministic for a given layout (and seed, where applicable).
"""

from __future__ import annotations

import random
from typing import Sequence

from repro.layout.layout import Layout


def netlist_order(layout: Layout) -> list[str]:
    """The order nets were added — the do-nothing baseline."""
    return [net.name for net in layout.nets]


def by_hpwl(layout: Layout, *, ascending: bool = True) -> list[str]:
    """Shortest (or longest) half-perimeter first.

    Short-first routes easy nets before the surface fills up;
    long-first gives sprawling nets first pick of the open surface.
    Both were common folk wisdom; neither dominates.
    """
    names = sorted(
        layout.nets, key=lambda net: (net.hpwl, net.name), reverse=not ascending
    )
    return [net.name for net in names]


def by_pin_count(layout: Layout, *, ascending: bool = False) -> list[str]:
    """Most-pins-first (default): multi-terminal nets get first pick."""
    names = sorted(
        layout.nets, key=lambda net: (net.pin_count, net.name), reverse=not ascending
    )
    return [net.name for net in names]


def shuffled(layout: Layout, *, seed: int = 0) -> list[str]:
    """A seeded random order (for order-sensitivity experiments)."""
    names = [net.name for net in layout.nets]
    random.Random(seed).shuffle(names)
    return names


ALL_STRATEGIES: dict[str, object] = {
    "netlist": netlist_order,
    "hpwl-ascending": lambda layout: by_hpwl(layout, ascending=True),
    "hpwl-descending": lambda layout: by_hpwl(layout, ascending=False),
    "pins-descending": by_pin_count,
}


def best_sequential_order(
    layout: Layout,
    candidate_orders: Sequence[Sequence[str]] | None = None,
):
    """Route under several orders, keep the best.

    This is exactly the computation the paper says independent routing
    eliminates — provided here to make that cost measurable.  Returns
    ``(order, GlobalRoute)`` minimizing (failures, total length).
    """
    from repro.baselines.sequential import SequentialRouter

    if candidate_orders is None:
        candidate_orders = [strategy(layout) for strategy in ALL_STRATEGIES.values()]

    router = SequentialRouter(layout)
    best = None
    for order in candidate_orders:
        route = router.route_all(order)
        key = (len(route.failed_nets), route.total_length)
        if best is None or key < best[0]:
            best = (key, list(order), route)
    assert best is not None
    return best[1], best[2]
