"""Hightower's line-probe router (1969).

From the Background section: Hightower "proposed using line segments
as the representation instead of a large grid of points and this
greatly improved the efficiency of the algorithm but caused it to fail
to find some connections which could be found by a Lee–Moore router."

This is that algorithm, kept deliberately faithful to its character:
bidirectional escape lines, a handful of escape points per blocked
line, no optimality guarantee, and genuine failures on hard instances
— which is exactly what experiment E9 measures when pairing it with an
admissible fallback.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.core.route import RoutePath
from repro.geometry.point import ALL_DIRECTIONS, Point
from repro.geometry.raytrace import ObstacleSet
from repro.geometry.segment import Segment


@dataclass
class ProbeLine:
    """One escape line: a maximal clear segment through an origin point."""

    seg: Segment
    origin: Point
    parent: Optional["ProbeLine"] = None
    level: int = 0

    @property
    def is_horizontal(self) -> bool:
        """Orientation of the probe."""
        return self.seg.is_horizontal


@dataclass
class HightowerResult:
    """Outcome of a line-probe attempt.

    ``path`` is ``None`` on failure — an expected outcome for this
    algorithm, not an error.
    """

    path: Optional[RoutePath]
    lines_created: int = 0
    intersections_tested: int = 0
    levels_used: int = 0
    escape_points: list[Point] = field(default_factory=list)

    @property
    def found(self) -> bool:
        """Whether a connection was made."""
        return self.path is not None


def hightower_route(
    obstacles: ObstacleSet,
    source: Point,
    target: Point,
    *,
    max_level: int = 6,
    max_lines: int = 256,
) -> HightowerResult:
    """Attempt a connection with bidirectional line probes.

    Parameters
    ----------
    max_level:
        Escape-line generations per side before giving up.
    max_lines:
        Total probe-line budget across both sides.
    """
    result = HightowerResult(path=None)
    if source == target:
        result.path = RoutePath((source,))
        return result

    side_s = _Side(obstacles, source, target, result)
    side_t = _Side(obstacles, target, source, result)
    if not side_s.seed() or not side_t.seed():
        return result  # an endpoint admitted no clear probe at all

    for level in range(max_level + 1):
        result.levels_used = level
        crossing = _find_crossing(side_s, side_t, result)
        if crossing is not None:
            point, line_s, line_t = crossing
            points = _walk_back(point, line_s)[::-1] + _walk_back(point, line_t)[1:]
            result.path = RoutePath(tuple(_compress(points)))
            return result
        if result.lines_created >= max_lines or level == max_level:
            break
        # Expand the smaller side first — the classical balance rule.
        for side in sorted((side_s, side_t), key=lambda s: len(s.lines)):
            side.expand(level, max_lines)
    return result


class _Side:
    """Probe lines emanating from one endpoint."""

    def __init__(
        self, obstacles: ObstacleSet, origin: Point, toward: Point, result: HightowerResult
    ):
        self.obstacles = obstacles
        self.origin = origin
        self.toward = toward
        self.result = result
        self.lines: list[ProbeLine] = []
        self.frontier: list[ProbeLine] = []
        self._visited_tracks: set[tuple[bool, int]] = set()

    def seed(self) -> bool:
        """Create the level-0 probes through the endpoint."""
        for line in self._probes_through(self.origin, parent=None, level=0):
            self._register(line)
        return bool(self.lines)

    def expand(self, level: int, max_lines: int) -> None:
        """Generate the next generation of escape lines."""
        frontier, self.frontier = self.frontier, []
        for line in frontier:
            for escape in self._escape_points(line):
                if self.result.lines_created >= max_lines:
                    return
                self.result.escape_points.append(escape)
                for child in self._probes_through(escape, parent=line, level=level + 1):
                    self._register(child)

    def _register(self, line: ProbeLine) -> None:
        key = (line.is_horizontal, line.seg.track)
        if key in self._visited_tracks:
            return
        self._visited_tracks.add(key)
        self.lines.append(line)
        self.frontier.append(line)
        self.result.lines_created += 1

    def _probes_through(
        self, point: Point, *, parent: Optional[ProbeLine], level: int
    ) -> list[ProbeLine]:
        """The horizontal and vertical maximal clear runs through *point*."""
        probes: list[ProbeLine] = []
        if not self.obstacles.point_free(point):
            return probes
        reaches = {d: self.obstacles.first_hit(point, d).reach for d in ALL_DIRECTIONS}
        horizontal = Segment(reaches[ALL_DIRECTIONS[1]], reaches[ALL_DIRECTIONS[0]])
        vertical = Segment(reaches[ALL_DIRECTIONS[3]], reaches[ALL_DIRECTIONS[2]])
        if not horizontal.is_degenerate:
            probes.append(ProbeLine(horizontal, point, parent, level))
        if not vertical.is_degenerate:
            probes.append(ProbeLine(vertical, point, parent, level))
        return probes

    def _escape_points(self, line: ProbeLine) -> list[Point]:
        """Candidate perpendicular-probe origins along *line*.

        Hightower's insight: only a few points matter — the blocked
        ends themselves (a perpendicular there hugs around the blocking
        cell) and the projection of the goal onto the line (the direct
        move toward the target).
        """
        points: list[Point] = []
        if line.is_horizontal:
            y = line.seg.track
            projected = Point(line.seg.span.clamp(self.toward.x), y)
        else:
            x = line.seg.track
            projected = Point(x, line.seg.span.clamp(self.toward.y))
        points.append(projected)
        points.append(line.seg.a)
        points.append(line.seg.b)
        deduped: list[Point] = []
        for p in points:
            if p != line.origin and p not in deduped:
                deduped.append(p)
        return deduped


def _find_crossing(
    side_s: "_Side", side_t: "_Side", result: HightowerResult
) -> Optional[tuple[Point, ProbeLine, ProbeLine]]:
    """First intersection between the two sides' probe lines."""
    for line_s in side_s.lines:
        for line_t in side_t.lines:
            result.intersections_tested += 1
            point = line_s.seg.crossing_point(line_t.seg)
            if point is None:
                shared = line_s.seg.overlap(line_t.seg)
                if shared is not None:
                    point = shared.a
            if point is not None:
                return point, line_s, line_t
    return None


def _walk_back(point: Point, line: ProbeLine) -> list[Point]:
    """Bend points from *point* back to the line's endpoint origin."""
    points = [point]
    current: Optional[ProbeLine] = line
    while current is not None:
        if points[-1] != current.origin:
            points.append(current.origin)
        current = current.parent
    return points


def _compress(points: list[Point]) -> list[Point]:
    """Drop repeated and collinear interior points."""
    cleaned: list[Point] = []
    for p in points:
        if not cleaned or cleaned[-1] != p:
            cleaned.append(p)
    if len(cleaned) <= 2:
        return cleaned
    out = [cleaned[0]]
    for prev, here, nxt in zip(cleaned, cleaned[1:], cleaned[2:]):
        if not ((prev.x == here.x == nxt.x) or (prev.y == here.y == nxt.y)):
            out.append(here)
    out.append(cleaned[-1])
    return out
