"""Baseline routers the paper positions itself against.

* :mod:`repro.baselines.grid` / :mod:`repro.baselines.leemoore` — the
  grid-expansion family: the classic Lee–Moore wavefront and the
  grid-based A*, both "a special case of the general search algorithm".
* :mod:`repro.baselines.hightower` — the 1969 line-probe algorithm:
  fast, grid-free, and incomplete.
* :mod:`repro.baselines.fallback` — the production pattern from the
  Background section: "Hightower's algorithm for a quick first try,
  and if it fails, then the full power of the ... maze search".
* :mod:`repro.baselines.sequential` — the classical alternative to
  independent net routing: nets routed one after another, each
  becoming an obstacle for the next.
"""

from repro.baselines.grid import GridProblem, RoutingGrid
from repro.baselines.leemoore import grid_astar_route, lee_moore_route, lee_wavefront
from repro.baselines.hightower import HightowerResult, hightower_route
from repro.baselines.fallback import FallbackResult, route_with_fallback
from repro.baselines.sequential import SequentialRouter

__all__ = [
    "FallbackResult",
    "GridProblem",
    "HightowerResult",
    "RoutingGrid",
    "SequentialRouter",
    "grid_astar_route",
    "hightower_route",
    "lee_moore_route",
    "lee_wavefront",
    "route_with_fallback",
]
