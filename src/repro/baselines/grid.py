"""The rasterized routing grid behind the Lee–Moore baselines.

"The most straightforward way of generating successors is to divide
the routing surface up into a grid.  The routing surface can then be
modelled by setting the grid spacing equal to the minimum wire
spacing."

A :class:`RoutingGrid` rasterizes an obstacle set at a given pitch;
:class:`GridProblem` exposes it to the shared search engine as
4-neighbour unit-cost successors — which is all it takes for the
engine to *become* a Lee–Moore router (h = 0, FIFO) or a grid A*
(h = Manhattan distance).
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from repro.errors import RoutingError
from repro.geometry.point import Point
from repro.geometry.raytrace import ObstacleSet
from repro.search.problem import SearchProblem

GridCoord = tuple[int, int]


class RoutingGrid:
    """A boolean raster of the routing surface.

    Grid node ``(i, j)`` sits at plane point
    ``(bound.x0 + i * pitch, bound.y0 + j * pitch)``.  A node is
    blocked when it falls strictly inside an obstacle — cell
    boundaries stay routable, matching the gridless semantics so that
    both routers solve the identical problem.
    """

    def __init__(self, obstacles: ObstacleSet, *, pitch: int = 1):
        if pitch < 1:
            raise RoutingError(f"grid pitch must be >= 1, got {pitch}")
        self.obstacles = obstacles
        self.pitch = pitch
        bound = obstacles.bound
        self.origin = Point(bound.x0, bound.y0)
        self.cols = bound.width // pitch + 1
        self.rows = bound.height // pitch + 1
        self.blocked = self._rasterize()

    def _rasterize(self) -> np.ndarray:
        blocked = np.zeros((self.cols, self.rows), dtype=bool)
        for rect in self.obstacles.rects:
            # Strict interior: first grid line strictly right of x0 etc.
            i_lo = _first_index_above(rect.x0, self.origin.x, self.pitch)
            i_hi = _last_index_below(rect.x1, self.origin.x, self.pitch)
            j_lo = _first_index_above(rect.y0, self.origin.y, self.pitch)
            j_hi = _last_index_below(rect.y1, self.origin.y, self.pitch)
            if i_lo > i_hi or j_lo > j_hi:
                continue
            i_lo, i_hi = max(i_lo, 0), min(i_hi, self.cols - 1)
            j_lo, j_hi = max(j_lo, 0), min(j_hi, self.rows - 1)
            blocked[i_lo : i_hi + 1, j_lo : j_hi + 1] = True
        return blocked

    # ------------------------------------------------------------------
    # Coordinate mapping
    # ------------------------------------------------------------------
    def to_grid(self, p: Point) -> GridCoord:
        """Map a plane point onto the grid.

        Raises :class:`RoutingError` if the point is off-pitch or
        outside the surface — grid routers can only see grid points,
        which is precisely the limitation the gridless router removes.
        """
        dx = p.x - self.origin.x
        dy = p.y - self.origin.y
        if dx % self.pitch or dy % self.pitch:
            raise RoutingError(f"point {p} is not on the pitch-{self.pitch} grid")
        coord = (dx // self.pitch, dy // self.pitch)
        if not (0 <= coord[0] < self.cols and 0 <= coord[1] < self.rows):
            raise RoutingError(f"point {p} lies outside the routing surface")
        return coord

    def to_plane(self, coord: GridCoord) -> Point:
        """Map a grid coordinate back to the plane."""
        return Point(
            self.origin.x + coord[0] * self.pitch, self.origin.y + coord[1] * self.pitch
        )

    def is_free(self, coord: GridCoord) -> bool:
        """Whether the grid node is routable."""
        i, j = coord
        return 0 <= i < self.cols and 0 <= j < self.rows and not self.blocked[i, j]

    @property
    def node_count(self) -> int:
        """Total grid nodes (the memory cost the paper criticizes)."""
        return self.cols * self.rows

    def neighbors(self, coord: GridCoord) -> list[GridCoord]:
        """The free 4-neighbours of a node."""
        i, j = coord
        out: list[GridCoord] = []
        for ni, nj in ((i + 1, j), (i - 1, j), (i, j + 1), (i, j - 1)):
            if 0 <= ni < self.cols and 0 <= nj < self.rows and not self.blocked[ni, nj]:
                out.append((ni, nj))
        return out


def _first_index_above(coord: int, origin: int, pitch: int) -> int:
    """Smallest grid index whose plane coordinate is strictly > coord."""
    return (coord - origin) // pitch + 1


def _last_index_below(coord: int, origin: int, pitch: int) -> int:
    """Largest grid index whose plane coordinate is strictly < coord."""
    offset = coord - origin
    if offset % pitch == 0:
        return offset // pitch - 1
    return offset // pitch


class GridProblem(SearchProblem):
    """Grid routing as a search problem for the shared engine.

    "If this model is used with h(n) defined to be 0 then it is
    equivalent to the Lee–Moore algorithm."  ``use_heuristic`` toggles
    exactly that.
    """

    def __init__(
        self,
        grid: RoutingGrid,
        sources: Iterable[GridCoord],
        target: GridCoord,
        *,
        use_heuristic: bool = True,
    ):
        self.grid = grid
        self._sources = list(sources)
        self.target = target
        self.use_heuristic = use_heuristic
        for coord in self._sources:
            if not grid.is_free(coord):
                raise RoutingError(f"grid source {coord} is blocked")
        if not grid.is_free(target):
            raise RoutingError(f"grid target {target} is blocked")

    def start_states(self) -> Iterable[tuple[GridCoord, float]]:
        return [(coord, 0.0) for coord in self._sources]

    def is_goal(self, state: GridCoord) -> bool:
        return state == self.target

    def successors(self, state: GridCoord) -> Iterable[tuple[GridCoord, float]]:
        pitch = float(self.grid.pitch)
        return [(n, pitch) for n in self.grid.neighbors(state)]

    def heuristic(self, state: GridCoord) -> float:
        if not self.use_heuristic:
            return 0.0
        return float(
            (abs(state[0] - self.target[0]) + abs(state[1] - self.target[1]))
            * self.grid.pitch
        )
