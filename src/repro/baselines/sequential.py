"""The classical sequential (nets-as-obstacles) router.

"Classically, nets have been ordered and routed one after another.
With this approach nets must avoid other nets as well as cells,
greatly increasing the search time.  Independent net routing also
eliminates the problem of net ordering which can consume a great deal
of computing resources in itself."

This baseline routes nets in a caller-chosen order; every routed wire
is inflated by a clearance margin into a thin blocking rect for all
subsequent nets.  It exists so experiment E7 can quantify both costs
the paper names: the extra search effort and the order sensitivity
(different orders produce different wirelength and different failure
sets).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Optional, Sequence

from repro.errors import RoutingError, UnroutableError
from repro.core.costs import CostModel, WirelengthCost
from repro.core.escape import EscapeMode
from repro.core.route import GlobalRoute
from repro.core.steiner import route_net
from repro.geometry.rect import Rect
from repro.layout.layout import Layout
from repro.search.engine import Order


@dataclass(frozen=True)
class SequentialConfig:
    """Knobs of the sequential baseline.

    Attributes
    ----------
    clearance:
        Inflation margin turning routed wires into obstacles; models
        single-layer wire spacing.  Must be >= 1 so that crossing an
        earlier net is impossible, as in a classical single-layer Lee
        router.
    """

    clearance: int = 1
    mode: EscapeMode = EscapeMode.FULL
    order: Order = Order.A_STAR
    node_limit: Optional[int] = None


class SequentialRouter:
    """Routes nets one at a time, each becoming an obstacle."""

    def __init__(
        self,
        layout: Layout,
        config: SequentialConfig = SequentialConfig(),
        *,
        cost_model: Optional[CostModel] = None,
    ):
        if config.clearance < 1:
            raise RoutingError("sequential clearance must be >= 1")
        self.layout = layout
        self.config = config
        self.cost_model = cost_model if cost_model is not None else WirelengthCost()

    def route_all(
        self,
        net_order: Optional[Sequence[str]] = None,
        *,
        on_unroutable: str = "skip",
    ) -> GlobalRoute:
        """Route nets in *net_order* (default: netlist order).

        Unroutable nets are recorded in ``failed_nets`` by default —
        failures under unlucky orders are the phenomenon this baseline
        exists to exhibit — or re-raised with ``on_unroutable="raise"``.
        """
        if on_unroutable not in ("raise", "skip"):
            raise RoutingError(f"on_unroutable must be 'raise' or 'skip', not {on_unroutable!r}")
        names = list(net_order) if net_order is not None else [n.name for n in self.layout.nets]
        obstacles = self.layout.obstacles()  # fresh set this router may mutate
        route = GlobalRoute()
        started = time.perf_counter()
        for name in names:
            net = self.layout.net(name)
            try:
                tree = route_net(
                    net,
                    obstacles,
                    cost_model=self.cost_model,
                    mode=self.config.mode,
                    order=self.config.order,
                    node_limit=self.config.node_limit,
                )
            except UnroutableError:
                if on_unroutable == "raise":
                    raise
                route.failed_nets.append(name)
                continue
            route.trees[name] = tree
            route.stats = route.stats.merged_with(tree.stats)
            obstacles.add_many(
                _wire_obstacle(seg, self.config.clearance) for seg in tree.segments
            )
        route.stats.elapsed_seconds = time.perf_counter() - started
        return route


def _wire_obstacle(seg, clearance: int) -> Rect:
    """A routed wire as a blocking rect.

    Inflation is applied only perpendicular to the wire so that later
    nets may still attach flush against the wire's end coordinates;
    crossing or running alongside within the clearance is blocked,
    touching the clearance envelope itself is allowed (open-interior
    blocking).
    """
    if seg.is_horizontal:
        return Rect(seg.a.x, seg.a.y - clearance, seg.b.x, seg.a.y + clearance)
    return Rect(seg.a.x - clearance, seg.a.y, seg.a.x + clearance, seg.b.y)
