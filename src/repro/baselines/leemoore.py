"""Lee–Moore grid routing — "a special case of the general search".

Three entry points:

* :func:`lee_moore_route` — the classic algorithm expressed through the
  shared engine: FIFO order, zero heuristic, unit grid costs.
* :func:`grid_astar_route` — same grid, A* order with the Manhattan
  heuristic (the strongest grid-based competitor).
* :func:`lee_wavefront` — an independent, textbook two-list wavefront
  implementation used by experiment E1 to certify that the engine
  specialization really *is* Lee–Moore (identical distance labels and
  wavefront sets).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Optional

from repro.errors import UnroutableError
from repro.baselines.grid import GridCoord, GridProblem, RoutingGrid
from repro.core.route import RoutePath
from repro.geometry.point import Point
from repro.geometry.raytrace import ObstacleSet
from repro.search.engine import Order, search
from repro.search.stats import SearchStats


@dataclass
class GridRouteResult:
    """A grid route plus its telemetry."""

    path: RoutePath
    stats: SearchStats
    grid_nodes: int


def lee_moore_route(
    obstacles: ObstacleSet,
    source: Point,
    target: Point,
    *,
    pitch: int = 1,
    node_limit: Optional[int] = None,
) -> GridRouteResult:
    """Route with the Lee–Moore wavefront (BFS on the unit grid).

    On a uniform grid, FIFO expansion is exactly the Lee wavefront:
    nodes are labelled in non-decreasing distance order, and the first
    time the target is reached the path is minimal.
    """
    return _grid_route(
        obstacles, source, target, pitch=pitch, node_limit=node_limit, order=Order.BREADTH_FIRST
    )


def grid_astar_route(
    obstacles: ObstacleSet,
    source: Point,
    target: Point,
    *,
    pitch: int = 1,
    node_limit: Optional[int] = None,
) -> GridRouteResult:
    """Route on the grid with A* (Manhattan heuristic).

    Identical successor model to Lee–Moore; only the OPEN order and
    heuristic differ.  Comparing its node counts against both
    Lee–Moore and the gridless router isolates the two effects the
    paper combines (heuristic guidance and line-segment successors).
    """
    return _grid_route(
        obstacles, source, target, pitch=pitch, node_limit=node_limit, order=Order.A_STAR
    )


def _grid_route(
    obstacles: ObstacleSet,
    source: Point,
    target: Point,
    *,
    pitch: int,
    node_limit: Optional[int],
    order: Order,
) -> GridRouteResult:
    grid = RoutingGrid(obstacles, pitch=pitch)
    problem = GridProblem(
        grid,
        [grid.to_grid(source)],
        grid.to_grid(target),
        use_heuristic=(order is Order.A_STAR),
    )
    result = search(problem, order, node_limit=node_limit)
    if not result.found:
        raise UnroutableError(
            f"grid route {source} -> {target} failed ({result.stats.termination})",
            partial=result.stats,
        )
    points = [grid.to_plane(coord) for coord in result.path]
    path = RoutePath(tuple(_compress(points)), cost=result.cost)
    return GridRouteResult(path, result.stats, grid.node_count)


def _compress(points: list[Point]) -> list[Point]:
    """Merge unit steps into maximal straight segments."""
    if len(points) <= 2:
        return points
    out = [points[0]]
    for prev, here, nxt in zip(points, points[1:], points[2:]):
        if not ((prev.x == here.x == nxt.x) or (prev.y == here.y == nxt.y)):
            out.append(here)
    out.append(points[-1])
    return out


@dataclass
class WavefrontResult:
    """Output of the textbook wavefront: labels and expansion order."""

    distance: dict[GridCoord, int]
    expansion_order: list[GridCoord]
    path: Optional[list[GridCoord]]


def lee_wavefront(grid: RoutingGrid, source: GridCoord, target: GridCoord) -> WavefrontResult:
    """A from-scratch, two-list Lee–Moore wavefront (the E1 oracle).

    Implemented exactly as Lee 1961 describes: the current wavefront is
    expanded into the next one, every reached node is labelled with its
    distance, and the trace-back follows decreasing labels from the
    target.  No shared search machinery is used, so agreement with
    :func:`lee_moore_route` is meaningful evidence of the special-case
    claim.
    """
    if not grid.is_free(source) or not grid.is_free(target):
        raise UnroutableError(f"wavefront endpoints blocked: {source} -> {target}")
    distance: dict[GridCoord, int] = {source: 0}
    expansion_order: list[GridCoord] = []
    wavefront = deque([source])
    found = False
    while wavefront and not found:
        next_front: deque[GridCoord] = deque()
        while wavefront:
            node = wavefront.popleft()
            expansion_order.append(node)
            for neighbor in grid.neighbors(node):
                if neighbor in distance:
                    continue
                distance[neighbor] = distance[node] + 1
                if neighbor == target:
                    found = True
                next_front.append(neighbor)
        wavefront = next_front

    if target not in distance:
        return WavefrontResult(distance, expansion_order, None)

    # Trace back: from the target, repeatedly step to any neighbour
    # labelled one less.
    path = [target]
    node = target
    while node != source:
        label = distance[node]
        for neighbor in grid.neighbors(node):
            if distance.get(neighbor) == label - 1:
                node = neighbor
                break
        else:  # pragma: no cover - labels guarantee progress
            raise UnroutableError("wavefront trace-back failed")
        path.append(node)
    path.reverse()
    return WavefrontResult(distance, expansion_order, path)
