"""Canonical hashing: one content-addressed identity per routing run.

Two :class:`~repro.api.request.RouteRequest` objects that describe the
same work — same placed layout, same router knobs, same strategy and
parameters — must map to the same key, however they were built (inline
layout vs. file reference, dict-ordering of parameters, separate
processes).  That key is what the service's result cache, the batch
facade's duplicate-collapse, and any future shard router all hang off.

The key is the SHA-256 of a *canonical JSON* rendering (sorted keys,
no whitespace) of::

    {layout fingerprint, router config, strategy, strategy_params,
     on_unroutable, verify, detail}

Covered fields and why:

* the **layout content** (not its path — two paths to byte-identical
  layouts share a key, and editing a referenced file changes it);
* the **full router config** — conservative on purpose: perf-only
  knobs like ``workers`` or ``ray_cache`` are byte-identity-preserving
  for most strategies, but ``prune_clean_nets`` is not for negotiated
  routing (see ``docs/scenarios.md``), so the whole config participates
  and a cache can never serve a result the knobs would not reproduce;
* ``strategy`` + ``strategy_params`` (nested structures canonicalize
  recursively via sorted-key JSON);
* ``on_unroutable``, ``verify``, ``detail`` — they change what the
  :class:`~repro.api.result.RouteResult` contains.

Excluded: ``report`` (a presentation hint that never reaches the
result) and ``layout_path`` (superseded by the content fingerprint).

Requests whose ``strategy_params`` hold non-JSON values (live objects a
library caller slipped in) are not canonicalizable; callers that need
a best-effort answer catch :class:`~repro.errors.RoutingError` and
treat the request as unique.
"""

from __future__ import annotations

import hashlib
import json
from typing import TYPE_CHECKING, Any, Optional

from repro.errors import RoutingError
from repro.layout.io import layout_to_dict

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.api.request import RouteRequest
    from repro.layout.layout import Layout


def canonical_json(value: Any) -> str:
    """Render *value* as order-independent, whitespace-free JSON.

    Dict keys are sorted at every nesting level, so two dicts equal as
    mappings render identically regardless of insertion order.  Values
    that JSON cannot express raise :class:`RoutingError`.
    """
    try:
        return json.dumps(
            value, sort_keys=True, separators=(",", ":"), allow_nan=False
        )
    except (TypeError, ValueError) as exc:
        raise RoutingError(f"value is not canonicalizable as JSON: {exc}") from exc


def _sha256(text: str) -> str:
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def layout_fingerprint(layout: "Layout") -> str:
    """SHA-256 of the layout's canonical JSON serialization.

    Stable across processes and across save/load round-trips: the
    fingerprint of a layout equals the fingerprint of
    ``layout_from_json(layout_to_json(layout))``.
    """
    return _sha256(canonical_json(layout_to_dict(layout)))


def request_cache_key(
    request: "RouteRequest", *, layout: Optional["Layout"] = None
) -> str:
    """The content-addressed identity of *request*'s routing work.

    Two requests with equal keys produce interchangeable
    :class:`~repro.api.result.RouteResult` objects (see the module
    docstring for exactly which fields participate).  *layout*
    short-circuits :meth:`~repro.api.request.RouteRequest.resolve_layout`
    for callers that already hold the parsed layout; file references
    are otherwise read here, so a missing file raises.
    """
    from repro.api.request import config_to_dict

    if layout is None:
        layout = request.resolve_layout()
    payload = {
        "layout": layout_fingerprint(layout),
        "config": config_to_dict(request.config),
        "strategy": request.strategy,
        "strategy_params": dict(request.strategy_params),
        "on_unroutable": request.on_unroutable,
        "verify": request.verify,
        "detail": request.detail,
    }
    return _sha256(canonical_json(payload))
