"""The routing pipeline: RouteRequest in, RouteResult out.

:class:`RoutingPipeline` is the one execution path behind every public
frontend — the CLI, the batch facade, library callers, and any future
service.  It resolves the layout, validates it, builds the router,
resolves the strategy from the registry, runs it, and folds
verification and detailed routing into one :class:`RouteResult` with
per-phase timings.

:meth:`RoutingPipeline.reroute` is the incremental sibling: it applies
a :class:`~repro.incremental.delta.LayoutDelta` to a previously routed
base request, classifies the prior routes (kept / ripped / new — see
:mod:`repro.incremental.dirty`), and hands the warm start to the
strategy's ``run_incremental`` so only the dirty nets are routed.  The
back half — verification, detail, result assembly — is shared, so an
incremental :class:`RouteResult` is indistinguishable in shape from a
from-scratch one.
"""

from __future__ import annotations

import time
from typing import TYPE_CHECKING, Optional

from repro.analysis.metrics import summarize_route
from repro.analysis.verify import verify_global_route
from repro.errors import RoutingError
from repro.core.router import GlobalRouter
from repro.layout.layout import Layout
from repro.layout.validate import validate_layout
from repro.incremental.engine import plan_reroute
from repro.api.registry import DEFAULT_REGISTRY, StrategyOutcome, StrategyRegistry
from repro.api.request import RouteRequest
from repro.api.result import CongestionSummary, DetailSummary, RouteResult

# Installing the built-in strategies is a side effect of importing the
# strategies module; the pipeline must never see an empty registry.
import repro.api.strategies  # noqa: F401

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.api.rerouting import RerouteRequest


class RoutingPipeline:
    """Executes :class:`~repro.api.request.RouteRequest` objects.

    Parameters
    ----------
    registry:
        Strategy registry to resolve names from; defaults to the
        process-wide :data:`~repro.api.registry.DEFAULT_REGISTRY` with
        the built-ins installed.
    """

    def __init__(self, registry: Optional[StrategyRegistry] = None):
        self.registry = registry if registry is not None else DEFAULT_REGISTRY

    def run(self, request: RouteRequest, *, layout: Optional[Layout] = None) -> RouteResult:
        """Execute *request* and return the unified result.

        *layout* short-circuits :meth:`RouteRequest.resolve_layout` for
        callers that already hold the parsed layout (the CLI resolves
        once and reuses it for rendering).
        """
        total_started = time.perf_counter()
        timings: dict[str, float] = {}

        if layout is None:
            layout = request.resolve_layout()
        validate_layout(layout)
        # Resolve the strategy before routing so an unknown name or bad
        # params fail fast, not after minutes of first-pass work.
        strategy = self.registry.create(request.strategy, request.strategy_params)
        router = GlobalRouter(layout, request.config)

        route_started = time.perf_counter()
        outcome = strategy.run(router, request)
        timings["route"] = time.perf_counter() - route_started
        return self._finish(request, layout, outcome, timings, total_started)

    def reroute(
        self,
        request: "RerouteRequest",
        *,
        prev_result: RouteResult,
        base_layout: Optional[Layout] = None,
    ) -> RouteResult:
        """Incrementally re-route *request*'s base after its delta.

        *prev_result* must be the base request's result (the service
        resolves it from the content-addressed cache; library callers
        pass whatever they kept).  *base_layout* short-circuits
        :meth:`RouteRequest.resolve_layout` on the base request.

        The returned result describes the *mutated* layout and carries
        extra timing keys: a ``plan`` phase (delta application +
        dirty-set classification) and the ``kept_nets`` /
        ``ripped_nets`` / ``new_nets`` / ``removed_nets`` counts.
        """
        total_started = time.perf_counter()
        timings: dict[str, float] = {}

        base = request.base
        if base_layout is None:
            base_layout = base.resolve_layout()
        # Resolve the strategy first: an unknown name — or one that
        # cannot warm-start at all — must fail before any routing work.
        strategy = self.registry.create(base.strategy, base.strategy_params)
        if not hasattr(strategy, "run_incremental"):
            raise RoutingError(
                f"strategy {base.strategy!r} does not support incremental "
                f"rerouting (no run_incremental); route the mutated layout "
                f"from scratch instead"
            )

        plan_started = time.perf_counter()
        mutated_layout, warm = plan_reroute(
            prev_result.route, base_layout, request.delta
        )
        validate_layout(mutated_layout)
        timings["plan"] = time.perf_counter() - plan_started
        # The classification counts ride in the timings block (floats,
        # like the ray-cache counters) so every reroute result reports
        # how much work the delta actually caused.
        classification = warm.classification
        timings["kept_nets"] = float(len(classification.kept))
        timings["ripped_nets"] = float(len(classification.ripped))
        timings["new_nets"] = float(len(classification.new))
        timings["removed_nets"] = float(len(classification.removed))

        mutated_request = base.with_layout(mutated_layout)
        router = GlobalRouter(mutated_layout, mutated_request.config)
        route_started = time.perf_counter()
        outcome = strategy.run_incremental(router, mutated_request, warm)
        timings["route"] = time.perf_counter() - route_started
        return self._finish(
            mutated_request, mutated_layout, outcome, timings, total_started
        )

    def _finish(
        self,
        request: RouteRequest,
        layout: Layout,
        outcome: StrategyOutcome,
        timings: dict[str, float],
        total_started: float,
    ) -> RouteResult:
        """The shared back half: telemetry, verify, detail, assembly."""
        # Ray-cache statistics ride along in the timings block so every
        # RouteResult carries the perf telemetry the bench harness (and
        # BENCH_hotpath.json) tracks.  Counts are floats for JSON
        # uniformity with the phase timings.  Iterating strategies
        # provide run-wide totals via `search_stats` (the returned
        # route's own stats stop accumulating at the best iteration).
        route_stats = (
            outcome.search_stats if outcome.search_stats is not None else outcome.route.stats
        )
        timings["ray_cache_hits"] = float(route_stats.cache_hits)
        timings["ray_cache_misses"] = float(route_stats.cache_misses)
        timings["ray_cache_hit_rate"] = route_stats.cache_hit_rate

        violations: dict[str, list[str]] = {}
        if request.verify:
            verify_started = time.perf_counter()
            violations = verify_global_route(outcome.route, layout)
            timings["verify"] = time.perf_counter() - verify_started

        detailed = None
        detail_summary = None
        if request.detail:
            from repro.detail.detailed import DetailedRouter

            detail_started = time.perf_counter()
            detailed = DetailedRouter(layout).run(outcome.route)
            timings["detail"] = time.perf_counter() - detail_started
            detail_summary = DetailSummary.from_detailed(detailed)

        # Non-convergence used to be reported only through the
        # `converged` flag, which callers routinely ignored — capped
        # negotiated runs shipped overflowing routes without a peep.
        # Surface it as a structured warning on the result instead.
        warnings: list[dict] = []
        if outcome.converged is False:
            overflow = (
                outcome.congestion_after.total_overflow
                if outcome.congestion_after is not None
                else None
            )
            iterations_run = max(0, len(outcome.iterations) - 1)
            warnings.append(
                {
                    "kind": "non-convergence",
                    "message": (
                        f"strategy {request.strategy!r} stopped after "
                        f"{iterations_run} iteration(s) with overflow remaining"
                    ),
                    "iterations": iterations_run,
                    "total_overflow": overflow,
                }
            )

        timings["total"] = time.perf_counter() - total_started
        return RouteResult(
            strategy=request.strategy,
            route=outcome.route,
            summary=summarize_route(outcome.route, layout),
            congestion_before=(
                None
                if outcome.congestion_before is None
                else CongestionSummary.from_map(outcome.congestion_before)
            ),
            congestion_after=(
                None
                if outcome.congestion_after is None
                else CongestionSummary.from_map(outcome.congestion_after)
            ),
            iterations=tuple(outcome.iterations),
            rerouted_nets=tuple(outcome.rerouted_nets),
            converged=outcome.converged,
            timing=outcome.timing,
            timings=timings,
            warnings=warnings,
            violations=violations,
            verified=request.verify,
            detail_summary=detail_summary,
            detailed=detailed,
        )


def route(request: RouteRequest) -> RouteResult:
    """One-shot convenience: run *request* through a default pipeline."""
    return RoutingPipeline().run(request)
