"""The declarative routing request — one contract for every caller.

:class:`RouteRequest` is the single entry ticket of the public API: it
names the layout (inline or by file reference), the router knobs
(:class:`~repro.core.router.RouterConfig`), the strategy to drive the
congestion loop with, and the post-routing toggles (independent
verification, detailed routing, report rendering).  Because a strategy
is one *name*, conflicting strategy selections are structurally
unrepresentable, and the strategy's typed params schema (see
:mod:`repro.api.params`) is enforced at construction time.

Requests are frozen and JSON round-trippable (:meth:`RouteRequest.to_json`
/ :meth:`RouteRequest.from_json`), so the CLI, tests, services, and
batch files all speak the same format.
"""

from __future__ import annotations

import contextvars
import json
from dataclasses import dataclass, field, replace
from typing import Any, Mapping, Optional

from repro.errors import RoutingError
from repro.core.escape import EscapeMode
from repro.core.router import RouterConfig
from repro.layout.io import layout_from_dict, layout_from_json, layout_to_dict
from repro.layout.layout import Layout
from repro.search.engine import Order

FORMAT_VERSION = 1

#: The raise-vs-skip policies a request may ask for.
UNROUTABLE_POLICIES = ("raise", "skip")

#: Deserialization runs with lenient params validation (unknown keys
#: warn and drop instead of raising) so old request/corpus JSON keeps
#: round-tripping across schema growth.  A context var, not a flag
#: argument: ``__post_init__`` has no way to receive one.
_LENIENT_PARAMS = contextvars.ContextVar("repro_lenient_params", default=False)


def _strategy_registry():
    """The default registry with the built-ins guaranteed installed."""
    from repro.api import strategies  # noqa: F401  (installs built-ins)
    from repro.api.registry import DEFAULT_REGISTRY

    return DEFAULT_REGISTRY


def config_to_dict(config: RouterConfig) -> dict[str, Any]:
    """Convert a :class:`RouterConfig` to a JSON-ready dict."""
    return {
        "mode": config.mode.value,
        "order": config.order.value,
        "inverted_corner": config.inverted_corner,
        "corner_epsilon": config.corner_epsilon,
        "bend_penalty": config.bend_penalty,
        "exact_steiner_order": config.exact_steiner_order,
        "refine": config.refine,
        "node_limit": config.node_limit,
        "trace": config.trace,
        "ray_cache": config.ray_cache,
        "engine": config.engine,
        "prune_clean_nets": config.prune_clean_nets,
        "workers": config.workers,
        "executor": config.executor,
    }


def config_from_dict(data: Mapping[str, Any]) -> RouterConfig:
    """Rebuild a :class:`RouterConfig` from :func:`config_to_dict` output.

    Missing keys fall back to the config defaults, so old request files
    keep working when new knobs are added; unknown keys raise.
    """
    defaults = RouterConfig()
    known = set(config_to_dict(defaults))
    unknown = sorted(set(data) - known)
    if unknown:
        raise RoutingError(f"unknown router config key(s) {unknown}")
    try:
        node_limit = data.get("node_limit", defaults.node_limit)
        return RouterConfig(
            mode=EscapeMode(data.get("mode", defaults.mode.value)),
            order=Order(data.get("order", defaults.order.value)),
            inverted_corner=bool(data.get("inverted_corner", defaults.inverted_corner)),
            corner_epsilon=float(data.get("corner_epsilon", defaults.corner_epsilon)),
            bend_penalty=float(data.get("bend_penalty", defaults.bend_penalty)),
            exact_steiner_order=bool(
                data.get("exact_steiner_order", defaults.exact_steiner_order)
            ),
            refine=bool(data.get("refine", defaults.refine)),
            node_limit=None if node_limit is None else int(node_limit),
            trace=bool(data.get("trace", defaults.trace)),
            ray_cache=bool(data.get("ray_cache", defaults.ray_cache)),
            engine=str(data.get("engine", defaults.engine)),
            prune_clean_nets=bool(
                data.get("prune_clean_nets", defaults.prune_clean_nets)
            ),
            workers=int(data.get("workers", defaults.workers)),
            executor=str(data.get("executor", defaults.executor)),
        )
    except ValueError as exc:
        raise RoutingError(f"malformed router config: {exc}") from exc


@dataclass(frozen=True)
class RouteRequest:
    """A complete, declarative description of one routing run.

    Attributes
    ----------
    layout:
        The placed design, inline.  Exactly one of ``layout`` and
        ``layout_path`` must be set.
    layout_path:
        File reference to a layout JSON (resolved lazily by
        :meth:`resolve_layout`); this is the form that travels well in
        request files.
    config:
        Router knobs (validated at construction by
        :class:`~repro.core.router.RouterConfig` itself).
    strategy:
        Name of the congestion strategy to resolve from the
        :class:`~repro.api.registry.StrategyRegistry` — ``"single"``,
        ``"two-pass"``, ``"negotiated"``, and ``"timing-driven"`` ship
        built in.
    strategy_params:
        Keyword parameters for the strategy factory (e.g.
        ``{"passes": 3}`` for two-pass, ``{"delay_weight": 1.0}`` for
        timing-driven).  Strategies with a declared params schema
        validate here, at construction: unknown or ill-typed keys
        raise :class:`~repro.api.params.StrategyParamError` (the
        ``from_dict``/``from_json`` path relaxes *unknown* keys to a
        warning so old serialized requests keep loading).  Stored
        read-only.
    on_unroutable:
        ``"raise"`` propagates the first unroutable net; ``"skip"``
        records it and carries on.
    verify:
        Run the independent route checker and attach its violations to
        the result (default on).
    detail:
        Also run the detailed router on the final global route.
    report:
        Ask renderers for the full engineering report (a presentation
        hint carried on the request so batch runs can honor it).
    """

    layout: Optional[Layout] = None
    layout_path: Optional[str] = None
    config: RouterConfig = field(default_factory=RouterConfig)
    strategy: str = "single"
    strategy_params: Mapping[str, Any] = field(default_factory=dict)
    on_unroutable: str = "raise"
    verify: bool = True
    detail: bool = False
    report: bool = False

    def __post_init__(self) -> None:
        if (self.layout is None) == (self.layout_path is None):
            raise RoutingError(
                "provide exactly one of layout (inline) or layout_path (reference)"
            )
        if not self.strategy or not isinstance(self.strategy, str):
            raise RoutingError(f"strategy must be a non-empty name, got {self.strategy!r}")
        if self.on_unroutable not in UNROUTABLE_POLICIES:
            raise RoutingError(
                f"on_unroutable must be one of {UNROUTABLE_POLICIES}, "
                f"not {self.on_unroutable!r}"
            )
        # Defensively copy the params so later caller-side mutation
        # cannot reach into a frozen request.  A plain dict (not a
        # MappingProxyType) keeps requests picklable for process-pool
        # batches (repro.api.batch).
        params = dict(self.strategy_params)
        registry = _strategy_registry()
        if self.strategy in registry:
            # Strategies the default registry does not know (third
            # parties routed through a custom registry) are validated
            # by their factory at create() time instead.
            params = registry.validate_params(
                self.strategy, params, strict=not _LENIENT_PARAMS.get()
            )
        object.__setattr__(self, "strategy_params", params)

    # ------------------------------------------------------------------
    # Layout resolution
    # ------------------------------------------------------------------
    def resolve_layout(self) -> Layout:
        """The inline layout, or the referenced file loaded and parsed."""
        if self.layout is not None:
            return self.layout
        assert self.layout_path is not None
        with open(self.layout_path, "r", encoding="utf-8") as handle:
            return layout_from_json(handle.read())

    def with_layout(self, layout: Layout) -> "RouteRequest":
        """A copy of this request with *layout* inlined (reference dropped)."""
        return replace(self, layout=layout, layout_path=None)

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def to_dict(self) -> dict[str, Any]:
        """Convert to a JSON-ready dict (inline layouts are embedded)."""
        return {
            "version": FORMAT_VERSION,
            "layout": None if self.layout is None else layout_to_dict(self.layout),
            "layout_path": self.layout_path,
            "config": config_to_dict(self.config),
            "strategy": self.strategy,
            "strategy_params": dict(self.strategy_params),
            "on_unroutable": self.on_unroutable,
            "verify": self.verify,
            "detail": self.detail,
            "report": self.report,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "RouteRequest":
        """Rebuild a request from :meth:`to_dict` output.

        Unknown ``strategy_params`` keys are tolerated here (warned
        about and dropped) so serialized requests survive schema
        growth; ill-typed values still raise.
        """
        token = _LENIENT_PARAMS.set(True)
        try:
            version = data["version"]
            if version != FORMAT_VERSION:
                raise RoutingError(f"unsupported request format version {version!r}")
            layout_data = data.get("layout")
            return cls(
                layout=None if layout_data is None else layout_from_dict(layout_data),
                layout_path=data.get("layout_path"),
                config=config_from_dict(data.get("config", {})),
                strategy=data.get("strategy", "single"),
                strategy_params=data.get("strategy_params", {}),
                on_unroutable=data.get("on_unroutable", "raise"),
                verify=bool(data.get("verify", True)),
                detail=bool(data.get("detail", False)),
                report=bool(data.get("report", False)),
            )
        except (KeyError, TypeError) as exc:
            raise RoutingError(f"malformed route request: {exc}") from exc
        finally:
            _LENIENT_PARAMS.reset(token)

    def to_json(self, *, indent: int | None = 2) -> str:
        """Serialize to a JSON string."""
        return json.dumps(self.to_dict(), indent=indent)

    @classmethod
    def from_json(cls, text: str) -> "RouteRequest":
        """Parse a request from a JSON string."""
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise RoutingError(f"invalid request JSON: {exc}") from exc
        return cls.from_dict(data)
