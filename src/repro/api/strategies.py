"""Built-in routing strategies: single, two-pass, negotiated, timing-driven.

Importing this module installs the four built-ins on
:data:`~repro.api.registry.DEFAULT_REGISTRY`:

``"single"``
    The paper's base algorithm — every net routed independently, one
    frozen cost model.  Congestion is still measured once so callers
    can see where a congestion strategy would have helped.
``"two-pass"``
    The Conclusions' sketch — route, measure, penalize the overflowed
    passages, reroute the affected nets (``passes`` generalizes to
    accumulated repasses).
``"negotiated"``
    The PathFinder-style generalization — iterated rip-up-and-reroute
    under present × history congestion costs
    (:mod:`repro.core.negotiate`).
``"timing-driven"``
    The negotiated loop with a delay model on top — per-net
    criticality blends a delay term into the congestion cost and
    orders each wave most-critical-first (:mod:`repro.core.timing`).

Every built-in declares a typed params schema (a frozen dataclass —
see :mod:`repro.api.params`): ``single`` and ``two-pass`` use the
:class:`SingleParams`/:class:`TwoPassParams` mirrors defined here,
the two negotiation strategies reuse their loop configs directly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

from repro.core.congestion import find_passages, measure_congestion
from repro.core.negotiate import NegotiatedRouter, NegotiationConfig
from repro.core.timing import TimingConfig, TimingDrivenRouter
from repro.incremental.engine import (
    IncrementalOutcome,
    incremental_negotiated,
    incremental_single,
)
from repro.api.registry import StrategyOutcome, register_strategy

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.api.request import RouteRequest
    from repro.core.router import GlobalRouter
    from repro.incremental.engine import WarmStart


def _adapt_incremental(outcome: IncrementalOutcome) -> StrategyOutcome:
    """Convert an engine-level outcome to the pipeline's shape.

    The :class:`~repro.incremental.dirty.DirtySet` is dropped here —
    the pipeline already holds it from :func:`plan_reroute` and folds
    the counts into the result timings.
    """
    return StrategyOutcome(
        route=outcome.route,
        first=outcome.first,
        congestion_before=outcome.congestion_before,
        congestion_after=outcome.congestion_after,
        iterations=tuple(outcome.iterations),
        rerouted_nets=outcome.rerouted_nets,
        converged=outcome.converged,
        search_stats=outcome.search_stats,
    )


@dataclass(frozen=True)
class SingleParams:
    """Typed params schema of the ``single`` strategy."""

    max_gap: Optional[int] = None
    measure_congestion: bool = True


@dataclass(frozen=True)
class TwoPassParams:
    """Typed params schema of the ``two-pass`` strategy."""

    penalty_weight: float = 2.0
    passes: int = 2
    max_gap: Optional[int] = None


@register_strategy("single", params=SingleParams)
class SingleStrategy:
    """One independent pass of every net.

    Parameters
    ----------
    max_gap:
        Passage width cutoff for the diagnostic congestion measurement
        (``None`` considers all passages).
    measure_congestion:
        Skip the measurement entirely when ``False`` (large batch runs
        that only want wirelength).
    """

    def __init__(self, *, max_gap: Optional[int] = None, measure_congestion: bool = True):
        self.max_gap = max_gap
        self.measure = measure_congestion

    def run(self, router: "GlobalRouter", request: "RouteRequest") -> StrategyOutcome:
        """One independent pass, plus a diagnostic congestion measurement."""
        # A single pass never re-queries a ray often enough to pay the
        # memo back — the committed bench showed cache-on *losing* to
        # cache-off on single_pass_dense — so skip populating it.
        # Memoization never changes answers, only wall clock, and the
        # bench's identity gate pins that.  Restore the caller's
        # setting afterwards: the router object may outlive this run.
        was_enabled = router.obstacles.ray_cache_enabled
        router.obstacles.ray_cache_enabled = False
        try:
            route = router.route_all(on_unroutable=request.on_unroutable)
        finally:
            router.obstacles.ray_cache_enabled = was_enabled
        if not self.measure:
            return StrategyOutcome(route=route, first=route)
        congestion = measure_congestion(
            find_passages(router.layout, max_gap=self.max_gap), route
        )
        return StrategyOutcome(
            route=route,
            first=route,
            congestion_before=congestion,
            congestion_after=congestion,
            converged=congestion.total_overflow == 0,
        )

    def run_incremental(
        self, router: "GlobalRouter", request: "RouteRequest", warm: "WarmStart"
    ) -> StrategyOutcome:
        """Route only the dirty nets; kept trees survive verbatim."""
        return _adapt_incremental(
            incremental_single(
                router,
                warm,
                on_unroutable=request.on_unroutable,
                max_gap=self.max_gap,
                measure=self.measure,
            )
        )


@register_strategy("two-pass", params=TwoPassParams)
class TwoPassStrategy:
    """The paper's congestion-penalized repass scheme.

    Parameters: ``penalty_weight``, ``passes`` (>= 2), ``max_gap``
    (see :class:`TwoPassParams`).

    Deliberately *not* incremental: the scheme's penalty regions
    accumulate from its own first pass, so there is no meaningful
    warm-start seed — ``RoutingPipeline.reroute`` rejects it up front.
    """

    def __init__(
        self,
        *,
        penalty_weight: float = 2.0,
        passes: int = 2,
        max_gap: Optional[int] = None,
    ):
        self.penalty_weight = penalty_weight
        self.passes = passes
        self.max_gap = max_gap

    def run(self, router: "GlobalRouter", request: "RouteRequest") -> StrategyOutcome:
        """Route, measure, penalize, reroute the affected nets."""
        result = router._two_pass(
            penalty_weight=self.penalty_weight,
            passes=self.passes,
            max_gap=self.max_gap,
            on_unroutable=request.on_unroutable,
        )
        return StrategyOutcome(
            route=result.final,
            first=result.first,
            congestion_before=result.congestion_before,
            congestion_after=result.congestion_after,
            rerouted_nets=tuple(result.rerouted_nets),
            converged=result.congestion_after.total_overflow == 0,
            search_stats=result.search_stats,
        )


@register_strategy("negotiated", params=NegotiationConfig)
class NegotiatedStrategy:
    """PathFinder-style iterated negotiation.

    Parameters are the :class:`~repro.core.negotiate.NegotiationConfig`
    knobs (``max_iterations``, ``present_weight``, ``history_weight``,
    ``history_gain``, ``max_gap``); unknown names are rejected.
    """

    def __init__(self, **params):
        self.negotiation = NegotiationConfig.from_params(params)

    def run(self, router: "GlobalRouter", request: "RouteRequest") -> StrategyOutcome:
        """Iterate rip-up-and-reroute until legal or out of budget."""
        result = NegotiatedRouter.from_router(router, negotiation=self.negotiation).run(
            on_unroutable=request.on_unroutable
        )
        return StrategyOutcome(
            route=result.final,
            first=result.first,
            congestion_before=result.congestion_before,
            congestion_after=result.congestion_after,
            iterations=tuple(result.iterations),
            rerouted_nets=tuple(result.rerouted_nets),
            converged=result.converged,
            search_stats=result.search_stats,
        )

    def run_incremental(
        self, router: "GlobalRouter", request: "RouteRequest", warm: "WarmStart"
    ) -> StrategyOutcome:
        """Warm-start the negotiation from the kept routes' congestion."""
        return _adapt_incremental(
            incremental_negotiated(
                router,
                warm,
                self.negotiation,
                on_unroutable=request.on_unroutable,
            )
        )


@register_strategy("timing-driven", params=TimingConfig)
class TimingDrivenStrategy:
    """Criticality-aware negotiation (delay-blended congestion costs).

    Parameters are the :class:`~repro.core.timing.TimingConfig` knobs
    — the negotiated set plus ``delay_weight``, ``load_factor``, and
    ``target_delay``; unknown names are rejected.

    Deliberately *not* incremental (like ``two-pass``): criticalities
    derive from whole-netlist delays, which a warm start would carry
    over stale — ``RoutingPipeline.reroute`` rejects it up front.
    """

    def __init__(self, **params):
        self.timing = TimingConfig.from_params(params)

    def run(self, router: "GlobalRouter", request: "RouteRequest") -> StrategyOutcome:
        """Iterate criticality-ordered rip-up-and-reroute."""
        result = TimingDrivenRouter.from_router(router, timing=self.timing).run(
            on_unroutable=request.on_unroutable
        )
        return StrategyOutcome(
            route=result.final,
            first=result.first,
            congestion_before=result.congestion_before,
            congestion_after=result.congestion_after,
            iterations=tuple(result.iterations),
            rerouted_nets=tuple(result.rerouted_nets),
            converged=result.converged,
            search_stats=result.search_stats,
            timing=result.timing,
        )


#: The names guaranteed to be available out of the box.
BUILTIN_STRATEGIES = ("single", "two-pass", "negotiated", "timing-driven")
