"""The batch facade: many layouts, one shared executor.

Where :mod:`repro.core.parallel` fans the *nets of one layout* out over
workers, :class:`Batch` fans *whole requests* out — the
service/benchmark-farm shape where many independent layouts arrive at
once.  Both share the executor machinery
(:func:`repro.core.parallel.make_executor`), so the flavour semantics
are identical: ``"process"`` scales with cores, ``"thread"`` is the
GIL-bound fallback for unpicklable inputs.

Nesting note: requests routed by a process batch should keep
``config.workers == 1`` — one process per request is already the
scaling axis, and nesting process pools inside pool workers multiplies
processes without adding cores.  ``Batch`` rejects that combination
rather than silently oversubscribing.

Process batches resolve strategies inside fresh worker processes, so
only strategies importable at ``repro.api`` import time (the built-ins,
or anything a custom ``initializer`` registers) are available there;
third-party strategies registered at runtime in the parent need the
``"thread"`` executor.
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence

from repro.errors import RoutingError
from repro.core.parallel import EXECUTORS, make_executor
from repro.api.pipeline import RoutingPipeline
from repro.api.request import RouteRequest
from repro.api.result import RouteResult
from repro.api.registry import StrategyRegistry


def _run_request(request: RouteRequest) -> RouteResult:
    """Route one request in a worker process (module-level for pickling)."""
    return RoutingPipeline().run(request)


class Batch:
    """Routes many :class:`~repro.api.request.RouteRequest` objects.

    Parameters
    ----------
    workers:
        Concurrent requests; 1 routes serially (no pool is built).
    executor:
        ``"process"`` or ``"thread"`` (see module docstring).
    registry:
        Registry for the serial and thread paths; process workers use
        the default registry (see module docstring).
    """

    def __init__(
        self,
        *,
        workers: int = 1,
        executor: str = "process",
        registry: Optional[StrategyRegistry] = None,
    ):
        if workers < 1:
            raise RoutingError(f"batch workers must be >= 1, got {workers}")
        if executor not in EXECUTORS:
            raise RoutingError(f"executor must be one of {EXECUTORS}, not {executor!r}")
        self.workers = workers
        self.executor = executor
        self._pipeline = RoutingPipeline(registry)

    def route_many(self, requests: Iterable[RouteRequest]) -> list[RouteResult]:
        """Route every request; results come back in input order.

        Results are identical to routing each request through a
        :class:`~repro.api.pipeline.RoutingPipeline` serially — the
        batch is purely a wall-time facade.  A failing request
        propagates its error after in-flight work completes.
        """
        reqs: Sequence[RouteRequest] = list(requests)
        if not reqs:
            return []
        if self.workers == 1 or len(reqs) == 1:
            return [self._pipeline.run(r) for r in reqs]
        if self.executor == "process":
            oversubscribed = [r for r in reqs if r.config.workers > 1]
            if oversubscribed:
                raise RoutingError(
                    "process batches require config.workers == 1 per request "
                    f"({len(oversubscribed)} request(s) ask for nested net fan-out); "
                    "drop the per-request workers or use executor='thread'"
                )
            # Layout references would be opened in worker processes with
            # whatever cwd they inherit; resolve them here so the batch
            # behaves like the serial path regardless of worker state.
            reqs = [
                r if r.layout is not None else r.with_layout(r.resolve_layout())
                for r in reqs
            ]
            with make_executor(min(self.workers, len(reqs)), "process") as pool:
                return list(pool.map(_run_request, reqs))
        with make_executor(min(self.workers, len(reqs)), "thread") as pool:
            return list(pool.map(self._pipeline.run, reqs))


def route_many(
    requests: Iterable[RouteRequest],
    *,
    workers: int = 1,
    executor: str = "process",
    registry: Optional[StrategyRegistry] = None,
) -> list[RouteResult]:
    """One-shot convenience over :class:`Batch`."""
    return Batch(workers=workers, executor=executor, registry=registry).route_many(
        requests
    )
