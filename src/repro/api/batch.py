"""The batch facade: many layouts, one shared executor.

Where :mod:`repro.core.parallel` fans the *nets of one layout* out over
workers, :class:`Batch` fans *whole requests* out — the
service/benchmark-farm shape where many independent layouts arrive at
once.  Both share the executor machinery
(:func:`repro.core.parallel.make_executor`), so the flavour semantics
are identical: ``"process"`` scales with cores, ``"thread"`` is the
GIL-bound fallback for unpicklable inputs.

Duplicate requests — equal canonical keys per
:func:`repro.api.canonical.request_cache_key` — are routed exactly
once; every duplicate slot aliases the shared
:class:`~repro.api.result.RouteResult`, the same identity the service
layer (:mod:`repro.service`) caches and coalesces on.

Nesting note: requests routed by a process batch should keep
``config.workers == 1`` — one process per request is already the
scaling axis, and nesting process pools inside pool workers multiplies
processes without adding cores.  ``Batch`` rejects that combination
rather than silently oversubscribing.

Process batches resolve strategies inside fresh worker processes, so
only strategies importable at ``repro.api`` import time (the built-ins,
or anything a custom ``initializer`` registers) are available there;
third-party strategies registered at runtime in the parent need the
``"thread"`` executor.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, Optional, Sequence, Union

from repro.errors import RoutingError
from repro.core.parallel import EXECUTORS, make_executor
from repro.api.canonical import request_cache_key
from repro.api.pipeline import RoutingPipeline
from repro.api.request import RouteRequest
from repro.api.result import RouteResult
from repro.api.registry import StrategyRegistry

#: The error-handling policies a batch may run under.
ON_ERROR_POLICIES = ("raise", "return")


@dataclass
class BatchError:
    """A failed request's slot in ``on_error="return"`` results.

    Carries the original exception so callers can discriminate failure
    modes (`isinstance(slot, BatchError)` separates failures from
    results; ``slot.error`` is the exception the pipeline raised).
    """

    error: Exception

    @property
    def ok(self) -> bool:
        """Always False — mirrors :attr:`RouteResult.ok` for uniform filtering."""
        return False

    @property
    def message(self) -> str:
        """The failure rendered as text."""
        return str(self.error)


#: One slot of a batch result under ``on_error="return"``.
BatchOutcome = Union[RouteResult, BatchError]


def _run_request(request: RouteRequest) -> RouteResult:
    """Route one request in a worker process (module-level for pickling)."""
    return RoutingPipeline().run(request)


def _run_request_guarded(request: RouteRequest) -> BatchOutcome:
    """Like :func:`_run_request`, but a failure fills the slot instead
    of poisoning the pool map (module-level for pickling)."""
    try:
        return RoutingPipeline().run(request)
    except Exception as exc:  # noqa: BLE001 - every failure must stay in its slot
        return BatchError(exc)


def _guarded(run: Callable[[RouteRequest], RouteResult]) -> Callable[[RouteRequest], BatchOutcome]:
    """Wrap a pipeline runner so one request's failure fills its slot."""

    def _run(request: RouteRequest) -> BatchOutcome:
        try:
            return run(request)
        except Exception as exc:  # noqa: BLE001 - every failure must stay in its slot
            return BatchError(exc)

    return _run


class Batch:
    """Routes many :class:`~repro.api.request.RouteRequest` objects.

    Parameters
    ----------
    workers:
        Concurrent requests; 1 routes serially (no pool is built).
    executor:
        ``"process"`` or ``"thread"`` (see module docstring).
    registry:
        Registry for the serial and thread paths; process workers use
        the default registry (see module docstring).
    on_error:
        ``"raise"`` (default) propagates a failing request's error
        after in-flight work completes, discarding sibling results.
        ``"return"`` isolates failures: each failed request's slot
        holds a :class:`BatchError` wrapping the exception while every
        sibling still gets its :class:`RouteResult` — the service
        shape, where one malformed request must not poison a farm run.
    """

    def __init__(
        self,
        *,
        workers: int = 1,
        executor: str = "process",
        registry: Optional[StrategyRegistry] = None,
        on_error: str = "raise",
    ):
        if workers < 1:
            raise RoutingError(f"batch workers must be >= 1, got {workers}")
        if executor not in EXECUTORS:
            raise RoutingError(f"executor must be one of {EXECUTORS}, not {executor!r}")
        if on_error not in ON_ERROR_POLICIES:
            raise RoutingError(
                f"on_error must be one of {ON_ERROR_POLICIES}, not {on_error!r}"
            )
        self.workers = workers
        self.executor = executor
        self.on_error = on_error
        self._pipeline = RoutingPipeline(registry)

    def route_many(self, requests: Iterable[RouteRequest]) -> list[BatchOutcome]:
        """Route every request; results come back in input order.

        Results are identical to routing each request through a
        :class:`~repro.api.pipeline.RoutingPipeline` serially — the
        batch is purely a wall-time facade.  Identical requests (equal
        :func:`~repro.api.canonical.request_cache_key`) are routed
        once: their slots alias one shared :class:`RouteResult`, so
        batch results must be treated as read-only.  Failure handling
        follows ``on_error``: the default re-raises the first failing
        request's error (in input order) after in-flight work
        completes, while ``"return"`` keeps sibling results and
        returns :class:`BatchError` slots for the failures.
        """
        reqs: Sequence[RouteRequest] = list(requests)
        if not reqs:
            return []
        unique, slot_of = self._collapse_duplicates(reqs)
        serial = self.workers == 1 or len(unique) == 1
        if serial and self.on_error == "raise":
            # Nothing is ever in flight on the serial path, so fail
            # fast instead of routing the whole batch before raising.
            routed = [self._pipeline.run(r) for r in unique]
            return [routed[slot] for slot in slot_of]
        outcomes = self._route_guarded(unique, serial)
        if self.on_error == "raise":
            for outcome in outcomes:
                if isinstance(outcome, BatchError):
                    raise outcome.error
        return [outcomes[slot] for slot in slot_of]

    @staticmethod
    def _collapse_duplicates(
        reqs: Sequence[RouteRequest],
    ) -> tuple[list[RouteRequest], list[int]]:
        """Map duplicate requests onto one representative each.

        Returns ``(unique, slot_of)``: the deduplicated requests that
        must actually be routed — with successfully resolved file
        references inlined, so the layout parsed for hashing is not
        parsed a second time for routing — and, for every input index,
        the position in ``unique`` whose outcome it shares.  A request
        that cannot be canonicalized (unresolvable layout reference,
        non-JSON strategy params) is kept unique *and* unresolved, so
        its failure still surfaces through the normal routing path in
        input order.
        """
        unique: list[RouteRequest] = []
        slot_of: list[int] = []
        first_slot: dict[str, int] = {}
        for request in reqs:
            resolved = request
            try:
                if request.layout is None:
                    resolved = request.with_layout(request.resolve_layout())
                key = request_cache_key(resolved, layout=resolved.layout)
            except Exception:  # noqa: BLE001 - unhashable request == unique request
                key = None
                resolved = request
            if key is not None and key in first_slot:
                slot_of.append(first_slot[key])
                continue
            slot = len(unique)
            if key is not None:
                first_slot[key] = slot
            unique.append(resolved)
            slot_of.append(slot)
        return unique, slot_of

    def _route_guarded(
        self, reqs: Sequence[RouteRequest], serial: bool
    ) -> list[BatchOutcome]:
        """Route with every failure captured into its slot."""
        run = _guarded(self._pipeline.run)
        if serial:
            return [run(r) for r in reqs]
        if self.executor == "process":
            oversubscribed = [r for r in reqs if r.config.workers > 1]
            if oversubscribed:
                raise RoutingError(
                    "process batches require config.workers == 1 per request "
                    f"({len(oversubscribed)} request(s) ask for nested net fan-out); "
                    "drop the per-request workers or use executor='thread'"
                )
            # Layout references would be opened in worker processes with
            # whatever cwd they inherit; resolve them here so the batch
            # behaves like the serial path regardless of worker state.
            # Resolving the layout may itself fail (missing file); that
            # failure belongs in the request's slot, not in the parent.
            resolved: list[BatchOutcome | RouteRequest] = []
            for r in reqs:
                try:
                    resolved.append(
                        r if r.layout is not None else r.with_layout(r.resolve_layout())
                    )
                except Exception as exc:  # noqa: BLE001 - slot-isolated, see on_error
                    resolved.append(BatchError(exc))
            pending = [r for r in resolved if isinstance(r, RouteRequest)]
            routed: list[BatchOutcome] = []
            if pending:
                # Slot-isolated resolve failures (or duplicate collapse)
                # can leave a single pending request; a one-worker pool
                # is legitimate here, so relax the fan-out minimum.
                with make_executor(
                    min(self.workers, len(pending)), "process", minimum=1
                ) as pool:
                    routed = list(pool.map(_run_request_guarded, pending))
            routed_iter = iter(routed)
            return [
                slot if isinstance(slot, BatchError) else next(routed_iter)
                for slot in resolved
            ]
        with make_executor(min(self.workers, len(reqs)), "thread") as pool:
            return list(pool.map(run, reqs))


def route_many(
    requests: Iterable[RouteRequest],
    *,
    workers: int = 1,
    executor: str = "process",
    registry: Optional[StrategyRegistry] = None,
    on_error: str = "raise",
) -> list[BatchOutcome]:
    """One-shot convenience over :class:`Batch`."""
    return Batch(
        workers=workers, executor=executor, registry=registry, on_error=on_error
    ).route_many(requests)
