"""Typed strategy-parameter schemas.

Each registered strategy may declare a frozen dataclass as its
*params schema* (``@register_strategy("name", params=SchemaClass)``).
The schema drives three things:

- **Validation at request construction.**  A
  :class:`~repro.api.request.RouteRequest` naming a schema'd strategy
  checks its ``strategy_params`` immediately: unknown or ill-typed
  keys raise :class:`StrategyParamError` (a structured
  :class:`~repro.errors.RoutingError`) at the call site instead of
  deep inside the run.
- **Lenient JSON intake.**  ``RouteRequest.from_dict`` coerces instead
  (``strict=False``): unknown keys warn and drop so old serialized
  requests keep round-tripping, while ill-typed values still raise —
  a wrong type never silently routes with defaults.
- **Introspection.**  ``StrategyRegistry.describe()`` renders every
  schema as name → type/default rows (the ``repro strategies`` CLI
  subcommand and the service's ``GET /strategies``).

Only scalar field types appear in the built-in schemas (``int``,
``float``, ``bool``, ``str``, each optionally ``Optional``); anything
else is passed through unchecked so third-party schemas degrade
gracefully rather than being rejected.
"""

from __future__ import annotations

import dataclasses
import typing
import warnings
from typing import Any, Mapping, Optional, Sequence

from repro.errors import RoutingError

_ATOMS: dict[type, str] = {int: "int", float: "float", bool: "bool", str: "str"}


class StrategyParamError(RoutingError):
    """Bad ``strategy_params`` for a schema'd strategy.

    Carries the offending keys in structured form (``strategy``,
    ``unknown``, ``invalid``, ``known``) so API surfaces can report
    them as data, not just prose; :meth:`details` is the JSON shape.
    """

    def __init__(
        self,
        strategy: str,
        *,
        unknown: Sequence[str] = (),
        invalid: Sequence[tuple[str, str]] = (),
        known: Sequence[str] = (),
    ):
        self.strategy = strategy
        self.unknown = tuple(unknown)
        self.invalid = tuple(invalid)
        self.known = tuple(known)
        parts = []
        if self.unknown:
            parts.append(f"unknown parameter(s) {list(self.unknown)}")
        parts.extend(f"bad value for {key!r}: {message}" for key, message in self.invalid)
        detail = "; ".join(parts) if parts else "invalid parameters"
        super().__init__(
            f"strategy {strategy!r}: {detail}; known parameters: {list(self.known)}"
        )

    def details(self) -> dict:
        """Structured JSON-ready form of the failure."""
        return {
            "strategy": self.strategy,
            "unknown": list(self.unknown),
            "invalid": [
                {"param": key, "message": message} for key, message in self.invalid
            ],
            "known": list(self.known),
        }


@dataclasses.dataclass(frozen=True)
class ParamSpec:
    """One schema field: accepted type, nullability, default."""

    name: str
    kind: str  # "int" | "float" | "bool" | "str" | "any"
    allow_none: bool
    default: Any

    def as_dict(self) -> dict:
        """JSON-ready row for :func:`schema_dict`."""
        return {
            "type": self.kind,
            "optional": self.allow_none,
            "default": self.default,
        }


def _classify(annotation: Any) -> tuple[str, bool]:
    """Map a field annotation to ``(kind, allow_none)``."""
    allow_none = False
    origin = typing.get_origin(annotation)
    if origin is typing.Union:
        members = [a for a in typing.get_args(annotation) if a is not type(None)]
        allow_none = len(members) < len(typing.get_args(annotation))
        if len(members) == 1:
            annotation = members[0]
        else:
            return "any", allow_none
    return _ATOMS.get(annotation, "any"), allow_none


def param_specs(schema: type) -> dict[str, ParamSpec]:
    """Field specs of a params-schema dataclass, in declaration order."""
    if not dataclasses.is_dataclass(schema):
        raise RoutingError(
            f"params schema must be a dataclass, got {schema!r}"
        )
    hints = typing.get_type_hints(schema)
    specs: dict[str, ParamSpec] = {}
    for field in dataclasses.fields(schema):
        kind, allow_none = _classify(hints.get(field.name, Any))
        if field.default is not dataclasses.MISSING:
            default = field.default
        elif field.default_factory is not dataclasses.MISSING:  # type: ignore[misc]
            default = field.default_factory()  # type: ignore[misc]
        else:
            default = None
        specs[field.name] = ParamSpec(
            name=field.name, kind=kind, allow_none=allow_none, default=default
        )
    return specs


def schema_dict(schema: type) -> dict:
    """The schema as JSON-ready name → ``{type, optional, default}`` rows."""
    return {name: spec.as_dict() for name, spec in param_specs(schema).items()}


def _coerce_value(spec: ParamSpec, value: Any) -> tuple[Any, Optional[str]]:
    """Coerce one value against *spec*; returns ``(value, error)``."""
    if value is None:
        if spec.allow_none:
            return None, None
        return value, f"expected {spec.kind}, got None"
    if spec.kind == "any":
        return value, None
    if spec.kind == "bool":
        if isinstance(value, bool):
            return value, None
        return value, f"expected bool, got {type(value).__name__}"
    if isinstance(value, bool):
        # bool is an int subclass; a bare True for an int knob is a bug.
        return value, f"expected {spec.kind}, got bool"
    if spec.kind == "int":
        if isinstance(value, int):
            return value, None
        if isinstance(value, float) and value.is_integer():
            # JSON writers are free to render 3 as 3.0.
            return int(value), None
        return value, f"expected int, got {type(value).__name__}"
    if spec.kind == "float":
        if isinstance(value, (int, float)):
            return float(value), None
        return value, f"expected float, got {type(value).__name__}"
    if spec.kind == "str":
        if isinstance(value, str):
            return value, None
        return value, f"expected str, got {type(value).__name__}"
    return value, None  # pragma: no cover - kinds are exhaustive


def coerce_params(
    schema: type,
    params: Mapping[str, Any],
    *,
    strategy: str,
    strict: bool = True,
) -> dict[str, Any]:
    """Validate *params* against *schema* and return the coerced dict.

    Unknown keys raise :class:`StrategyParamError` when *strict*, warn
    and drop otherwise (the lenient JSON-intake path).  Ill-typed
    values raise in both modes.  Keys absent from *params* stay absent
    — defaults belong to the strategy factory, not the request.
    """
    specs = param_specs(schema)
    unknown = sorted(set(params) - set(specs))
    if unknown and not strict:
        warnings.warn(
            f"ignoring unknown parameter(s) {unknown} for strategy {strategy!r}; "
            f"known: {sorted(specs)}",
            stacklevel=2,
        )
    invalid: list[tuple[str, str]] = []
    coerced: dict[str, Any] = {}
    for key, value in params.items():
        if key in unknown:
            continue
        new_value, error = _coerce_value(specs[key], value)
        if error is not None:
            invalid.append((key, error))
        else:
            coerced[key] = new_value
    if (unknown and strict) or invalid:
        raise StrategyParamError(
            strategy,
            unknown=unknown if strict else (),
            invalid=sorted(invalid),
            known=sorted(specs),
        )
    return coerced
