"""The declarative reroute request: a base request plus a layout delta.

A :class:`RerouteRequest` names the routing run being amended (a full
:class:`~repro.api.request.RouteRequest` — its cache key is how the
service finds the previous result) and the
:class:`~repro.incremental.delta.LayoutDelta` to apply.  Like every
other API artifact it is frozen and JSON round-trippable, so reroute
requests travel through files and over the service wire unchanged.

Identity: :func:`reroute_cache_key` hashes ``{base request key,
delta}`` — deliberately *not* the mutated request's key.  A warm-
started negotiated reroute is a different computation from routing the
mutated layout from scratch (same contract bands, not byte identity),
so the two must never share a cache slot; the conformance suite's
equivalence checks are exactly about quantifying that gap.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any, Mapping, Optional

from repro.errors import RoutingError
from repro.layout.layout import Layout
from repro.incremental.delta import LayoutDelta, apply_delta
from repro.api.canonical import _sha256, canonical_json, request_cache_key
from repro.api.request import RouteRequest
from repro.api.result import RouteResult

FORMAT_VERSION = 1


@dataclass(frozen=True)
class RerouteRequest:
    """A complete description of one incremental re-routing run.

    Attributes
    ----------
    base:
        The request whose result is being amended.  Its strategy,
        config, and policies govern the reroute; its cache key locates
        the previous result.
    delta:
        The layout mutation to apply before re-routing.
    """

    base: RouteRequest
    delta: LayoutDelta

    def __post_init__(self) -> None:
        if not isinstance(self.base, RouteRequest):
            raise RoutingError(
                f"reroute base must be a RouteRequest, got {type(self.base).__name__}"
            )
        if not isinstance(self.delta, LayoutDelta):
            raise RoutingError(
                f"reroute delta must be a LayoutDelta, got {type(self.delta).__name__}"
            )

    def mutated_request(self, *, base_layout: Optional[Layout] = None) -> RouteRequest:
        """The base request with the delta applied to its layout.

        This is the request a from-scratch fallback routes (the
        differential oracle of the equivalence suite, and what the
        service runs when the base result is not cached).
        """
        layout = base_layout if base_layout is not None else self.base.resolve_layout()
        return self.base.with_layout(apply_delta(layout, self.delta))

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def to_dict(self) -> dict[str, Any]:
        """Convert to a JSON-ready dict."""
        return {
            "version": FORMAT_VERSION,
            "base": self.base.to_dict(),
            "delta": self.delta.to_dict(),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "RerouteRequest":
        """Rebuild a reroute request from :meth:`to_dict` output."""
        try:
            version = data["version"]
            if version != FORMAT_VERSION:
                raise RoutingError(f"unsupported reroute format version {version!r}")
            return cls(
                base=RouteRequest.from_dict(data["base"]),
                delta=LayoutDelta.from_dict(data["delta"]),
            )
        except (KeyError, TypeError) as exc:
            raise RoutingError(f"malformed reroute request: {exc}") from exc

    def to_json(self, *, indent: int | None = 2) -> str:
        """Serialize to a JSON string."""
        return json.dumps(self.to_dict(), indent=indent)

    @classmethod
    def from_json(cls, text: str) -> "RerouteRequest":
        """Parse a reroute request from a JSON string."""
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise RoutingError(f"invalid reroute request JSON: {exc}") from exc
        return cls.from_dict(data)


def reroute_cache_key(
    request: RerouteRequest, *, base_layout: Optional[Layout] = None
) -> str:
    """The content-addressed identity of *request*'s reroute work.

    Two reroutes with equal keys start from interchangeable base
    results and apply equal deltas, so their results are
    interchangeable.  The key namespace is disjoint from
    :func:`~repro.api.canonical.request_cache_key` (the ``"kind"``
    discriminator), because an incremental result is not, in general,
    byte-identical to the mutated request's from-scratch result.
    """
    payload = {
        "kind": "reroute",
        "base": request_cache_key(request.base, layout=base_layout),
        "delta": request.delta.to_dict(),
    }
    return _sha256(canonical_json(payload))


def reroute(
    prev_result: RouteResult,
    delta: LayoutDelta,
    *,
    base: RouteRequest,
    registry=None,
    base_layout: Optional[Layout] = None,
) -> RouteResult:
    """One-shot convenience: incrementally amend *prev_result* by *delta*.

    *base* is the request that produced *prev_result*.  Library-level
    mirror of :func:`repro.api.pipeline.route` — see
    :meth:`~repro.api.pipeline.RoutingPipeline.reroute` for the
    semantics and ``examples/incremental_reroute.py`` for a
    placement-feedback loop built on it.
    """
    from repro.api.pipeline import RoutingPipeline

    return RoutingPipeline(registry).reroute(
        RerouteRequest(base=base, delta=delta),
        prev_result=prev_result,
        base_layout=base_layout,
    )
