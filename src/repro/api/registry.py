"""The pluggable strategy registry.

A *strategy* is the policy that turns one configured
:class:`~repro.core.router.GlobalRouter` into a routed layout plus
congestion telemetry: the paper's plain independent pass, the
Conclusions' two-pass sketch, the PathFinder-style negotiation — or
anything a third party registers.

Strategies are looked up by name from a :class:`StrategyRegistry`;
:data:`DEFAULT_REGISTRY` ships with ``"single"``, ``"two-pass"``,
``"negotiated"``, and ``"timing-driven"`` installed (see
:mod:`repro.api.strategies`).  Third parties add their own::

    from repro.api import register_strategy

    @register_strategy("greedy-ripup", params=GreedyParams)
    class GreedyRipup:
        def __init__(self, **params): ...
        def run(self, router, request): ...  # -> StrategyOutcome

The factory is called with the request's ``strategy_params`` as
keywords; ``run`` receives the configured router and the originating
:class:`~repro.api.request.RouteRequest` and returns a
:class:`StrategyOutcome`.  ``params`` (optional) declares a frozen
dataclass as the strategy's typed parameter schema
(:mod:`repro.api.params`): requests validate against it up front, and
:meth:`StrategyRegistry.describe` publishes it to the introspection
surfaces (``repro strategies``, ``GET /strategies``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable, Mapping, Optional, Protocol, runtime_checkable

from repro.errors import RoutingError
from repro.core.congestion import CongestionMap
from repro.core.negotiate import IterationStats
from repro.core.route import GlobalRoute
from repro.core.timing import TimingAnalysis
from repro.api.params import coerce_params, schema_dict
from repro.search.stats import SearchStats

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.api.request import RouteRequest
    from repro.core.router import GlobalRouter
    from repro.incremental.engine import WarmStart


@dataclass
class StrategyOutcome:
    """What a strategy hands back to the pipeline.

    ``route`` is mandatory; the congestion/iteration fields are
    telemetry that strategies fill in as far as they measure it.
    ``first`` carries the unpenalized first-pass route when the
    strategy runs repasses (strategy-level callers compare it against
    the final route without re-routing; it stays runtime-only and is
    not serialized into :class:`~repro.api.result.RouteResult`).
    ``search_stats``, when set, totals the search effort of the whole
    strategy run; iterating strategies fill it in because their
    returned route's stats stop accumulating at the best iteration,
    and the pipeline's perf telemetry must count all of the work.
    ``timing`` carries the final route's delay/criticality/slack
    analysis when the strategy computed one (``timing-driven`` does);
    the pipeline serializes it onto the result's ``timing`` block.
    """

    route: GlobalRoute
    first: Optional[GlobalRoute] = None
    congestion_before: Optional[CongestionMap] = None
    congestion_after: Optional[CongestionMap] = None
    iterations: tuple[IterationStats, ...] = ()
    rerouted_nets: tuple[str, ...] = ()
    converged: Optional[bool] = None
    search_stats: Optional[SearchStats] = None
    timing: Optional[TimingAnalysis] = None


@runtime_checkable
class RoutingStrategy(Protocol):
    """Structural interface every registered strategy must satisfy."""

    def run(self, router: "GlobalRouter", request: "RouteRequest") -> StrategyOutcome:
        """Route the layout behind *router* per *request*."""
        ...


@runtime_checkable
class IncrementalRoutingStrategy(RoutingStrategy, Protocol):
    """A strategy that can also warm-start from a prior result.

    ``RoutingPipeline.reroute`` resolves the base request's strategy
    and dispatches here; strategies without this method (``two-pass``:
    its penalty accumulation has no meaningful warm-start seed) make
    the reroute fail fast with a :class:`~repro.errors.RoutingError`
    instead of silently routing from scratch.
    """

    def run_incremental(
        self, router: "GlobalRouter", request: "RouteRequest", warm: "WarmStart"
    ) -> StrategyOutcome:
        """Finish routing *warm*'s dirty nets on the mutated layout."""
        ...


#: A factory builds a strategy instance from the request's params.
StrategyFactory = Callable[..., RoutingStrategy]


@dataclass
class StrategyRegistry:
    """Name → strategy-factory mapping with decorator registration."""

    _factories: dict[str, StrategyFactory] = field(default_factory=dict)
    _schemas: dict[str, Optional[type]] = field(default_factory=dict)

    def register(
        self,
        name: str,
        factory: Optional[StrategyFactory] = None,
        *,
        params: Optional[type] = None,
        replace: bool = False,
    ):
        """Register *factory* under *name*.

        Usable directly (``registry.register("x", Factory)``) or as a
        decorator (``@registry.register("x")``).  Duplicate names raise
        :class:`RoutingError` unless ``replace=True``.  *params*, when
        given, is a frozen dataclass declaring the strategy's typed
        parameter schema (see :mod:`repro.api.params`).
        """
        if not name or not isinstance(name, str):
            raise RoutingError(f"strategy name must be a non-empty string, got {name!r}")
        if params is not None:
            schema_dict(params)  # fail at registration, not first use

        def _install(f: StrategyFactory) -> StrategyFactory:
            if not callable(f):
                raise RoutingError(f"strategy factory for {name!r} is not callable")
            if name in self._factories and not replace:
                raise RoutingError(
                    f"strategy {name!r} is already registered "
                    f"(pass replace=True to override)"
                )
            self._factories[name] = f
            self._schemas[name] = params
            return f

        if factory is None:
            return _install
        return _install(factory)

    def unregister(self, name: str) -> None:
        """Remove *name*; unknown names raise :class:`RoutingError`."""
        if name not in self._factories:
            raise RoutingError(f"strategy {name!r} is not registered")
        del self._factories[name]
        del self._schemas[name]

    def params_schema(self, name: str) -> Optional[type]:
        """The params dataclass declared for *name* (``None`` if none)."""
        if name not in self._factories:
            raise RoutingError(f"strategy {name!r} is not registered")
        return self._schemas.get(name)

    def validate_params(
        self, name: str, params: Mapping[str, Any], *, strict: bool = True
    ) -> dict[str, Any]:
        """Check *params* against *name*'s schema; returns the coerced dict.

        Strategies registered without a schema — and names this
        registry does not know, which a later custom registry might —
        pass through unchecked; their factory remains the arbiter.
        Unknown keys raise :class:`~repro.api.params.StrategyParamError`
        when *strict*, warn and drop otherwise; ill-typed values raise
        in both modes.
        """
        schema = self._schemas.get(name)
        if schema is None:
            return dict(params)
        return coerce_params(schema, params, strategy=name, strict=strict)

    def create(self, name: str, params: Mapping[str, Any] = ()) -> RoutingStrategy:
        """Instantiate the strategy registered under *name*.

        Schema'd strategies validate ``params`` first (so a bad knob
        fails with the structured error even when the request skipped
        validation); a factory rejecting them anyway (bad arity in an
        unschema'd strategy) surfaces as :class:`RoutingError` naming
        the strategy.
        """
        try:
            factory = self._factories[name]
        except KeyError:
            raise RoutingError(
                f"unknown strategy {name!r}; registered: {self.names()}"
            ) from None
        checked = self.validate_params(name, dict(params))
        try:
            return factory(**checked)
        except TypeError as exc:
            raise RoutingError(f"bad parameters for strategy {name!r}: {exc}") from exc

    def names(self) -> list[str]:
        """Registered strategy names, sorted."""
        return sorted(self._factories)

    def describe(self) -> dict[str, Any]:
        """Every strategy's params schema, JSON-ready.

        Name → ``{"description", "params"}``; ``params`` maps each
        knob to ``{"type", "optional", "default"}`` rows, or is
        ``None`` for strategies registered without a schema.  This is
        the payload behind ``repro strategies --json`` and the
        service's ``GET /strategies``.
        """
        described: dict[str, Any] = {}
        for name in self.names():
            factory = self._factories[name]
            doc = (factory.__doc__ or "").strip().splitlines()
            schema = self._schemas.get(name)
            described[name] = {
                "description": doc[0] if doc else "",
                "params": schema_dict(schema) if schema is not None else None,
            }
        return described

    def __contains__(self, name: str) -> bool:
        return name in self._factories


#: The process-wide default registry (built-ins are installed by
#: :mod:`repro.api.strategies` at import time).
DEFAULT_REGISTRY = StrategyRegistry()


def register_strategy(
    name: str,
    factory: Optional[StrategyFactory] = None,
    *,
    params: Optional[type] = None,
    replace: bool = False,
):
    """Register on the :data:`DEFAULT_REGISTRY` (module-level decorator)."""
    return DEFAULT_REGISTRY.register(name, factory, params=params, replace=replace)
