"""The unified routing result — one shape for every strategy.

Every pipeline run, whatever its strategy, produces a
:class:`RouteResult`: the final :class:`~repro.core.route.GlobalRoute`,
congestion before/after as JSON-friendly summaries, per-iteration
convergence stats, phase timings, verification violations, a routing
summary, and (when requested) the detailed-routing outcome.

Results round-trip through JSON.  Two runtime-only conveniences ride
along without being serialized: the live
:class:`~repro.detail.detailed.DetailedResult` object (its summary is
what travels) and nothing else — everything the old ``TwoPassResult``
and ``NegotiationResult`` shapes reported is representable here.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Mapping, Optional

from repro.errors import RoutingError
from repro.analysis.metrics import RoutingSummary
from repro.core.congestion import CongestionMap
from repro.core.negotiate import IterationStats
from repro.core.route import GlobalRoute
from repro.core.route_io import route_from_dict, route_to_dict
from repro.core.timing import TimingAnalysis
from repro.detail.detailed import DetailedResult

FORMAT_VERSION = 1


@dataclass(frozen=True)
class CongestionSummary:
    """JSON-friendly aggregate of one congestion measurement."""

    passages: int
    overflowed_passages: int
    total_overflow: int
    max_overflow: int
    max_utilization: float

    @classmethod
    def from_map(cls, congestion: CongestionMap) -> "CongestionSummary":
        """Summarize a measured :class:`~repro.core.congestion.CongestionMap`."""
        return cls(
            passages=len(congestion.entries),
            overflowed_passages=congestion.overflow_count,
            total_overflow=congestion.total_overflow,
            max_overflow=congestion.max_overflow,
            max_utilization=congestion.max_utilization,
        )

    def as_dict(self) -> dict[str, Any]:
        """JSON-ready representation."""
        return {
            "passages": self.passages,
            "overflowed_passages": self.overflowed_passages,
            "total_overflow": self.total_overflow,
            "max_overflow": self.max_overflow,
            "max_utilization": self.max_utilization,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "CongestionSummary":
        """Inverse of :meth:`as_dict`."""
        return cls(
            passages=int(data["passages"]),
            overflowed_passages=int(data["overflowed_passages"]),
            total_overflow=int(data["total_overflow"]),
            max_overflow=int(data["max_overflow"]),
            max_utilization=float(data["max_utilization"]),
        )


@dataclass(frozen=True)
class DetailSummary:
    """JSON-friendly aggregate of one detailed-routing outcome."""

    channels: int
    tracks: int
    vias: int
    wirelength: int
    conflicts: int
    over_capacity_channels: int

    @classmethod
    def from_detailed(cls, detailed: DetailedResult) -> "DetailSummary":
        """Summarize a live :class:`~repro.detail.detailed.DetailedResult`."""
        return cls(
            channels=detailed.channel_count,
            tracks=detailed.track_total,
            vias=detailed.via_count,
            wirelength=detailed.total_wirelength,
            conflicts=detailed.conflict_count,
            over_capacity_channels=detailed.over_capacity_channels,
        )

    def as_dict(self) -> dict[str, Any]:
        """JSON-ready representation."""
        return {
            "channels": self.channels,
            "tracks": self.tracks,
            "vias": self.vias,
            "wirelength": self.wirelength,
            "conflicts": self.conflicts,
            "over_capacity_channels": self.over_capacity_channels,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "DetailSummary":
        """Inverse of :meth:`as_dict`."""
        return cls(
            channels=int(data["channels"]),
            tracks=int(data["tracks"]),
            vias=int(data["vias"]),
            wirelength=int(data["wirelength"]),
            conflicts=int(data["conflicts"]),
            over_capacity_channels=int(data["over_capacity_channels"]),
        )


@dataclass
class RouteResult:
    """Everything one pipeline run produced.

    Attributes
    ----------
    strategy:
        Name of the strategy that produced the route.
    route:
        The final :class:`~repro.core.route.GlobalRoute`.
    summary:
        Aggregate routing metrics (nets, wirelength, effort).
    congestion_before / congestion_after:
        Passage congestion after the first pass and after the strategy
        finished (equal for the single-pass strategy).
    iterations:
        Per-iteration convergence stats (empty for single-pass;
        iteration 0 is the unpenalized first pass).
    rerouted_nets:
        Nets moved by congestion repasses, sorted.
    converged:
        Whether the strategy reached zero overflow (``None`` when the
        strategy has no convergence notion).
    timing:
        Per-net delay/criticality/slack analysis of the final route
        (:class:`~repro.core.timing.TimingAnalysis`; ``None`` unless
        the strategy computed one — ``timing-driven`` always does).
    timings:
        Wall-clock seconds per pipeline phase (``route``, ``verify``,
        ``detail``, ``total``) plus ray-cache telemetry from the route
        phase (``ray_cache_hits``, ``ray_cache_misses``,
        ``ray_cache_hit_rate`` — see
        :class:`~repro.geometry.raytrace.ObstacleSet` and
        ``docs/performance.md``).
    warnings:
        Structured non-fatal findings about the run.  Each entry is a
        dict with at least ``kind`` and ``message``; the only built-in
        kind today is ``"non-convergence"`` (an iterative strategy
        stopped at its iteration cap with overflow remaining), which
        additionally carries ``iterations`` and ``total_overflow``.
        Results used to report this only through ``converged`` — easy
        to miss, so capped runs shipped silently overflowing routes.
    violations:
        Independent verification report per net name (empty when clean
        or when ``verify`` was off).
    verified:
        Whether verification actually ran.
    detail_summary:
        Aggregate of the detailed phase (``None`` when not requested).
    detailed:
        The live detailed-routing object — runtime only, not
        serialized; reloaded results carry just the summary.
    """

    strategy: str
    route: GlobalRoute
    summary: RoutingSummary
    congestion_before: Optional[CongestionSummary] = None
    congestion_after: Optional[CongestionSummary] = None
    iterations: tuple[IterationStats, ...] = ()
    rerouted_nets: tuple[str, ...] = ()
    converged: Optional[bool] = None
    timing: Optional[TimingAnalysis] = None
    timings: dict[str, float] = field(default_factory=dict)
    warnings: list[dict[str, Any]] = field(default_factory=list)
    violations: dict[str, list[str]] = field(default_factory=dict)
    verified: bool = False
    detail_summary: Optional[DetailSummary] = None
    detailed: Optional[DetailedResult] = None

    # ------------------------------------------------------------------
    # Convenience views
    # ------------------------------------------------------------------
    @property
    def ok(self) -> bool:
        """No failed nets and no verification violations."""
        return not self.route.failed_nets and not self.violations

    @property
    def total_length(self) -> int:
        """Final total wirelength."""
        return self.route.total_length

    @property
    def failed_nets(self) -> list[str]:
        """Nets that could not be routed (skip mode)."""
        return list(self.route.failed_nets)

    @property
    def iteration_count(self) -> int:
        """Congestion repasses actually run (excludes the first pass)."""
        return max(0, len(self.iterations) - 1)

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def to_dict(self) -> dict[str, Any]:
        """Convert to a JSON-ready dict (live objects become summaries)."""
        return {
            "version": FORMAT_VERSION,
            "strategy": self.strategy,
            "route": route_to_dict(self.route),
            "summary": self.summary.as_dict(),
            "congestion_before": (
                None if self.congestion_before is None else self.congestion_before.as_dict()
            ),
            "congestion_after": (
                None if self.congestion_after is None else self.congestion_after.as_dict()
            ),
            "iterations": [it.as_dict() for it in self.iterations],
            "rerouted_nets": list(self.rerouted_nets),
            "converged": self.converged,
            "timing": None if self.timing is None else self.timing.as_dict(),
            "timings": dict(self.timings),
            "warnings": [dict(w) for w in self.warnings],
            "violations": {name: list(v) for name, v in self.violations.items()},
            "verified": self.verified,
            "detail_summary": (
                None if self.detail_summary is None else self.detail_summary.as_dict()
            ),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "RouteResult":
        """Rebuild a result from :meth:`to_dict` output."""
        try:
            version = data["version"]
            if version != FORMAT_VERSION:
                raise RoutingError(f"unsupported result format version {version!r}")
            before = data.get("congestion_before")
            after = data.get("congestion_after")
            detail = data.get("detail_summary")
            timing = data.get("timing")
            return cls(
                strategy=data["strategy"],
                route=route_from_dict(data["route"]),
                summary=RoutingSummary.from_dict(data["summary"]),
                congestion_before=(
                    None if before is None else CongestionSummary.from_dict(before)
                ),
                congestion_after=(
                    None if after is None else CongestionSummary.from_dict(after)
                ),
                iterations=tuple(
                    IterationStats.from_dict(it) for it in data.get("iterations", ())
                ),
                rerouted_nets=tuple(data.get("rerouted_nets", ())),
                converged=data.get("converged"),
                timing=None if timing is None else TimingAnalysis.from_dict(timing),
                timings=dict(data.get("timings", {})),
                warnings=[dict(w) for w in data.get("warnings", ())],
                violations={
                    name: list(v) for name, v in data.get("violations", {}).items()
                },
                verified=bool(data.get("verified", False)),
                detail_summary=(
                    None if detail is None else DetailSummary.from_dict(detail)
                ),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise RoutingError(f"malformed route result: {exc}") from exc

    def to_json(self, *, indent: int | None = 2) -> str:
        """Serialize to a JSON string."""
        return json.dumps(self.to_dict(), indent=indent)

    @classmethod
    def from_json(cls, text: str) -> "RouteResult":
        """Parse a result from a JSON string."""
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise RoutingError(f"invalid result JSON: {exc}") from exc
        return cls.from_dict(data)
