"""repro.api — the canonical public surface of the router.

One declarative contract for every frontend::

    RouteRequest  →  RoutingPipeline  →  RouteResult

* :class:`~repro.api.request.RouteRequest` — frozen, JSON-serializable
  description of one routing run (layout, config, strategy + params,
  verify/detail/report toggles).
* :class:`~repro.api.pipeline.RoutingPipeline` — resolves the strategy
  from a :class:`~repro.api.registry.StrategyRegistry` (``"single"``,
  ``"two-pass"``, ``"negotiated"``, ``"timing-driven"`` built in; third
  parties register via :func:`~repro.api.registry.register_strategy`)
  and executes it.  Each built-in declares a typed params schema
  (:mod:`repro.api.params`), published by
  :meth:`~repro.api.registry.StrategyRegistry.describe`.
* :class:`~repro.api.result.RouteResult` — the unified outcome: final
  route, congestion before/after, per-iteration stats, timings,
  verification violations, optional detailed-routing summary; JSON
  round-trippable like the request.
* :class:`~repro.api.batch.Batch` / :func:`~repro.api.batch.route_many`
  — many layouts over one shared executor; duplicate requests collapse
  to one routing run.
* :func:`~repro.api.canonical.request_cache_key` /
  :func:`~repro.api.canonical.layout_fingerprint` — the content-
  addressed request identity behind the batch duplicate-collapse and
  the :mod:`repro.service` result cache.
* :class:`~repro.api.rerouting.RerouteRequest` /
  :meth:`~repro.api.pipeline.RoutingPipeline.reroute` — incremental
  re-routing: a :class:`~repro.incremental.delta.LayoutDelta` applied
  to a previously routed base request, with only the dirty nets routed
  (see :mod:`repro.incremental` and ``docs/incremental.md``).

The CLI (``python -m repro route``) is a thin shim over this package.
(The long-deprecated ``GlobalRouter.route_two_pass`` /
``GlobalRouter.route_negotiated`` delegates were removed; use
``RouteRequest(strategy="two-pass")`` / ``strategy="negotiated"``.)
"""

from repro.api.canonical import (
    canonical_json,
    layout_fingerprint,
    request_cache_key,
)
from repro.api.params import StrategyParamError
from repro.api.request import (
    RouteRequest,
    config_from_dict,
    config_to_dict,
)
from repro.api.result import (
    CongestionSummary,
    DetailSummary,
    RouteResult,
)
from repro.api.registry import (
    DEFAULT_REGISTRY,
    IncrementalRoutingStrategy,
    RoutingStrategy,
    StrategyOutcome,
    StrategyRegistry,
    register_strategy,
)
from repro.api.rerouting import (
    RerouteRequest,
    reroute,
    reroute_cache_key,
)
from repro.api.strategies import (
    BUILTIN_STRATEGIES,
    NegotiatedStrategy,
    SingleParams,
    SingleStrategy,
    TimingDrivenStrategy,
    TwoPassParams,
    TwoPassStrategy,
)
from repro.api.pipeline import RoutingPipeline, route
from repro.api.batch import Batch, BatchError, route_many

__all__ = [
    "BUILTIN_STRATEGIES",
    "Batch",
    "BatchError",
    "CongestionSummary",
    "DEFAULT_REGISTRY",
    "DetailSummary",
    "IncrementalRoutingStrategy",
    "NegotiatedStrategy",
    "RerouteRequest",
    "RouteRequest",
    "RouteResult",
    "RoutingPipeline",
    "RoutingStrategy",
    "SingleParams",
    "SingleStrategy",
    "StrategyOutcome",
    "StrategyParamError",
    "StrategyRegistry",
    "TimingDrivenStrategy",
    "TwoPassParams",
    "TwoPassStrategy",
    "canonical_json",
    "config_from_dict",
    "config_to_dict",
    "layout_fingerprint",
    "register_strategy",
    "request_cache_key",
    "reroute",
    "reroute_cache_key",
    "route",
    "route_many",
]
