"""The classical left-edge channel routing algorithm.

The "standard channel routing algorithm which tries to minimize the
number of tracks used" (Hashimoto–Stevens 1971): sort intervals by
left edge, then greedily fill one track at a time with non-overlapping
intervals.  For interval packing without vertical constraints this
uses the minimum possible number of tracks (equal to the maximum
overlap depth).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import RoutingError
from repro.geometry.interval import Interval


@dataclass(frozen=True)
class TrackAssignment:
    """Result of one left-edge run.

    ``track_of`` maps each input key to its 0-based track index.
    """

    track_of: dict[str, int]
    track_count: int

    @property
    def density(self) -> int:
        """Alias for ``track_count`` (equals channel density for LEA)."""
        return self.track_count


def left_edge_assign(intervals: dict[str, Interval]) -> TrackAssignment:
    """Assign each keyed interval to a track.

    Intervals sharing a track never overlap with positive length
    (touching endpoints is allowed, as two wires may abut end to end).
    Keys are typically net names — callers merge a net's pieces into
    one interval per channel beforehand, since a net needs only one
    track.

    Raises :class:`RoutingError` on an empty input (a channel with no
    wires is a caller bug).
    """
    if not intervals:
        raise RoutingError("left-edge assignment on an empty channel")
    # Sort by (left edge, right edge, key) — deterministic classic order.
    order = sorted(intervals.items(), key=lambda kv: (kv[1].lo, kv[1].hi, kv[0]))
    track_of: dict[str, int] = {}
    track_right_ends: list[int] = []  # rightmost occupied coordinate per track
    for key, interval in order:
        for track_index, right_end in enumerate(track_right_ends):
            if interval.lo >= right_end:
                track_of[key] = track_index
                track_right_ends[track_index] = interval.hi
                break
        else:
            track_of[key] = len(track_right_ends)
            track_right_ends.append(interval.hi)
    return TrackAssignment(track_of, len(track_right_ends))


def channel_density(intervals: dict[str, Interval]) -> int:
    """Maximum number of intervals overlapping any single coordinate.

    The information-theoretic lower bound on tracks; LEA matches it for
    pure interval packing, which the property tests assert.
    """
    non_degenerate = [iv for iv in intervals.values() if not iv.is_degenerate]
    degenerate_points = [iv.lo for iv in intervals.values() if iv.is_degenerate]

    events: list[tuple[int, int]] = []
    for interval in non_degenerate:
        events.append((interval.lo, +1))
        events.append((interval.hi, -1))
    # Closes sort before opens at the same coordinate, so touching
    # intervals (one ends where the next starts) never stack — matching
    # the left-edge packing rule that lets them share a track.
    events.sort(key=lambda e: (e[0], e[1]))
    depth = best = 0
    for _coord, delta in events:
        depth += delta
        best = max(best, depth)

    # A degenerate (point) wire conflicts only with intervals whose
    # open interior covers it; degenerate wires never conflict with
    # each other (they merely touch), so at most one joins any clique.
    for p in degenerate_points:
        cover = sum(1 for iv in non_degenerate if iv.contains(p, strict=True))
        best = max(best, cover + 1)
    return best
