"""Two-layer assignment with vias.

The simplest production-credible scheme of the era: horizontal wires
on layer 1, vertical wires on layer 2, a via wherever a net's wires
meet across layers.  The assignment also audits itself: any two
same-layer wires of *different* nets overlapping with positive length
is a conflict (the detailed router's quality metric).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from repro.geometry.point import Point
from repro.geometry.segment import Segment

LAYER_HORIZONTAL = 1
LAYER_VERTICAL = 2


@dataclass(frozen=True)
class DetailedWire:
    """A physical wire on a specific layer."""

    net: str
    seg: Segment
    layer: int


@dataclass(frozen=True)
class Via:
    """A layer-1/layer-2 connection point of one net."""

    net: str
    at: Point


@dataclass
class LayerAssignment:
    """Wires, vias, and same-layer conflicts of a detailed design."""

    wires: list[DetailedWire] = field(default_factory=list)
    vias: list[Via] = field(default_factory=list)
    conflicts: list[tuple[DetailedWire, DetailedWire]] = field(default_factory=list)

    @property
    def via_count(self) -> int:
        """Total vias."""
        return len(self.vias)

    @property
    def total_wirelength(self) -> int:
        """Total physical wirelength."""
        return sum(w.seg.length for w in self.wires)

    @property
    def conflict_count(self) -> int:
        """Same-layer different-net overlap pairs."""
        return len(self.conflicts)


def assign_layers(tagged_segments: Iterable[tuple[str, Segment]]) -> LayerAssignment:
    """Assign layers, place vias, and audit same-layer overlaps.

    Degenerate segments are dropped (they carry no metal).  Horizontal
    wires land on layer 1, vertical on layer 2.  A via is placed at
    every point where two wires of the same net on different layers
    touch.
    """
    result = LayerAssignment()
    for net, seg in tagged_segments:
        if seg.is_degenerate:
            continue
        layer = LAYER_HORIZONTAL if seg.is_horizontal else LAYER_VERTICAL
        result.wires.append(DetailedWire(net, seg, layer))

    _place_vias(result)
    _audit_conflicts(result)
    return result


def _place_vias(result: LayerAssignment) -> None:
    """A via at each same-net cross-layer touch point."""
    by_net: dict[str, list[DetailedWire]] = {}
    for wire in result.wires:
        by_net.setdefault(wire.net, []).append(wire)
    seen: set[tuple[str, Point]] = set()
    for net, wires in sorted(by_net.items()):
        horizontals = [w for w in wires if w.layer == LAYER_HORIZONTAL]
        verticals = [w for w in wires if w.layer == LAYER_VERTICAL]
        for h in horizontals:
            for v in verticals:
                touch = h.seg.crossing_point(v.seg)
                if touch is not None and (net, touch) not in seen:
                    seen.add((net, touch))
                    result.vias.append(Via(net, touch))


def _audit_conflicts(result: LayerAssignment) -> None:
    """Record same-layer different-net positive-length overlaps."""
    by_layer: dict[int, list[DetailedWire]] = {}
    for wire in result.wires:
        by_layer.setdefault(wire.layer, []).append(wire)
    for wires in by_layer.values():
        wires.sort(key=lambda w: (w.seg.track, w.seg.span.lo))
        for i in range(len(wires)):
            for j in range(i + 1, len(wires)):
                a, b = wires[i], wires[j]
                if b.seg.track != a.seg.track:
                    break  # sorted by track: no further overlaps for i
                if a.net == b.net:
                    continue
                if a.seg.span.overlaps(b.seg.span, strict=True):
                    result.conflicts.append((a, b))
