"""Conflict legalization: a repair pass after track assignment.

Residual same-layer overlaps (mostly wires of over-capacity channels
that kept their original tracks) are repaired greedily: for each
conflicting pair, try to slide one wire to a nearby free track inside
its corridor gap, stitching the displacement with perpendicular stubs.
The repaired design is re-audited from scratch; if the repair did not
strictly reduce conflicts it is discarded, so legalization never makes
a design worse.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.detail.channels import _member_gap
from repro.detail.detailed import DetailedResult
from repro.detail.layers import DetailedWire, assign_layers
from repro.geometry.point import Point
from repro.geometry.raytrace import ObstacleSet
from repro.geometry.segment import Segment

#: Maximum displacement attempted per wire, in tracks.
MAX_SLIDE = 4


@dataclass
class LegalizeResult:
    """Outcome of a legalization pass."""

    design: DetailedResult
    conflicts_before: int
    conflicts_after: int
    moves: int

    @property
    def repaired(self) -> int:
        """Conflicts removed by the pass."""
        return self.conflicts_before - self.conflicts_after


def legalize(result: DetailedResult, obstacles: ObstacleSet) -> LegalizeResult:
    """Attempt to repair same-layer conflicts of *result*.

    Returns the repaired design (or the original, when no strict
    improvement was possible) plus before/after counts.
    """
    before = result.conflict_count
    if before == 0:
        return LegalizeResult(result, 0, 0, 0)

    wires: list[tuple[str, Segment]] = [(w.net, w.seg) for w in result.layers.wires]
    moves = 0
    for a, b in result.layers.conflicts:
        victim = _pick_victim(a, b)
        new_track = _free_track_for(victim, wires, obstacles)
        if new_track is None:
            continue
        moved, stub_a, stub_b = _slide(victim, new_track)
        try:
            index = wires.index((victim.net, victim.seg))
        except ValueError:
            continue  # already moved while fixing an earlier pair
        wires[index] = (victim.net, moved)
        for stub in (stub_a, stub_b):
            if not stub.is_degenerate:
                wires.append((victim.net, stub))
        moves += 1

    repaired_layers = assign_layers(wires)
    if repaired_layers.conflict_count >= before:
        return LegalizeResult(result, before, before, 0)
    repaired = DetailedResult(
        repaired_layers, result.channels, elapsed_seconds=result.elapsed_seconds
    )
    return LegalizeResult(repaired, before, repaired_layers.conflict_count, moves)


def _pick_victim(a: DetailedWire, b: DetailedWire) -> DetailedWire:
    """Move the shorter wire (cheaper stubs, less chance of new overlap)."""
    return a if a.seg.length <= b.seg.length else b


def _free_track_for(
    wire: DetailedWire,
    wires: list[tuple[str, Segment]],
    obstacles: ObstacleSet,
) -> int | None:
    """Nearest legal track for *wire* with no different-net overlap."""
    horizontal = wire.seg.is_horizontal
    gap = _member_gap(wire.seg, horizontal, obstacles)
    if gap is None:
        return None
    track = wire.seg.track
    for magnitude in range(1, MAX_SLIDE + 1):
        for delta in (magnitude, -magnitude):
            candidate = track + delta
            if not gap.contains(candidate):
                continue
            if _track_clear(wire, candidate, wires):
                return candidate
    return None


def _track_clear(wire: DetailedWire, track: int, wires: list[tuple[str, Segment]]) -> bool:
    """No different-net same-orientation wire overlaps at *track*."""
    for net, seg in wires:
        if net == wire.net:
            continue
        if seg.is_horizontal != wire.seg.is_horizontal or seg.is_degenerate:
            continue
        if seg.track == track and seg.span.overlaps(wire.seg.span, strict=True):
            return False
    return True


def _slide(wire: DetailedWire, new_track: int) -> tuple[Segment, Segment, Segment]:
    """The moved segment plus the two stitch stubs."""
    seg = wire.seg
    old = seg.track
    if seg.is_horizontal:
        moved = Segment(Point(seg.a.x, new_track), Point(seg.b.x, new_track))
        stub_a = Segment(Point(seg.a.x, old), Point(seg.a.x, new_track))
        stub_b = Segment(Point(seg.b.x, old), Point(seg.b.x, new_track))
    else:
        moved = Segment(Point(new_track, seg.a.y), Point(new_track, seg.b.y))
        stub_a = Segment(Point(old, seg.a.y), Point(new_track, seg.a.y))
        stub_b = Segment(Point(old, seg.b.y), Point(new_track, seg.b.y))
    return moved, stub_a, stub_b
