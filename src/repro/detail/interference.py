"""Net interference detection.

Two parallel global wires *interfere* when they would compete for
tracks in the same corridor: their spans overlap (with positive
length) and their track coordinates are within an interaction window.
Connected components of the interference relation are the paper's
"dynamically assigned channels ... based on net interference rather
than cell placement".
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.geometry.interval import Interval
from repro.geometry.segment import Segment


@dataclass(frozen=True)
class TaggedSegment:
    """A global wire segment with its owning net."""

    net: str
    seg: Segment


@dataclass
class InterferenceGroup:
    """One connected component of interfering parallel wires."""

    members: list[TaggedSegment]

    @property
    def nets(self) -> set[str]:
        """Distinct nets present in the group."""
        return {m.net for m in self.members}

    @property
    def span_hull(self) -> Interval:
        """Hull of all member spans (the channel's length extent)."""
        spans = [m.seg.span for m in self.members]
        return Interval(min(s.lo for s in spans), max(s.hi for s in spans))

    @property
    def track_hull(self) -> Interval:
        """Hull of all member tracks (the channel's width seed)."""
        tracks = [m.seg.track for m in self.members]
        return Interval(min(tracks), max(tracks))


def interfere(a: Segment, b: Segment, *, window: int) -> bool:
    """Whether two same-orientation segments compete for tracks.

    ``window`` is the maximum track distance at which two wires still
    constrain each other (the channel pitch neighbourhood).
    """
    if a.is_horizontal != b.is_horizontal:
        return False
    if abs(a.track - b.track) > window:
        return False
    return a.span.overlaps(b.span, strict=True)


def interference_groups(
    tagged: list[TaggedSegment], *, window: int = 2
) -> list[InterferenceGroup]:
    """Partition same-orientation wires into interference components.

    Uses union-find over the pairwise :func:`interfere` relation.
    Singleton groups (wires constraining nobody) are returned too —
    they become single-track channels.
    """
    n = len(tagged)
    parent = list(range(n))

    def find(i: int) -> int:
        while parent[i] != i:
            parent[i] = parent[parent[i]]
            i = parent[i]
        return i

    def union(i: int, j: int) -> None:
        ri, rj = find(i), find(j)
        if ri != rj:
            parent[rj] = ri

    # Sort by track so only nearby tracks need pairwise checks.
    order = sorted(range(n), key=lambda i: tagged[i].seg.track)
    for a_pos in range(n):
        i = order[a_pos]
        for b_pos in range(a_pos + 1, n):
            j = order[b_pos]
            if tagged[j].seg.track - tagged[i].seg.track > window:
                break
            if interfere(tagged[i].seg, tagged[j].seg, window=window):
                union(i, j)

    components: dict[int, list[TaggedSegment]] = {}
    for i in range(n):
        components.setdefault(find(i), []).append(tagged[i])
    groups = [InterferenceGroup(members) for members in components.values()]
    groups.sort(key=lambda g: (g.track_hull.lo, g.span_hull.lo))
    return groups
