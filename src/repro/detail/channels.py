"""Dynamic channel construction.

A *dynamic channel* wraps one interference group in the corridor of
free space available to it: the gap between the nearest cell edges
below and above the group's wires (for a horizontal channel), clipped
to the routing surface.  Unlike classical channel routers, the
corridor is derived from where the wires actually are — "based on net
interference rather than cell placement".
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.detail.interference import InterferenceGroup, TaggedSegment, interference_groups
from repro.geometry.interval import Interval
from repro.geometry.raytrace import ObstacleSet


@dataclass
class DynamicChannel:
    """An interference group plus its usable corridor.

    Attributes
    ----------
    group:
        The interfering wires (all one orientation).
    horizontal:
        True when member wires are horizontal (tracks are y values).
    corridor:
        Interval of legal track coordinates, or ``None`` when no single
        gap contains every member track (a *broken* corridor: wires sit
        on opposite sides of an intervening cell; such channels keep
        their original tracks).
    """

    group: InterferenceGroup
    horizontal: bool
    corridor: Interval | None

    @property
    def capacity(self) -> int:
        """Unit-pitch tracks available in the corridor (0 when broken)."""
        if self.corridor is None:
            return 0
        return self.corridor.length + 1

    def net_intervals(self) -> dict[str, Interval]:
        """One merged span interval per net — the left-edge input.

        A net occupies a single track for all its wires in the channel,
        so its pieces merge into their hull.
        """
        merged: dict[str, Interval] = {}
        for member in self.group.members:
            span = member.seg.span
            if member.net in merged:
                merged[member.net] = merged[member.net].hull(span)
            else:
                merged[member.net] = span
        return merged


def build_channels(
    tagged: list[TaggedSegment],
    obstacles: ObstacleSet,
    *,
    window: int = 2,
) -> list[DynamicChannel]:
    """Group same-orientation wires and attach corridors.

    *tagged* must contain segments of a single orientation (the
    detailed router runs one pass per orientation).  Groups whose
    corridors and spans overlap are merged: wires sharing one free gap
    compete for the same tracks even when their original tracks were
    far apart, so they must be packed jointly.
    """
    if not tagged:
        return []
    horizontal = tagged[0].seg.is_horizontal
    groups = interference_groups(tagged, window=window)
    channels = [
        DynamicChannel(group, horizontal, _corridor(group, horizontal, obstacles))
        for group in groups
    ]
    return _merge_shared_corridors(channels, horizontal, obstacles)


def _merge_shared_corridors(
    channels: list[DynamicChannel],
    horizontal: bool,
    obstacles: ObstacleSet,
) -> list[DynamicChannel]:
    """Repeatedly merge channels that would pack into the same space."""
    merged = True
    while merged:
        merged = False
        for i in range(len(channels)):
            for j in range(i + 1, len(channels)):
                a, b = channels[i], channels[j]
                if a.corridor is None or b.corridor is None:
                    continue
                if not a.corridor.overlaps(b.corridor):
                    continue
                if not a.group.span_hull.overlaps(b.group.span_hull, strict=True):
                    continue
                joint = InterferenceGroup(a.group.members + b.group.members)
                channels[i] = DynamicChannel(
                    joint, horizontal, _corridor(joint, horizontal, obstacles)
                )
                channels.pop(j)
                merged = True
                break
            if merged:
                break
    return channels


def _corridor(
    group: InterferenceGroup, horizontal: bool, obstacles: ObstacleSet
) -> Interval | None:
    """Track coordinates legal for *every* member of the group.

    Each member wire has its own free gap (bounded by the nearest cell
    edges across its span); a track inside the intersection of all
    member gaps is legal for all of them, and the stitch stubs between
    old and new tracks stay inside each member's gap by construction.
    Returns ``None`` when the intersection is empty (members live in
    incompatible gaps) — such channels keep their original tracks.
    """
    corridor: Interval | None = None
    for member in group.members:
        gap = _member_gap(member.seg, horizontal, obstacles)
        if gap is None:
            return None
        corridor = gap if corridor is None else corridor.intersection(gap)
        if corridor is None:
            return None
    return corridor


def _member_gap(seg, horizontal: bool, obstacles: ObstacleSet) -> Interval | None:
    """The free gap (in track coordinates) containing one wire."""
    track = seg.track
    span = seg.span
    bound = obstacles.bound
    lo = bound.y0 if horizontal else bound.x0
    hi = bound.y1 if horizontal else bound.x1
    for rect in obstacles.rects:
        rect_span = rect.x_span if horizontal else rect.y_span
        if not rect_span.overlaps(span, strict=True):
            continue
        rect_lo = rect.y0 if horizontal else rect.x0
        rect_hi = rect.y1 if horizontal else rect.x1
        if rect_hi <= track:
            lo = max(lo, rect_hi)
        elif rect_lo >= track:
            hi = min(hi, rect_lo)
        else:  # the wire crosses a cell interior: illegal input
            return None
    if lo > hi:
        return None
    return Interval(lo, hi)
