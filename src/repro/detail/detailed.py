"""The detailed router: channels, tracks, layers, audit.

Pipeline (one pass per orientation):

1. Collect the global route's wires of one orientation.
2. Group them into dynamic channels by net interference.
3. Left-edge assign one track per net inside each channel's corridor.
4. Move wires to their tracks; add stitch stubs at moved endpoints so
   electrical connectivity is preserved by construction.
5. Assign layers (H → 1, V → 2), place vias, audit conflicts.

Channels whose corridor is broken or over capacity keep their original
tracks and are reported, not silently "fixed" — the result object
carries every quality metric a downstream user would gate on.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.core.route import GlobalRoute
from repro.detail.channels import DynamicChannel, build_channels
from repro.detail.interference import TaggedSegment
from repro.detail.layers import LayerAssignment, assign_layers
from repro.detail.leftedge import left_edge_assign
from repro.geometry.point import Point
from repro.geometry.raytrace import ObstacleSet
from repro.geometry.segment import Segment
from repro.layout.layout import Layout


@dataclass
class ChannelPlan:
    """One channel's assignment outcome."""

    channel: DynamicChannel
    track_of_net: dict[str, int] = field(default_factory=dict)
    track_count: int = 0
    over_capacity: bool = False
    kept_original: bool = False

    @property
    def net_count(self) -> int:
        """Nets sharing this channel."""
        return len(self.channel.group.nets)


@dataclass
class DetailedResult:
    """Everything the detailed phase produced.

    ``layers`` holds the physical wires/vias/conflicts; the channel
    plans record how each dynamic channel was packed.
    """

    layers: LayerAssignment
    channels: list[ChannelPlan] = field(default_factory=list)
    elapsed_seconds: float = 0.0

    @property
    def track_total(self) -> int:
        """Summed track counts over all channels."""
        return sum(plan.track_count for plan in self.channels)

    @property
    def channel_count(self) -> int:
        """Number of dynamic channels."""
        return len(self.channels)

    @property
    def over_capacity_channels(self) -> int:
        """Channels whose corridor could not hold their tracks."""
        return sum(1 for plan in self.channels if plan.over_capacity)

    @property
    def total_wirelength(self) -> int:
        """Physical wirelength including stitch stubs."""
        return self.layers.total_wirelength

    @property
    def via_count(self) -> int:
        """Total vias."""
        return self.layers.via_count

    @property
    def conflict_count(self) -> int:
        """Residual same-layer different-net overlaps."""
        return self.layers.conflict_count


class DetailedRouter:
    """Runs the detailed phase over a layout's global route."""

    def __init__(self, layout: Layout, *, window: int = 2):
        self.layout = layout
        self.window = window
        self.obstacles: ObstacleSet = layout.obstacles()

    def run(self, route: GlobalRoute) -> DetailedResult:
        """Track-assign and layer-assign *route*."""
        started = time.perf_counter()
        horizontals: list[TaggedSegment] = []
        verticals: list[TaggedSegment] = []
        for net_name, seg in route.all_segments():
            if seg.is_degenerate:
                continue
            if seg.is_horizontal:
                horizontals.append(TaggedSegment(net_name, seg))
            else:
                verticals.append(TaggedSegment(net_name, seg))

        plans: list[ChannelPlan] = []
        final_wires: list[tuple[str, Segment]] = []
        for tagged in (horizontals, verticals):
            if not tagged:
                continue
            channels = build_channels(tagged, self.obstacles, window=self.window)
            for channel in channels:
                plan, wires = _assign_channel(channel)
                plans.append(plan)
                final_wires.extend(wires)

        layers = assign_layers(final_wires)
        result = DetailedResult(layers, plans)
        result.elapsed_seconds = time.perf_counter() - started
        return result


def _assign_channel(channel: DynamicChannel) -> tuple[ChannelPlan, list[tuple[str, Segment]]]:
    """Pack one channel; return its plan and the (moved) wires + stubs."""
    plan = ChannelPlan(channel)
    intervals = channel.net_intervals()
    assignment = left_edge_assign(intervals)
    plan.track_count = assignment.track_count

    if channel.corridor is None or assignment.track_count > channel.capacity:
        # Broken or overfull corridor: report and keep original tracks.
        plan.over_capacity = channel.corridor is not None
        plan.kept_original = True
        plan.track_of_net = assignment.track_of
        wires = [(m.net, m.seg) for m in channel.group.members]
        return plan, wires

    plan.track_of_net = _order_and_place_tracks(channel, assignment)
    wires: list[tuple[str, Segment]] = []
    for member in channel.group.members:
        new_track = plan.track_of_net[member.net]
        wires.extend(_moved_with_stubs(member, new_track, channel.horizontal))
    return plan, wires


def _order_and_place_tracks(channel: DynamicChannel, assignment) -> dict[str, int]:
    """Map LEA track indices to concrete coordinates.

    Two refinements keep stitch stubs short and rarely crossing:
    the LEA tracks are reordered to match the wires' original vertical
    order (left-edge packing is order-agnostic, so any permutation of
    its tracks is equally valid), and the whole track block is centred
    on the original tracks instead of sitting at the corridor floor.
    """
    original_track: dict[str, float] = {}
    counts: dict[str, int] = {}
    for member in channel.group.members:
        original_track[member.net] = original_track.get(member.net, 0) + member.seg.track
        counts[member.net] = counts.get(member.net, 0) + 1
    for net in original_track:
        original_track[net] /= counts[net]

    # Average original track per LEA track index, then rank the indices.
    track_mean: dict[int, list[float]] = {}
    for net, index in assignment.track_of.items():
        track_mean.setdefault(index, []).append(original_track[net])
    ranked = sorted(track_mean, key=lambda idx: (sum(track_mean[idx]) / len(track_mean[idx]), idx))
    rank_of = {index: rank for rank, index in enumerate(ranked)}

    corridor = channel.corridor
    assert corridor is not None
    count = assignment.track_count
    center = sum(original_track.values()) / len(original_track)
    base = round(center - (count - 1) / 2)
    base = max(corridor.lo, min(base, corridor.hi - count + 1))
    return {
        net: base + rank_of[assignment.track_of[net]] for net in assignment.track_of
    }


def _moved_with_stubs(
    member: TaggedSegment, new_track: int, horizontal: bool
) -> list[tuple[str, Segment]]:
    """Move a wire to its track; stitch its old endpoints with stubs.

    The stubs are perpendicular wires from each original endpoint to
    the moved wire, preserving connectivity to pins and to the net's
    perpendicular wires without rewriting them.
    """
    seg = member.seg
    old_track = seg.track
    if new_track == old_track:
        return [(member.net, seg)]
    if horizontal:
        moved = Segment(Point(seg.a.x, new_track), Point(seg.b.x, new_track))
        stub_a = Segment(Point(seg.a.x, old_track), Point(seg.a.x, new_track))
        stub_b = Segment(Point(seg.b.x, old_track), Point(seg.b.x, new_track))
    else:
        moved = Segment(Point(new_track, seg.a.y), Point(new_track, seg.b.y))
        stub_a = Segment(Point(old_track, seg.a.y), Point(new_track, seg.a.y))
        stub_b = Segment(Point(old_track, seg.b.y), Point(new_track, seg.b.y))
    return [(member.net, moved), (member.net, stub_a), (member.net, stub_b)]
