"""Detailed routing: the phase that follows global routing.

From the Conclusions: "This approach does require a detailed router to
follow which does the track assignment.  A special algorithm has been
developed which dynamically assigns channels based on net interference
rather than cell placement.  Within the dynamically assigned channel
the subnets can be track-assigned using standard channel routing
algorithms which try to minimize the number of tracks used."

The paper leaves the details to an (unpublished) future paper; this
package reconstructs the sketch: interference grouping of parallel
global wires into *dynamic channels*, the classical left-edge
algorithm for track assignment inside each channel, and a two-layer
H/V layer assignment with vias.  See DESIGN.md §3 for the substitution
note.
"""

from repro.detail.interference import InterferenceGroup, interference_groups
from repro.detail.channels import DynamicChannel, build_channels
from repro.detail.leftedge import left_edge_assign
from repro.detail.layers import DetailedWire, LayerAssignment, Via, assign_layers
from repro.detail.detailed import ChannelPlan, DetailedResult, DetailedRouter
from repro.detail.legalize import LegalizeResult, legalize

__all__ = [
    "ChannelPlan",
    "DetailedResult",
    "DetailedRouter",
    "DetailedWire",
    "DynamicChannel",
    "InterferenceGroup",
    "LayerAssignment",
    "LegalizeResult",
    "Via",
    "legalize",
    "assign_layers",
    "build_channels",
    "interference_groups",
    "left_edge_assign",
]
