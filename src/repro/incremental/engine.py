"""The incremental re-router: route only what a delta disturbed.

:func:`plan_reroute` turns (previous route, base layout, delta) into
the mutated layout plus a :class:`WarmStart`: the kept routes carried
over verbatim and the dirty set that actually needs routing.  The two
engines then finish the job:

* :func:`incremental_single` — the paper's independent-net mode: route
  the dirty nets under the frozen base cost model and merge them into
  the kept routes.  Because every net is routed independently against
  the cells alone, the result is *identical* to a from-scratch run
  whenever the delta leaves the cell geometry untouched (net-only
  deltas) — the differential equivalence suite pins this.
* :func:`incremental_negotiated` — the PathFinder-style mode: seed the
  congestion history from the kept routes' measured congestion, route
  the dirty nets under that pre-charged cost, then run the standard
  negotiation waves (:mod:`repro.core.negotiate`) until legal or out
  of budget.  Kept nets participate in later waves only if congestion
  actually pulls them in (``prune_clean_nets`` semantics unchanged).

An *empty* dirty set short-circuits both engines: the kept routes are
returned untouched, which makes the empty-delta reroute fingerprint-
identical to the previous result by construction.

Search-effort accounting: the warm start's route begins with a fresh
:class:`~repro.search.stats.SearchStats`, so every expansion/ray-cache
counter on an incremental result measures *incremental* work only —
exactly what ``benchmarks/bench_x6_incremental.py`` compares against
the from-scratch totals.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Optional

from repro.core.congestion import (
    CongestionHistory,
    CongestionMap,
    find_passages,
    measure_congestion,
)
from repro.core.costs import NegotiatedCongestionCost
from repro.core.negotiate import IterationStats, NegotiationConfig
from repro.core.route import GlobalRoute
from repro.core.router import GlobalRouter
from repro.layout.layout import Layout
from repro.search.stats import SearchStats
from repro.incremental.delta import LayoutDelta, apply_delta
from repro.incremental.dirty import DirtySet, classify_nets


@dataclass(frozen=True)
class WarmStart:
    """What a reroute begins from: kept routes plus the dirty set."""

    kept: GlobalRoute
    dirty: tuple[str, ...]
    classification: DirtySet


@dataclass
class IncrementalOutcome:
    """What an incremental engine hands back (API-layer agnostic).

    Mirrors :class:`~repro.api.registry.StrategyOutcome` field-for-field
    (the strategies adapt it) plus the :class:`DirtySet` that drove the
    run.  ``rerouted_nets`` includes the wave-0 dirty nets — for an
    incremental run, "what did the reroute touch" is the useful
    telemetry.
    """

    route: GlobalRoute
    first: Optional[GlobalRoute] = None
    congestion_before: Optional[CongestionMap] = None
    congestion_after: Optional[CongestionMap] = None
    iterations: list[IterationStats] = field(default_factory=list)
    rerouted_nets: tuple[str, ...] = ()
    converged: Optional[bool] = None
    search_stats: Optional[SearchStats] = None
    dirty: Optional[DirtySet] = None


def plan_reroute(
    prev_route: GlobalRoute, base_layout: Layout, delta: LayoutDelta
) -> tuple[Layout, WarmStart]:
    """Apply *delta* and classify: the shared front half of every reroute.

    Returns the mutated layout and a :class:`WarmStart` whose kept
    route holds the surviving trees (with fresh stats and no failed
    nets — a previously failed net that still exists is classified
    *ripped* and retried).
    """
    mutated = apply_delta(base_layout, delta)
    classification = classify_nets(prev_route, base_layout, mutated, delta)
    kept = GlobalRoute(
        trees={name: prev_route.trees[name] for name in classification.kept},
        stats=SearchStats(),
        failed_nets=[],
    )
    return mutated, WarmStart(
        kept=kept, dirty=classification.dirty, classification=classification
    )


def _working_copy(kept: GlobalRoute) -> GlobalRoute:
    return GlobalRoute(
        trees=dict(kept.trees),
        stats=kept.stats,
        failed_nets=list(kept.failed_nets),
    )


def incremental_single(
    router: GlobalRouter,
    warm: WarmStart,
    *,
    on_unroutable: str = "raise",
    max_gap: Optional[int] = None,
    measure: bool = True,
) -> IncrementalOutcome:
    """Independent-pass reroute: dirty nets only, one frozen cost model.

    *router* must be built over the mutated layout.  Kept trees are
    returned untouched; with unchanged cell geometry each dirty net's
    tree equals what a from-scratch run would produce (independent
    routing sees only the cells).
    """
    started = time.perf_counter()
    route = _working_copy(warm.kept)
    rerouted: set[str] = set()
    if warm.dirty:
        outcomes = router.route_each(
            list(warm.dirty), fail_fast=on_unroutable == "raise"
        )
        router.merge_outcomes(
            route, outcomes, on_unroutable=on_unroutable, rerouted=rerouted
        )
    route.stats.elapsed_seconds = time.perf_counter() - started
    if not measure:
        return IncrementalOutcome(
            route=route,
            first=route,
            rerouted_nets=tuple(sorted(rerouted)),
            dirty=warm.classification,
        )
    congestion = measure_congestion(
        find_passages(router.layout, max_gap=max_gap), route
    )
    return IncrementalOutcome(
        route=route,
        first=route,
        congestion_before=congestion,
        congestion_after=congestion,
        rerouted_nets=tuple(sorted(rerouted)),
        converged=congestion.total_overflow == 0,
        dirty=warm.classification,
    )


def incremental_negotiated(
    router: GlobalRouter,
    warm: WarmStart,
    negotiation: Optional[NegotiationConfig] = None,
    *,
    on_unroutable: str = "raise",
) -> IncrementalOutcome:
    """Negotiated reroute: history pre-charged from the kept routes.

    Wave 0 routes only the dirty nets, under a negotiated cost built
    from the kept routes' measured congestion (so a new net already
    steers around passages the kept routes fill).  Subsequent waves
    are the standard negotiation loop over the *whole* netlist —
    pruned to congestion-affected nets per
    ``router.config.prune_clean_nets`` — so kept routes are ripped up
    exactly when congestion warrants it.  With an empty dirty set the
    kept routes are returned untouched (the empty-delta identity).
    """
    knobs = negotiation if negotiation is not None else NegotiationConfig()
    passages = find_passages(router.layout, max_gap=knobs.max_gap)
    kept = _working_copy(warm.kept)
    kept_map = measure_congestion(passages, kept)

    started = time.perf_counter()
    if not warm.dirty:
        stats = IterationStats(
            iteration=0,
            overflowed_passages=kept_map.overflow_count,
            total_overflow=kept_map.total_overflow,
            max_overflow=kept_map.max_overflow,
            wirelength=kept.total_length,
            wirelength_delta=0,
            rerouted=0,
            elapsed_seconds=time.perf_counter() - started,
        )
        return IncrementalOutcome(
            route=kept,
            first=kept,
            congestion_before=kept_map,
            congestion_after=kept_map,
            iterations=[stats],
            converged=kept_map.total_overflow == 0,
            search_stats=kept.stats,
            dirty=warm.classification,
        )

    pool = router.open_pool()
    try:
        history = CongestionHistory(gain=knobs.history_gain)
        history.seed(kept_map)
        if kept_map.total_overflow:
            history.update(kept_map)
        terms = history.penalty_terms(kept_map)
        # With no congestion among the kept routes (nothing full,
        # nothing overflowed) the wave-0 model is the plain base cost —
        # on an uncongested layout a dirty net routes exactly as a
        # from-scratch first pass would route it.
        model = (
            NegotiatedCongestionCost(
                terms,
                present_weight=knobs.present_weight,
                history_weight=knobs.history_weight,
                base=router.cost_model,
            )
            if terms
            else None
        )
        current = _working_copy(kept)
        rerouted: set[str] = set()
        outcomes = router.route_each(
            list(warm.dirty),
            cost_model=model,
            pool=pool,
            fail_fast=on_unroutable == "raise",
        )
        moved = router.merge_outcomes(
            current, outcomes, on_unroutable=on_unroutable, rerouted=rerouted
        )
        first = current
        current_map = measure_congestion(passages, current)
        iterations = [
            IterationStats(
                iteration=0,
                overflowed_passages=current_map.overflow_count,
                total_overflow=current_map.total_overflow,
                max_overflow=current_map.max_overflow,
                wirelength=current.total_length,
                wirelength_delta=0,
                rerouted=moved,
                elapsed_seconds=time.perf_counter() - started,
            )
        ]
        before = current_map

        best, best_map = current, current_map
        prune = router.config.prune_clean_nets
        for iteration in range(1, knobs.max_iterations + 1):
            if current_map.total_overflow == 0:
                break
            wave_started = time.perf_counter()
            history.update(current_map)
            wave_model = NegotiatedCongestionCost(
                history.penalty_terms(current_map),
                present_weight=knobs.present_weight,
                history_weight=knobs.history_weight,
                base=router.cost_model,
            )
            if prune:
                affected = sorted(current_map.affected_nets())
            else:
                affected = sorted(current.trees)
            candidate, candidate_map, moved = router.reroute_pass(
                current,
                affected,
                wave_model,
                passages=passages,
                pool=pool,
                on_unroutable=on_unroutable,
                rerouted=rerouted,
            )
            iterations.append(
                IterationStats(
                    iteration=iteration,
                    overflowed_passages=candidate_map.overflow_count,
                    total_overflow=candidate_map.total_overflow,
                    max_overflow=candidate_map.max_overflow,
                    wirelength=candidate.total_length,
                    wirelength_delta=candidate.total_length - current.total_length,
                    rerouted=moved,
                    elapsed_seconds=time.perf_counter() - wave_started,
                )
            )
            current, current_map = candidate, candidate_map
            if (candidate_map.total_overflow, candidate.total_length) < (
                best_map.total_overflow,
                best.total_length,
            ):
                best, best_map = candidate, candidate_map
    finally:
        if pool is not None:
            pool.close()

    return IncrementalOutcome(
        route=best,
        first=first,
        congestion_before=before,
        congestion_after=best_map,
        iterations=iterations,
        rerouted_nets=tuple(sorted(rerouted)),
        converged=best_map.total_overflow == 0,
        # `current` is the last candidate; its stats accumulated through
        # every wave on top of the warm start's fresh counters, so this
        # totals the incremental work only.
        search_stats=current.stats,
        dirty=warm.classification,
    )
