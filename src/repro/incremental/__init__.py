"""Incremental re-routing: deltas, dirty-set analysis, warm-started engines.

The subsystem behind ``reroute(prev_result, delta)``: a JSON-round-
trippable :class:`LayoutDelta` (:mod:`repro.incremental.delta`), the
kept/ripped/new classifier (:mod:`repro.incremental.dirty`), the
warm-start engines (:mod:`repro.incremental.engine`), and scripted
per-layout deltas for tests and benchmarks
(:mod:`repro.incremental.scripts`).  This package depends only on the
core/layout/geometry layers; the API surface
(:class:`repro.api.RerouteRequest`, ``RoutingPipeline.reroute``) and
the service ``/reroute`` endpoint build on top of it.

See ``docs/incremental.md`` for the delta format and lifecycle.
"""

from repro.incremental.delta import (
    CellMove,
    LayoutDelta,
    apply_delta,
    changed_rects,
    compose_deltas,
)
from repro.incremental.dirty import DirtySet, classify_nets
from repro.incremental.engine import (
    IncrementalOutcome,
    WarmStart,
    incremental_negotiated,
    incremental_single,
    plan_reroute,
)
from repro.incremental.scripts import (
    disjoint_delta,
    empty_delta,
    geometry_delta,
    replace_nets_delta,
)

__all__ = [
    "CellMove",
    "LayoutDelta",
    "apply_delta",
    "changed_rects",
    "compose_deltas",
    "DirtySet",
    "classify_nets",
    "IncrementalOutcome",
    "WarmStart",
    "incremental_negotiated",
    "incremental_single",
    "plan_reroute",
    "disjoint_delta",
    "empty_delta",
    "geometry_delta",
    "replace_nets_delta",
]
