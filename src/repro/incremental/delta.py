"""Layout deltas: the unit of change between design iterations.

The paper's premise is that "multiple design iterations are
inevitable" — placements move, nets are swapped in and out, and the
routing surface itself may be resized between runs.  A
:class:`LayoutDelta` captures one such edit batch declaratively
(add/remove/move cells, add/remove nets, a new outline) so that the
incremental re-router (:mod:`repro.incremental.engine`) can reason
about *what changed* instead of re-deriving it by diffing layouts.

Deltas are values: frozen, JSON round-trippable
(:meth:`LayoutDelta.to_json` / :meth:`LayoutDelta.from_json` — added
cells and nets use exactly the layout-file element shapes from
:mod:`repro.layout.io`), and composable (:func:`compose_deltas`
satisfies ``apply(apply(L, a), b) == apply(L, compose_deltas(a, b))``).

Capacity semantics: this router is gridless, so passage capacity is
*derived from geometry* (``gap + 1`` — see
:mod:`repro.core.congestion`), not stored per edge.  Capacity changes
are therefore expressed geometrically: moving/removing cells widens or
narrows the passages between them, and replacing the ``outline``
resizes the routing surface itself.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any, Iterable, Mapping, Optional

from repro.errors import LayoutError
from repro.geometry.rect import Rect
from repro.layout.cell import Cell
from repro.layout.io import (
    cell_from_dict,
    cell_to_dict,
    net_from_dict,
    net_to_dict,
    rect_from_list,
    rect_to_list,
)
from repro.layout.layout import Layout
from repro.layout.net import Net
from repro.layout.pin import Pin
from repro.layout.terminal import Terminal

FORMAT_VERSION = 1


@dataclass(frozen=True)
class CellMove:
    """Displace one existing cell (and every pin attached to it)."""

    name: str
    dx: int
    dy: int

    def as_dict(self) -> dict[str, Any]:
        """JSON-ready representation."""
        return {"name": self.name, "dx": self.dx, "dy": self.dy}

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "CellMove":
        """Inverse of :meth:`as_dict`."""
        return cls(name=data["name"], dx=int(data["dx"]), dy=int(data["dy"]))


def _duplicates(names: Iterable[str]) -> list[str]:
    seen: set[str] = set()
    dupes: list[str] = []
    for name in names:
        if name in seen and name not in dupes:
            dupes.append(name)
        seen.add(name)
    return dupes


@dataclass(frozen=True)
class LayoutDelta:
    """One batch of edits to apply to a base layout.

    Semantics (the order :func:`apply_delta` uses):

    1. ``outline`` (when set) replaces the routing surface.
    2. ``remove_nets`` / ``remove_cells`` rip named elements out; a
       surviving net may not reference a removed cell unless the same
       delta re-adds it.
    3. ``move_cells`` displaces cells; pins whose ``pin.cell`` names
       the moved cell ride along (matching
       :func:`repro.core.feedback.move_cell`).
    4. ``add_cells`` / ``add_nets`` install new elements.  A name that
       appears in both a remove list and an add list is a *replace*:
       removed, then re-added with the new definition.

    A delta is a value — construction validates internal consistency
    (no duplicate names per list, no move of a cell that is also
    removed or added) but says nothing about any particular layout;
    :func:`apply_delta` checks applicability against the base.
    """

    add_cells: tuple[Cell, ...] = ()
    remove_cells: tuple[str, ...] = ()
    move_cells: tuple[CellMove, ...] = ()
    add_nets: tuple[Net, ...] = ()
    remove_nets: tuple[str, ...] = ()
    outline: Optional[Rect] = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "add_cells", tuple(self.add_cells))
        object.__setattr__(self, "remove_cells", tuple(self.remove_cells))
        object.__setattr__(self, "move_cells", tuple(self.move_cells))
        object.__setattr__(self, "add_nets", tuple(self.add_nets))
        object.__setattr__(self, "remove_nets", tuple(self.remove_nets))
        for label, names in (
            ("add_cells", [c.name for c in self.add_cells]),
            ("remove_cells", self.remove_cells),
            ("move_cells", [m.name for m in self.move_cells]),
            ("add_nets", [n.name for n in self.add_nets]),
            ("remove_nets", self.remove_nets),
        ):
            dupes = _duplicates(names)
            if dupes:
                raise LayoutError(f"delta {label} repeats name(s) {dupes}")
        moved = {m.name for m in self.move_cells}
        conflicted = sorted(moved & set(self.remove_cells))
        if conflicted:
            raise LayoutError(
                f"delta both moves and removes cell(s) {conflicted}; "
                f"compose the edits into a replace instead"
            )
        conflicted = sorted(moved & {c.name for c in self.add_cells})
        if conflicted:
            raise LayoutError(
                f"delta both moves and adds cell(s) {conflicted}; "
                f"add the cell at its final position instead"
            )

    # ------------------------------------------------------------------
    # Views
    # ------------------------------------------------------------------
    @property
    def is_empty(self) -> bool:
        """Whether applying this delta is the identity."""
        return (
            not self.add_cells
            and not self.remove_cells
            and not self.move_cells
            and not self.add_nets
            and not self.remove_nets
            and self.outline is None
        )

    @property
    def replaced_cells(self) -> frozenset[str]:
        """Cell names removed *and* re-added by this delta."""
        return frozenset(self.remove_cells) & {c.name for c in self.add_cells}

    @property
    def replaced_nets(self) -> frozenset[str]:
        """Net names removed *and* re-added by this delta."""
        return frozenset(self.remove_nets) & {n.name for n in self.add_nets}

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def to_dict(self) -> dict[str, Any]:
        """Convert to a JSON-ready dict."""
        return {
            "version": FORMAT_VERSION,
            "add_cells": [cell_to_dict(cell) for cell in self.add_cells],
            "remove_cells": list(self.remove_cells),
            "move_cells": [move.as_dict() for move in self.move_cells],
            "add_nets": [net_to_dict(net) for net in self.add_nets],
            "remove_nets": list(self.remove_nets),
            "outline": None if self.outline is None else rect_to_list(self.outline),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "LayoutDelta":
        """Rebuild a delta from :meth:`to_dict` output."""
        try:
            version = data["version"]
            if version != FORMAT_VERSION:
                raise LayoutError(f"unsupported delta format version {version!r}")
            outline = data.get("outline")
            return cls(
                add_cells=tuple(cell_from_dict(c) for c in data.get("add_cells", ())),
                remove_cells=tuple(data.get("remove_cells", ())),
                move_cells=tuple(
                    CellMove.from_dict(m) for m in data.get("move_cells", ())
                ),
                add_nets=tuple(net_from_dict(n) for n in data.get("add_nets", ())),
                remove_nets=tuple(data.get("remove_nets", ())),
                outline=None if outline is None else rect_from_list(outline),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise LayoutError(f"malformed delta data: {exc}") from exc

    def to_json(self, *, indent: int | None = 2) -> str:
        """Serialize to a JSON string (deterministic for equal deltas)."""
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "LayoutDelta":
        """Parse a delta from a JSON string."""
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise LayoutError(f"invalid delta JSON: {exc}") from exc
        return cls.from_dict(data)


def apply_delta(layout: Layout, delta: LayoutDelta) -> Layout:
    """A new layout with *delta* applied to *layout*.

    The base layout is never mutated — a fresh :class:`Layout` is built
    in the base's element order (survivors first, additions after), so
    repeated application is deterministic.  Raises
    :class:`LayoutError` when the delta does not fit the base: removing
    or moving names that do not exist, adding duplicates, moving a cell
    off the surface, or removing a cell a surviving net still pins to.
    """
    for name in delta.remove_cells:
        layout.cell(name)
    for name in delta.remove_nets:
        layout.net(name)
    for move in delta.move_cells:
        layout.cell(move.name)

    removed_cells = set(delta.remove_cells)
    removed_nets = set(delta.remove_nets)
    re_added_cells = {c.name for c in delta.add_cells}
    moves = {m.name: m for m in delta.move_cells}

    outline = delta.outline if delta.outline is not None else layout.outline
    mutated = Layout(outline)
    for cell in layout.cells:
        if cell.name in removed_cells:
            continue  # gone, or re-added below with its new definition
        move = moves.get(cell.name)
        mutated.add_cell(cell.translated(move.dx, move.dy) if move else cell)
    for cell in delta.add_cells:
        mutated.add_cell(cell)

    for net in layout.nets:
        if net.name in removed_nets:
            continue
        mutated.add_net(_carry_net(net, removed_cells - re_added_cells, moves))
    for net in delta.add_nets:
        mutated.add_net(net)
    return mutated


def _carry_net(net: Net, orphaned_cells: set[str], moves: Mapping[str, CellMove]) -> Net:
    """A surviving net, with pins on moved cells displaced along.

    ``orphaned_cells`` are cells the delta removes without replacing;
    a surviving net pinned to one cannot be carried.
    """
    touched = False
    terminals = []
    for terminal in net.terminals:
        pins = []
        for pin in terminal.pins:
            if pin.cell in orphaned_cells:
                raise LayoutError(
                    f"delta removes cell {pin.cell!r} but net {net.name!r} still "
                    f"references it; remove or replace the net in the same delta"
                )
            move = moves.get(pin.cell) if pin.cell is not None else None
            if move is not None:
                pins.append(
                    Pin(pin.name, pin.location.translated(move.dx, move.dy), pin.cell)
                )
                touched = True
            else:
                pins.append(pin)
        terminals.append(Terminal(terminal.name, pins))
    return Net(net.name, terminals) if touched else net


def changed_rects(layout: Layout, delta: LayoutDelta) -> list[Rect]:
    """Every rectangle of geometry the delta disturbs, in base coordinates.

    Removed cells contribute their old footprint (routes may now pass
    there, but routes that hugged them were placed against geometry
    that no longer exists); moved cells contribute both old and new
    footprints; added cells contribute their new footprint.  The
    dirty-set analyzer (:mod:`repro.incremental.dirty`) inflates these
    by one unit so that routes merely *hugging* changed geometry count
    as intersecting it.
    """
    rects: list[Rect] = []
    for name in delta.remove_cells:
        rects.extend(layout.cell(name).blocking_rects)
    for move in delta.move_cells:
        cell = layout.cell(move.name)
        rects.extend(cell.blocking_rects)
        rects.extend(cell.translated(move.dx, move.dy).blocking_rects)
    for cell in delta.add_cells:
        rects.extend(cell.blocking_rects)
    return rects


# ----------------------------------------------------------------------
# Composition
# ----------------------------------------------------------------------
#: Per-name edit states used by :func:`compose_deltas`.
_REMOVED, _MOVED, _ADDED, _REPLACED = "removed", "moved", "added", "replaced"


def _cell_states(delta: LayoutDelta) -> dict[str, tuple[str, Any]]:
    states: dict[str, tuple[str, Any]] = {}
    added = {c.name: c for c in delta.add_cells}
    for name in delta.remove_cells:
        if name in added:
            states[name] = (_REPLACED, added[name])
        else:
            states[name] = (_REMOVED, None)
    for name, cell in added.items():
        states.setdefault(name, (_ADDED, cell))
    for move in delta.move_cells:
        states[move.name] = (_MOVED, (move.dx, move.dy))
    return states


def _net_states(delta: LayoutDelta) -> dict[str, tuple[str, Any]]:
    states: dict[str, tuple[str, Any]] = {}
    added = {n.name: n for n in delta.add_nets}
    for name in delta.remove_nets:
        if name in added:
            states[name] = (_REPLACED, added[name])
        else:
            states[name] = (_REMOVED, None)
    for name, net in added.items():
        states.setdefault(name, (_ADDED, net))
    return states


def _compose_states(
    name: str,
    first: Optional[tuple[str, Any]],
    second: Optional[tuple[str, Any]],
    *,
    movable: bool,
) -> Optional[tuple[str, Any]]:
    """The single-name composition table.

    Each state is a transition on "does this name exist, and as what";
    composing two deltas composes the transitions, which is what makes
    :func:`compose_deltas` associative.  Pairs that presuppose an
    element the intermediate layout cannot have (remove after remove,
    add over an existing add) raise, mirroring what applying the two
    deltas in sequence would have raised.
    """
    if second is None:
        return first
    if first is None:
        return second
    f_kind, f_val = first
    s_kind, s_val = second

    def invalid() -> LayoutError:
        return LayoutError(
            f"cannot compose deltas: {s_kind!r} of {name!r} after {f_kind!r}"
        )

    if f_kind == _REMOVED:
        if s_kind == _ADDED:
            return (_REPLACED, s_val)
        raise invalid()  # the intermediate layout has no such element
    if f_kind == _MOVED:
        if s_kind == _MOVED:
            return (_MOVED, (f_val[0] + s_val[0], f_val[1] + s_val[1]))
        if s_kind in (_REMOVED, _REPLACED):
            return (s_kind, s_val)
        raise invalid()  # adding over an existing element
    if f_kind == _ADDED:
        if s_kind == _MOVED:
            assert movable
            return (_ADDED, f_val.translated(*s_val))
        if s_kind == _REMOVED:
            return None  # added then removed: the base never sees it
        if s_kind == _REPLACED:
            return (_ADDED, s_val)  # base never had it, so still an add
        raise invalid()
    assert f_kind == _REPLACED
    if s_kind == _MOVED:
        assert movable
        return (_REPLACED, f_val.translated(*s_val))
    if s_kind == _REMOVED:
        return (_REMOVED, None)
    if s_kind == _REPLACED:
        return (_REPLACED, s_val)
    raise invalid()


def compose_deltas(first: LayoutDelta, second: LayoutDelta) -> LayoutDelta:
    """The single delta equivalent to applying *first* then *second*.

    For every layout the pair applies to cleanly::

        apply_delta(apply_delta(L, first), second)
            == apply_delta(L, compose_deltas(first, second))

    and composition is associative, so a whole editing session folds
    into one delta.  Output lists are sorted by name for determinism.
    """
    first_cells, second_cells = _cell_states(first), _cell_states(second)
    cells: dict[str, Optional[tuple[str, Any]]] = {}
    for name in set(first_cells) | set(second_cells):
        cells[name] = _compose_states(
            name, first_cells.get(name), second_cells.get(name), movable=True
        )
    first_nets, second_nets = _net_states(first), _net_states(second)
    nets: dict[str, Optional[tuple[str, Any]]] = {}
    for name in set(first_nets) | set(second_nets):
        nets[name] = _compose_states(
            name, first_nets.get(name), second_nets.get(name), movable=False
        )
    # A net the first delta adds exists in the intermediate layout, so
    # the second delta's cell moves carry its pins along (exactly what
    # sequential application does via ``_carry_net``).  The second
    # delta's own nets are exempt: within one delta, moves precede adds.
    second_moves = {m.name: m for m in second.move_cells}
    if second_moves:
        for name, state in nets.items():
            if state is None or name in second_nets:
                continue
            kind, value = state
            if kind in (_ADDED, _REPLACED):
                nets[name] = (kind, _carry_net(value, set(), second_moves))

    add_cells, remove_cells, move_cells = [], [], []
    for name in sorted(cells):
        state = cells[name]
        if state is None:
            continue
        kind, value = state
        if kind == _REMOVED:
            remove_cells.append(name)
        elif kind == _MOVED:
            move_cells.append(CellMove(name, value[0], value[1]))
        elif kind == _ADDED:
            add_cells.append(value)
        else:  # replaced
            remove_cells.append(name)
            add_cells.append(value)

    add_nets, remove_nets = [], []
    for name in sorted(nets):
        state = nets[name]
        if state is None:
            continue
        kind, value = state
        if kind == _REMOVED:
            remove_nets.append(name)
        elif kind == _ADDED:
            add_nets.append(value)
        else:  # replaced
            remove_nets.append(name)
            add_nets.append(value)

    return LayoutDelta(
        add_cells=tuple(add_cells),
        remove_cells=tuple(remove_cells),
        move_cells=tuple(move_cells),
        add_nets=tuple(add_nets),
        remove_nets=tuple(remove_nets),
        outline=second.outline if second.outline is not None else first.outline,
    )
