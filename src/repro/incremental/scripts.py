"""Scripted deltas: deterministic mutations for any layout.

The differential equivalence suite, the ``--incremental`` conformance
axis, and ``benchmarks/bench_x6_incremental.py`` all need a delta *per
scenario* without hand-writing one for each corpus entry.  These
helpers derive one from the layout itself, deterministically (same
layout → same delta), covering the three delta classes the contract
distinguishes:

* :func:`empty_delta` — nothing changes; reroute must be
  fingerprint-identical to the previous result.
* :func:`disjoint_delta` — net-only edits (no cell geometry touched);
  under the ``single`` strategy the reroute is fingerprint-identical
  to routing the mutated layout from scratch.
* :func:`geometry_delta` — the net edits plus a one-unit cell nudge
  that survives placement validation; prior routes near the moved
  cell are ripped, everything else is kept.
* :func:`replace_nets_delta` — remove-and-re-add *k* existing nets
  verbatim, dirtying exactly *k* nets; the benchmark's knob for
  "p% of the netlist changed".
"""

from __future__ import annotations

from typing import Iterator, Optional

from repro.errors import LayoutError, ValidationError
from repro.geometry.point import Point
from repro.layout.layout import Layout
from repro.layout.net import Net
from repro.layout.validate import validate_layout
from repro.incremental.delta import CellMove, LayoutDelta, apply_delta


def empty_delta() -> LayoutDelta:
    """The delta that changes nothing."""
    return LayoutDelta()


def _fabricated_net(layout: Layout, tag: str) -> Net:
    """A two-point net for layouts that have none to clone.

    Pad pins on the first cell's bounding-box corners (legal route
    endpoints: on the boundary, not strictly inside), or on the
    outline corners of an empty floorplan.
    """
    box = layout.cells[0].bounding_box if layout.cells else layout.outline
    return Net.two_point(
        f"fab@{tag}", Point(box.x0, box.y0), Point(box.x1, box.y1)
    )


def disjoint_delta(layout: Layout, tag: str = "delta") -> LayoutDelta:
    """A net-only delta: remove the last net, add a clone of the first.

    No cell geometry changes, so every surviving prior route is kept.
    The added net reuses the first net's terminals under a new name
    (``<name>@<tag>``); a netless layout gets a fabricated two-point
    net instead, and single-net layouts skip the removal so the
    mutated layout never goes empty.
    """
    nets = layout.nets
    remove = (nets[-1].name,) if len(nets) >= 2 else ()
    if nets:
        source = nets[0]
        added = Net(f"{source.name}@{tag}", source.terminals)
    else:
        added = _fabricated_net(layout, tag)
    return LayoutDelta(remove_nets=remove, add_nets=(added,))


def _unit_moves(layout: Layout) -> Iterator[CellMove]:
    for cell in layout.cells:
        for dx, dy in ((1, 0), (-1, 0), (0, 1), (0, -1)):
            yield CellMove(cell.name, dx, dy)


def _move_separation(layout: Layout, move: CellMove) -> Optional[int]:
    """Min separation of the moved cell from the others, or ``None`` if illegal."""
    moved = layout.cell(move.name).translated(move.dx, move.dy).bounding_box
    if not layout.outline.contains_rect(moved):
        return None
    gaps = [
        moved.separation(other.bounding_box)
        for other in layout.cells
        if other.name != move.name
    ]
    return min(gaps) if gaps else layout.outline.width


def geometry_delta(layout: Layout, tag: str = "geom") -> LayoutDelta:
    """The disjoint edits plus a one-unit cell move, when one is legal.

    Candidate moves are scanned deterministically (cell insertion
    order × the four unit directions), preferring moves that keep the
    moved cell ≥ 2 units from every other cell (routing channels stay
    open) over ones that merely satisfy the paper's ≥ 1 separation;
    each shortlisted move is confirmed by applying the delta and
    running full placement validation.  Falls back to the plain
    disjoint delta when no move survives.
    """
    base = disjoint_delta(layout, tag)
    candidates = sorted(
        _unit_moves(layout),
        key=lambda move: -min(_move_separation(layout, move) or -1, 2),
    )
    for move in candidates:
        separation = _move_separation(layout, move)
        if separation is None or separation < 1:
            continue
        delta = LayoutDelta(
            move_cells=(move,),
            remove_nets=base.remove_nets,
            add_nets=base.add_nets,
        )
        try:
            validate_layout(apply_delta(layout, delta))
        except (LayoutError, ValidationError):
            continue
        return delta
    return base


def replace_nets_delta(
    layout: Layout, count: int, tag: str = "replace"
) -> LayoutDelta:
    """Remove and re-add the first *count* nets verbatim.

    The mutated layout is *identical* to the base one, but the
    replaced nets are classified *new* (their routes are recomputed)
    while everything else is kept — a pure dirty-fraction dial for the
    incremental benchmark, with the from-scratch result available as
    an exact oracle.  *tag* is unused (the re-added nets must keep
    their names) but accepted for signature symmetry.
    """
    del tag
    if count < 0 or count > len(layout.nets):
        raise LayoutError(
            f"cannot replace {count} nets of a {len(layout.nets)}-net layout"
        )
    chosen = layout.nets[:count]
    return LayoutDelta(
        remove_nets=tuple(net.name for net in chosen),
        add_nets=tuple(chosen),
    )
