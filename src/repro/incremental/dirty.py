"""Dirty-set analysis: which prior routes survive a layout delta.

Given a previous :class:`~repro.core.route.GlobalRoute`, the base
layout it was routed on, and a :class:`~repro.incremental.delta.LayoutDelta`,
:func:`classify_nets` sorts every net of the mutated layout into

*kept*
    present in both layouts with identical pins, and its prior route
    stays clear of every piece of changed geometry — the route is
    reused verbatim;
*ripped*
    present in both layouts but its prior route cannot be trusted
    (pins moved, the route crosses changed geometry, the outline
    changed, or there simply is no prior route for it);
*new*
    absent from the base layout (including nets the delta replaces).

The geometry test reuses the PR-3 machinery: the changed footprints
(:func:`~repro.incremental.delta.changed_rects`), inflated by one
unit, become an :class:`~repro.geometry.raytrace.ObstacleSet` (with
its epoch-guarded memo and ``CoordIndex`` edge tables), and each
candidate tree is probed with the same vectorized
``segment_free``/``point_free`` queries the router itself uses.  The
one-unit inflation makes the test *conservative*: a route that merely
hugs a changed cell's old or new wall crosses the inflated interior
and is ripped, so a kept route can never intersect — or even touch —
changed geometry (the soundness invariant pinned by
``tests/property/test_delta_props.py``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional

from repro.geometry.raytrace import ObstacleSet
from repro.geometry.rect import Rect
from repro.core.route import GlobalRoute, RouteTree
from repro.layout.io import net_to_dict
from repro.layout.layout import Layout
from repro.incremental.delta import LayoutDelta, changed_rects

#: Inflation (in layout units) applied to changed footprints before the
#: intersection test, so that hugging counts as intersecting.
CLEARANCE = 1


@dataclass(frozen=True)
class DirtySet:
    """The classification of every net of the mutated layout.

    ``removed`` lists base-layout nets that no longer exist (their
    routes are simply dropped); ``reasons`` maps each ripped net to a
    human-readable cause for reports and telemetry.
    """

    kept: tuple[str, ...]
    ripped: tuple[str, ...]
    new: tuple[str, ...]
    removed: tuple[str, ...]
    reasons: tuple[tuple[str, str], ...] = ()

    @property
    def dirty(self) -> tuple[str, ...]:
        """The nets the re-router must actually route (sorted)."""
        return tuple(sorted(set(self.ripped) | set(self.new)))

    def as_dict(self) -> dict[str, Any]:
        """JSON-ready representation."""
        return {
            "kept": list(self.kept),
            "ripped": list(self.ripped),
            "new": list(self.new),
            "removed": list(self.removed),
            "reasons": dict(self.reasons),
        }


def _probe_bound(base: Layout, mutated: Layout, rects: list[Rect]) -> Rect:
    """A bound enclosing both outlines and every inflated changed rect.

    The probe set needs every prior-route segment *inside* its bound
    (``segment_free`` reports out-of-bound segments as blocked, which
    would spuriously rip nets near the surface edge), and inflated
    rects may stick past either outline.
    """
    xs = [base.outline.x0, base.outline.x1, mutated.outline.x0, mutated.outline.x1]
    ys = [base.outline.y0, base.outline.y1, mutated.outline.y0, mutated.outline.y1]
    for rect in rects:
        xs.extend((rect.x0, rect.x1))
        ys.extend((rect.y0, rect.y1))
    return Rect(min(xs) - 1, min(ys) - 1, max(xs) + 1, max(ys) + 1)


def _tree_clear(probe: ObstacleSet, tree: RouteTree) -> bool:
    """Whether every point and segment of *tree* avoids the probe rects."""
    for path in tree.paths:
        for point in path.points:
            if not probe.point_free(point):
                return False
        for segment in path.segments:
            if not probe.segment_free(segment):
                return False
    return True


def classify_nets(
    prev_route: GlobalRoute,
    base_layout: Layout,
    mutated_layout: Layout,
    delta: LayoutDelta,
) -> DirtySet:
    """Classify every net of *mutated_layout* as kept, ripped, or new.

    *prev_route* is the routing of *base_layout* that a reroute wants
    to reuse; *mutated_layout* must be ``apply_delta(base_layout,
    delta)`` (the caller usually has it already, so it is passed in
    rather than recomputed).
    """
    base_names = {net.name for net in base_layout.nets}
    mutated_names = {net.name for net in mutated_layout.nets}
    replaced = set(delta.replaced_nets)
    new = sorted((mutated_names - base_names) | (replaced & mutated_names))
    removed = sorted(base_names - mutated_names)

    outline_changed = (
        delta.outline is not None and delta.outline != base_layout.outline
    )
    inflated = [r.inflated(CLEARANCE) for r in changed_rects(base_layout, delta)]
    probe: Optional[ObstacleSet] = None
    if inflated and not outline_changed:
        probe = ObstacleSet(
            _probe_bound(base_layout, mutated_layout, inflated), inflated
        )

    kept: list[str] = []
    ripped: list[str] = []
    reasons: list[tuple[str, str]] = []

    def rip(name: str, reason: str) -> None:
        ripped.append(name)
        reasons.append((name, reason))

    for name in sorted(mutated_names - set(new)):
        if outline_changed:
            # A resized surface changes the boundary obstacles and the
            # escape coordinates globally; no prior route is trusted.
            rip(name, "outline changed")
            continue
        tree = prev_route.trees.get(name)
        if tree is None:
            rip(name, "no prior route")
            continue
        if net_to_dict(base_layout.net(name)) != net_to_dict(mutated_layout.net(name)):
            rip(name, "pins changed")
            continue
        if probe is not None and not _tree_clear(probe, tree):
            rip(name, "route intersects changed geometry")
            continue
        kept.append(name)

    return DirtySet(
        kept=tuple(kept),
        ripped=tuple(ripped),
        new=tuple(new),
        removed=tuple(removed),
        reasons=tuple(reasons),
    )
