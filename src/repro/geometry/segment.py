"""Axis-parallel (rectilinear) line segments.

Per the paper's implementation section, "points are linked dynamically
to form line segments which can either be edges of boxes (cells) or
segments of wire nets".  :class:`Segment` is that shared primitive: cell
edges, global-route wire segments, probe lines in the Hightower
baseline, and detailed-router track wires are all segments.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.errors import GeometryError
from repro.geometry.interval import Interval
from repro.geometry.point import Axis, Point


@dataclass(frozen=True, slots=True)
class Segment:
    """A closed axis-parallel segment between two points.

    Endpoints are normalized so that ``a <= b`` lexicographically, which
    makes equal geometric segments compare equal regardless of
    construction order.  Degenerate segments (``a == b``) are allowed;
    they arise from zero-length connection stubs and behave as points.

    Raises
    ------
    GeometryError
        If the endpoints are neither horizontally nor vertically
        aligned (diagonal segments are outside the Manhattan domain).
    """

    a: Point
    b: Point

    def __post_init__(self) -> None:
        if self.a.x != self.b.x and self.a.y != self.b.y:
            raise GeometryError(f"segment {self.a}-{self.b} is not axis-parallel")
        if self.b < self.a:
            # Normalize endpoint order; bypass frozen-ness deliberately.
            first, second = self.b, self.a
            object.__setattr__(self, "a", first)
            object.__setattr__(self, "b", second)

    # ------------------------------------------------------------------
    # Orientation and coordinates
    # ------------------------------------------------------------------
    @property
    def is_horizontal(self) -> bool:
        """True when both endpoints share a y coordinate.

        Degenerate segments report horizontal and vertical both True.
        """
        return self.a.y == self.b.y

    @property
    def is_vertical(self) -> bool:
        """True when both endpoints share an x coordinate."""
        return self.a.x == self.b.x

    @property
    def is_degenerate(self) -> bool:
        """True for a zero-length (single-point) segment."""
        return self.a == self.b

    @property
    def axis(self) -> Axis:
        """Axis of extent (degenerate segments report ``Axis.X``)."""
        return Axis.Y if self.is_vertical and not self.is_horizontal else Axis.X

    @property
    def track(self) -> int:
        """The fixed coordinate: y for horizontal segments, x for vertical."""
        return self.a.y if self.is_horizontal else self.a.x

    @property
    def span(self) -> Interval:
        """Interval of the varying coordinate."""
        if self.is_horizontal:
            return Interval(self.a.x, self.b.x)
        return Interval(self.a.y, self.b.y)

    @property
    def length(self) -> int:
        """Manhattan length of the segment."""
        return self.a.manhattan(self.b)

    # ------------------------------------------------------------------
    # Point relationships
    # ------------------------------------------------------------------
    def contains_point(self, p: Point) -> bool:
        """Whether *p* lies on the closed segment."""
        if self.is_horizontal and p.y == self.a.y:
            return self.a.x <= p.x <= self.b.x
        if self.is_vertical and p.x == self.a.x:
            return self.a.y <= p.y <= self.b.y
        return False

    def contains_point_strictly(self, p: Point) -> bool:
        """Whether *p* lies on the segment excluding the endpoints."""
        return self.contains_point(p) and p != self.a and p != self.b

    def nearest_point_to(self, p: Point) -> Point:
        """The point on the segment closest (L1) to *p*."""
        if self.is_horizontal:
            return Point(self.span.clamp(p.x), self.a.y)
        return Point(self.a.x, self.span.clamp(p.y))

    def distance_to_point(self, p: Point) -> int:
        """Rectilinear distance from *p* to the nearest segment point."""
        return self.nearest_point_to(p).manhattan(p)

    # ------------------------------------------------------------------
    # Segment relationships
    # ------------------------------------------------------------------
    def is_collinear_with(self, other: "Segment") -> bool:
        """Same orientation and same track coordinate."""
        if self.is_horizontal and other.is_horizontal:
            return self.a.y == other.a.y
        if self.is_vertical and other.is_vertical:
            return self.a.x == other.a.x
        return False

    def overlap(self, other: "Segment") -> Optional["Segment"]:
        """Shared sub-segment of two collinear segments, else ``None``.

        Touching at a single point yields a degenerate segment.
        """
        if not self.is_collinear_with(other):
            return None
        if self.is_degenerate or other.is_degenerate:
            # A degenerate operand's span axis is ambiguous; resolve by
            # the point-on-segment test, which is symmetric.
            point_seg, seg = (self, other) if self.is_degenerate else (other, self)
            p = point_seg.a
            return Segment(p, p) if seg.contains_point(p) else None
        shared = self.span.intersection(other.span)
        if shared is None:
            return None
        if self.is_horizontal:
            y = self.a.y
            return Segment(Point(shared.lo, y), Point(shared.hi, y))
        x = self.a.x
        return Segment(Point(x, shared.lo), Point(x, shared.hi))

    def crossing_point(self, other: "Segment") -> Optional[Point]:
        """Intersection point of two perpendicular segments, else ``None``.

        Endpoint touches count as crossings; collinear overlaps return
        ``None`` (use :meth:`overlap` for those).
        """
        h, v = None, None
        if self.is_horizontal and other.is_vertical and not other.is_horizontal:
            h, v = self, other
        elif self.is_vertical and other.is_horizontal and not self.is_horizontal:
            h, v = other, self
        elif self.is_degenerate or other.is_degenerate:
            # A point "crosses" a segment if it lies on it.
            point_seg, seg = (self, other) if self.is_degenerate else (other, self)
            return point_seg.a if seg.contains_point(point_seg.a) else None
        if h is None or v is None:
            return None
        candidate = Point(v.a.x, h.a.y)
        if h.contains_point(candidate) and v.contains_point(candidate):
            return candidate
        return None

    def intersects(self, other: "Segment") -> bool:
        """Whether the two closed segments share at least one point."""
        if self.crossing_point(other) is not None:
            return True
        return self.overlap(other) is not None

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    def split_at(self, p: Point) -> tuple["Segment", "Segment"]:
        """Split the segment at an interior-or-endpoint point *p*.

        Returns two segments whose union is this segment.  Splitting at
        an endpoint yields one degenerate piece, which keeps callers
        (the Steiner tree builder taps tree segments at arbitrary
        points) free of special cases.
        """
        if not self.contains_point(p):
            raise GeometryError(f"cannot split {self} at {p}: point not on segment")
        return (Segment(self.a, p), Segment(p, self.b))

    @staticmethod
    def between(a: Point, b: Point) -> "Segment":
        """Explicit-name constructor, mirrors ``Segment(a, b)``."""
        return Segment(a, b)

    @staticmethod
    def horizontal(y: int, x0: int, x1: int) -> "Segment":
        """Horizontal segment at height *y* spanning ``[x0, x1]``."""
        return Segment(Point(x0, y), Point(x1, y))

    @staticmethod
    def vertical(x: int, y0: int, y1: int) -> "Segment":
        """Vertical segment at abscissa *x* spanning ``[y0, y1]``."""
        return Segment(Point(x, y0), Point(x, y1))

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.a}--{self.b}"


def path_length(points: list[Point]) -> int:
    """Total rectilinear length of a polyline given as bend points.

    Raises :class:`GeometryError` if consecutive points are not
    axis-aligned (the polyline would not be rectilinear).
    """
    total = 0
    for a, b in zip(points, points[1:]):
        if a.x != b.x and a.y != b.y:
            raise GeometryError(f"polyline hop {a}->{b} is not rectilinear")
        total += a.manhattan(b)
    return total


def path_segments(points: list[Point]) -> list[Segment]:
    """Convert polyline bend points into the list of non-degenerate segments."""
    segs: list[Segment] = []
    for a, b in zip(points, points[1:]):
        if a != b:
            segs.append(Segment(a, b))
    return segs


def path_bends(points: list[Point]) -> int:
    """Number of direction changes in a rectilinear polyline.

    Collinear intermediate points are ignored; degenerate hops are
    skipped.  A straight wire has zero bends.
    """
    directions: list[tuple[int, int]] = []
    for a, b in zip(points, points[1:]):
        if a == b:
            continue
        dx = (b.x > a.x) - (b.x < a.x)
        dy = (b.y > a.y) - (b.y < a.y)
        if directions and directions[-1] == (dx, dy):
            continue
        directions.append((dx, dy))
    return max(0, len(directions) - 1)
