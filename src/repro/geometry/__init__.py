"""Rectilinear geometry substrate.

This package provides the exact, rectilinear (Manhattan) geometry on
which the whole router is built: points, 1-D intervals, axis-parallel
segments, axis-aligned rectangles, orthogonal polygons, the
topologically-ordered point structure from the paper's implementation
section, and the Sutherland-style ray tracer used for successor
generation.

Coordinates are arbitrary Python numbers; the routers use exact integer
coordinates ("database units").  *Gridless* means no routing grid is
imposed on placements or pins — not that coordinates are continuous.
"""

from repro.geometry.point import Direction, Point, manhattan
from repro.geometry.interval import Interval
from repro.geometry.segment import Segment
from repro.geometry.rect import Rect, bounding_rect
from repro.geometry.orthpoly import OrthoPolygon
from repro.geometry.topology import CoordIndex, LinkedPointMesh, MeshPoint
from repro.geometry.raytrace import Hit, ObstacleSet

__all__ = [
    "CoordIndex",
    "Direction",
    "Hit",
    "Interval",
    "LinkedPointMesh",
    "MeshPoint",
    "ObstacleSet",
    "OrthoPolygon",
    "Point",
    "Rect",
    "Segment",
    "bounding_rect",
    "manhattan",
]
