"""Sutherland-style ray tracing over an obstacle set.

The paper's successor generator needs "a method of detecting when a
path collides with a cell" — implemented here as axis-parallel ray
queries against the set of blocking rectangles: from an origin point,
in one of the four rectilinear directions, how far can a wire extend
before it would enter a cell interior or leave the routing boundary,
and which cell stopped it?

Semantics
---------
* Obstacle rects block with their **open interiors**: a ray may run
  along a cell edge (hugging) or touch a corner without being blocked.
* The routing boundary ("bound") is a hard closed limit: rays stop at
  its edge.
* Queries are vectorized over numpy arrays of the rect coordinates so
  that layouts with hundreds of cells stay fast; the arrays are rebuilt
  lazily when the set mutates (the sequential-routing baseline adds
  wire obstacles on the fly).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional

import numpy as np

from repro.errors import GeometryError
from repro.geometry.point import Direction, Point
from repro.geometry.rect import Rect
from repro.geometry.segment import Segment
from repro.geometry.topology import CoordIndex


@dataclass(frozen=True, slots=True)
class Hit:
    """Result of a ray query.

    Attributes
    ----------
    origin:
        The ray origin.
    reach:
        The farthest point the ray may legally extend to.  Equal to
        *origin* when the ray is blocked immediately.
    obstacle:
        The blocking rect, or ``None`` when the ray stopped at the
        routing boundary.
    """

    origin: Point
    reach: Point
    obstacle: Optional[Rect]

    @property
    def distance(self) -> int:
        """Clear distance from origin to reach."""
        return self.origin.manhattan(self.reach)

    @property
    def blocked_by_cell(self) -> bool:
        """True when a cell (not the boundary) stopped the ray."""
        return self.obstacle is not None


class ObstacleSet:
    """A routing boundary plus a mutable set of blocking rectangles.

    Parameters
    ----------
    bound:
        The routing surface.  All queries are confined to it.
    rects:
        Initial blocking rectangles (typically the layout's cells).
        Degenerate rects are legal; having an empty interior they never
        block, but their edge coordinates still register as escape
        coordinates.
    """

    def __init__(self, bound: Rect, rects: Iterable[Rect] = ()):
        self.bound = bound
        self._rects: list[Rect] = list(rects)
        self._dirty = True
        self._x0 = self._y0 = self._x1 = self._y1 = np.empty(0)
        self._edge_xs: Optional[CoordIndex] = None
        self._edge_ys: Optional[CoordIndex] = None

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    @property
    def rects(self) -> tuple[Rect, ...]:
        """The current blocking rects (read-only view)."""
        return tuple(self._rects)

    def add(self, rect: Rect) -> None:
        """Add a blocking rect (used by nets-as-obstacles baselines)."""
        self._rects.append(rect)
        self._dirty = True

    def add_many(self, rects: Iterable[Rect]) -> None:
        """Add several blocking rects at once."""
        self._rects.extend(rects)
        self._dirty = True

    def remove(self, rect: Rect) -> None:
        """Remove one occurrence of *rect*.

        Raises :class:`GeometryError` if absent.
        """
        try:
            self._rects.remove(rect)
        except ValueError:
            raise GeometryError(f"rect {rect} not in obstacle set") from None
        self._dirty = True

    def _refresh(self) -> None:
        if not self._dirty:
            return
        self._x0 = np.array([r.x0 for r in self._rects], dtype=np.int64)
        self._y0 = np.array([r.y0 for r in self._rects], dtype=np.int64)
        self._x1 = np.array([r.x1 for r in self._rects], dtype=np.int64)
        self._y1 = np.array([r.y1 for r in self._rects], dtype=np.int64)
        xs = CoordIndex()
        ys = CoordIndex()
        for rect in self._rects:
            xs.add(rect.x0)
            xs.add(rect.x1)
            ys.add(rect.y0)
            ys.add(rect.y1)
        xs.add(self.bound.x0)
        xs.add(self.bound.x1)
        ys.add(self.bound.y0)
        ys.add(self.bound.y1)
        self._edge_xs = xs
        self._edge_ys = ys
        self._dirty = False

    # ------------------------------------------------------------------
    # Escape coordinates
    # ------------------------------------------------------------------
    @property
    def edge_xs(self) -> CoordIndex:
        """Sorted index of all rect + boundary x edge coordinates."""
        self._refresh()
        assert self._edge_xs is not None
        return self._edge_xs

    @property
    def edge_ys(self) -> CoordIndex:
        """Sorted index of all rect + boundary y edge coordinates."""
        self._refresh()
        assert self._edge_ys is not None
        return self._edge_ys

    # ------------------------------------------------------------------
    # Point / segment queries
    # ------------------------------------------------------------------
    def point_free(self, p: Point) -> bool:
        """Whether *p* is routable: inside the bound, outside all interiors."""
        if not self.bound.contains_point(p):
            return False
        self._refresh()
        if not self._rects:
            return True
        inside = (
            (self._x0 < p.x) & (p.x < self._x1) & (self._y0 < p.y) & (p.y < self._y1)
        )
        return not bool(inside.any())

    def segment_free(self, seg: Segment) -> bool:
        """Whether a wire along *seg* is legal (no interior crossings).

        Hugging cell edges is legal; the segment must also lie within
        the routing boundary.
        """
        if not (self.bound.contains_point(seg.a) and self.bound.contains_point(seg.b)):
            return False
        self._refresh()
        if not self._rects:
            return True
        if seg.is_degenerate:
            return self.point_free(seg.a)
        if seg.is_horizontal:
            y = seg.a.y
            crossing = (
                (self._y0 < y)
                & (y < self._y1)
                & (np.maximum(self._x0, seg.a.x) < np.minimum(self._x1, seg.b.x))
            )
        else:
            x = seg.a.x
            crossing = (
                (self._x0 < x)
                & (x < self._x1)
                & (np.maximum(self._y0, seg.a.y) < np.minimum(self._y1, seg.b.y))
            )
        return not bool(crossing.any())

    def rects_touching(self, p: Point) -> list[Rect]:
        """Rects whose boundary passes through *p*.

        Used by the aggressive successor generator: the cell currently
        being hugged contributes its corner coordinates as escape stops.
        """
        self._refresh()
        if not self._rects:
            return []
        closed = (
            (self._x0 <= p.x) & (p.x <= self._x1) & (self._y0 <= p.y) & (p.y <= self._y1)
        )
        return [self._rects[i] for i in np.flatnonzero(closed)]

    # ------------------------------------------------------------------
    # Ray tracing
    # ------------------------------------------------------------------
    def first_hit(self, origin: Point, direction: Direction) -> Hit:
        """Trace a ray and report how far it can extend.

        Raises
        ------
        GeometryError
            If *origin* lies outside the routing boundary or strictly
            inside an obstacle (rays cannot start from illegal points).
        """
        if not self.bound.contains_point(origin):
            raise GeometryError(f"ray origin {origin} outside routing bound {self.bound}")
        if not self.point_free(origin):
            raise GeometryError(f"ray origin {origin} inside an obstacle")
        self._refresh()
        px, py = origin.x, origin.y
        if direction is Direction.EAST:
            limit = self.bound.x1
            stops = self._ray_stops(self._y0, self._y1, py, self._x1 > px, self._x0, px, +1)
        elif direction is Direction.WEST:
            limit = self.bound.x0
            stops = self._ray_stops(self._y0, self._y1, py, self._x0 < px, self._x1, px, -1)
        elif direction is Direction.NORTH:
            limit = self.bound.y1
            stops = self._ray_stops(self._x0, self._x1, px, self._y1 > py, self._y0, py, +1)
        else:  # SOUTH
            limit = self.bound.y0
            stops = self._ray_stops(self._x0, self._x1, px, self._y0 < py, self._y1, py, -1)

        obstacle: Optional[Rect] = None
        reach_coord = limit
        if stops is not None and stops[0].size:
            coords, indices = stops
            best = int(coords.argmin() if direction.sign > 0 else coords.argmax())
            candidate = int(coords[best])
            closer = candidate < reach_coord if direction.sign > 0 else candidate > reach_coord
            if closer or candidate == reach_coord:
                reach_coord = candidate
                obstacle = self._rects[int(indices[best])]
        reach = (
            origin.with_x(reach_coord) if direction.is_horizontal else origin.with_y(reach_coord)
        )
        return Hit(origin, reach, obstacle)

    def _ray_stops(self, perp_lo, perp_hi, perp_coord, ahead_mask, near_edge, start, sign):
        """Candidate stop coordinates for one ray direction.

        A rect blocks when the ray's fixed coordinate is strictly inside
        the rect's perpendicular span and some part of the rect lies
        ahead.  The stop is the rect's near edge, clamped back to the
        origin when the origin already touches the rect's far column.
        """
        if not self._rects:
            return None
        mask = (perp_lo < perp_coord) & (perp_coord < perp_hi) & ahead_mask
        if not mask.any():
            return (np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64))
        indices = np.flatnonzero(mask)
        edges = near_edge[indices]
        if sign > 0:
            coords = np.maximum(edges, start)
        else:
            coords = np.minimum(edges, start)
        return (coords, indices)

    def clear_run(self, origin: Point, direction: Direction) -> Segment:
        """The maximal legal wire segment from *origin* along *direction*."""
        hit = self.first_hit(origin, direction)
        return Segment(origin, hit.reach)
