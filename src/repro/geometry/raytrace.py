"""Sutherland-style ray tracing over an obstacle set.

The paper's successor generator needs "a method of detecting when a
path collides with a cell" — implemented here as axis-parallel ray
queries against the set of blocking rectangles: from an origin point,
in one of the four rectilinear directions, how far can a wire extend
before it would enter a cell interior or leave the routing boundary,
and which cell stopped it?

Semantics
---------
* Obstacle rects block with their **open interiors**: a ray may run
  along a cell edge (hugging) or touch a corner without being blocked.
* The routing boundary ("bound") is a hard closed limit: rays stop at
  its edge.
* Queries are vectorized over numpy arrays of the rect coordinates so
  that layouts with hundreds of cells stay fast; the arrays are
  maintained **incrementally**: ``add``/``add_many`` append new
  coordinate columns in place (amortized growth) and ``remove`` masks
  the victim's column with an out-of-bound sentinel instead of
  rebuilding everything, so wire-obstacle churn in the sequential
  baseline stays cheap.  Dead columns are compacted away once they
  outnumber the live ones.
* Every mutation bumps an **epoch counter**.  Ray queries are memoized
  per epoch — the memo is dropped whenever the epoch advances — so
  repeated queries against a static set (the negotiation engine
  re-searches the same layout every iteration) are answered from the
  cache.  Hit/miss counters are exposed for the perf harness
  (``benchmarks/bench_x5_hotpath.py``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional

import numpy as np

from repro.errors import GeometryError
from repro.geometry.point import Direction, Point
from repro.geometry.rect import Rect
from repro.geometry.segment import Segment
from repro.geometry.topology import CoordIndex

#: Memo entries kept before the ray cache is wholesale cleared.  The
#: distinct (origin, direction) pairs a search touches are bounded by
#: the escape-point graph, so this is a runaway guard, not a tuning knob.
RAY_CACHE_LIMIT = 1 << 20

#: Dead columns tolerated before :meth:`ObstacleSet._compact` runs.
_COMPACT_SLACK = 64

_INITIAL_CAPACITY = 16


@dataclass(frozen=True, slots=True)
class Hit:
    """Result of a ray query.

    Attributes
    ----------
    origin:
        The ray origin.
    reach:
        The farthest point the ray may legally extend to.  Equal to
        *origin* when the ray is blocked immediately.
    obstacle:
        The blocking rect, or ``None`` when the ray stopped at the
        routing boundary.
    """

    origin: Point
    reach: Point
    obstacle: Optional[Rect]

    @property
    def distance(self) -> int:
        """Clear distance from origin to reach."""
        return self.origin.manhattan(self.reach)

    @property
    def blocked_by_cell(self) -> bool:
        """True when a cell (not the boundary) stopped the ray."""
        return self.obstacle is not None


class ObstacleSet:
    """A routing boundary plus a mutable set of blocking rectangles.

    Parameters
    ----------
    bound:
        The routing surface.  All queries are confined to it.
    rects:
        Initial blocking rectangles (typically the layout's cells).
        Degenerate rects are legal; having an empty interior they never
        block, but their edge coordinates still register as escape
        coordinates.
    ray_cache:
        Memoize :meth:`first_hit` per epoch (default on).  Turning the
        cache off yields byte-identical query results — it exists for
        A/B perf measurement and debugging.
    """

    def __init__(self, bound: Rect, rects: Iterable[Rect] = (), *, ray_cache: bool = True):
        self.bound = bound
        # Slot-addressed storage: _slots[i] is the rect occupying numpy
        # column i, or None once removed.  _ids maps each rect value to
        # its live slot ids so removal is O(1) instead of a list scan.
        self._slots: list[Optional[Rect]] = []
        self._ids: dict[Rect, list[int]] = {}
        self._count = 0  # used columns, dead ones included
        self._live = 0
        capacity = _INITIAL_CAPACITY
        self._x0 = np.empty(capacity, dtype=np.int64)
        self._y0 = np.empty(capacity, dtype=np.int64)
        self._x1 = np.empty(capacity, dtype=np.int64)
        self._y1 = np.empty(capacity, dtype=np.int64)
        # Dead-column sentinel: a degenerate point strictly outside the
        # bound fails every open-interval, closed-touch, and ray-stop
        # test, so masked columns are inert without a separate mask pass.
        self._dead_x = bound.x1 + 1
        self._dead_y = bound.y1 + 1
        self._edge_xs = CoordIndex((bound.x0, bound.x1))
        self._edge_ys = CoordIndex((bound.y0, bound.y1))
        self._epoch = 0
        self.ray_cache_enabled = ray_cache
        self._ray_cache: dict[tuple[int, int, Direction], Hit] = {}
        self._reach_cache: dict[tuple[int, int], tuple[int, int, int, int]] = {}
        self.ray_cache_hits = 0
        self.ray_cache_misses = 0
        self._sync_views()
        for rect in rects:
            self._append(rect)
        self._sync_views()

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    @property
    def rects(self) -> tuple[Rect, ...]:
        """The current blocking rects (read-only view, insertion order)."""
        return tuple(r for r in self._slots if r is not None)

    @property
    def epoch(self) -> int:
        """Mutation counter; bumps on every ``add``/``add_many``/``remove``.

        Cached ray answers are only ever served within the epoch they
        were computed in.
        """
        return self._epoch

    def add(self, rect: Rect) -> None:
        """Add a blocking rect (used by nets-as-obstacles baselines)."""
        self._append(rect)
        self._sync_views()
        self._mutated()

    def add_many(self, rects: Iterable[Rect]) -> None:
        """Add several blocking rects at once (one epoch bump)."""
        for rect in rects:
            self._append(rect)
        self._sync_views()
        self._mutated()

    def remove(self, rect: Rect) -> None:
        """Remove one occurrence of *rect*.

        Raises :class:`GeometryError` if absent.  O(1) via the id-map
        (plus an occasional compaction sweep), not a list scan.
        """
        ids = self._ids.get(rect)
        if not ids:
            raise GeometryError(f"rect {rect} not in obstacle set")
        slot = ids.pop()
        if not ids:
            del self._ids[rect]
        self._slots[slot] = None
        self._x0[slot] = self._x1[slot] = self._dead_x
        self._y0[slot] = self._y1[slot] = self._dead_y
        self._live -= 1
        for index, coords in ((self._edge_xs, (rect.x0, rect.x1)),
                              (self._edge_ys, (rect.y0, rect.y1))):
            for coord in coords:
                index.remove(coord)
        dead = self._count - self._live
        if dead > _COMPACT_SLACK and dead > self._live:
            self._compact()
        self._mutated()

    def _append(self, rect: Rect, *, register_edges: bool = True) -> None:
        """Install *rect* in the next free column (no epoch bump)."""
        slot = self._count
        if slot == len(self._x0):
            grown = max(_INITIAL_CAPACITY, 2 * len(self._x0))
            for name in ("_x0", "_y0", "_x1", "_y1"):
                old = getattr(self, name)
                new = np.empty(grown, dtype=np.int64)
                new[:slot] = old[:slot]
                setattr(self, name, new)
        self._x0[slot] = rect.x0
        self._y0[slot] = rect.y0
        self._x1[slot] = rect.x1
        self._y1[slot] = rect.y1
        self._slots.append(rect)
        self._ids.setdefault(rect, []).append(slot)
        self._count += 1
        self._live += 1
        if register_edges:
            self._edge_xs.add(rect.x0)
            self._edge_xs.add(rect.x1)
            self._edge_ys.add(rect.y0)
            self._edge_ys.add(rect.y1)

    def _compact(self) -> None:
        """Drop dead columns, preserving live insertion order.

        Geometry is unchanged, so the epoch (and any cached answers)
        survive compaction.
        """
        live = [r for r in self._slots if r is not None]
        self._slots = []
        self._ids = {}
        self._count = 0
        self._live = 0
        for rect in live:
            self._append(rect, register_edges=False)
        self._sync_views()

    def _sync_views(self) -> None:
        """Refresh the used-column array views after a mutation."""
        count = self._count
        self._vx0 = self._x0[:count]
        self._vy0 = self._y0[:count]
        self._vx1 = self._x1[:count]
        self._vy1 = self._y1[:count]

    def _mutated(self) -> None:
        """Advance the epoch and invalidate memoized ray answers."""
        self._epoch += 1
        if self._ray_cache:
            self._ray_cache.clear()
        if self._reach_cache:
            self._reach_cache.clear()

    # ------------------------------------------------------------------
    # Escape coordinates
    # ------------------------------------------------------------------
    @property
    def edge_xs(self) -> CoordIndex:
        """Sorted index of all rect + boundary x edge coordinates."""
        return self._edge_xs

    @property
    def edge_ys(self) -> CoordIndex:
        """Sorted index of all rect + boundary y edge coordinates."""
        return self._edge_ys

    # ------------------------------------------------------------------
    # Point / segment queries
    # ------------------------------------------------------------------
    def point_free(self, p: Point) -> bool:
        """Whether *p* is routable: inside the bound, outside all interiors."""
        if not self.bound.contains_point(p):
            return False
        if not self._count:
            return True
        inside = (
            (self._vx0 < p.x) & (p.x < self._vx1) & (self._vy0 < p.y) & (p.y < self._vy1)
        )
        return not bool(inside.any())

    def segment_free(self, seg: Segment) -> bool:
        """Whether a wire along *seg* is legal (no interior crossings).

        Hugging cell edges is legal; the segment must also lie within
        the routing boundary.
        """
        if not (self.bound.contains_point(seg.a) and self.bound.contains_point(seg.b)):
            return False
        if not self._count:
            return True
        if seg.is_degenerate:
            return self.point_free(seg.a)
        if seg.is_horizontal:
            y = seg.a.y
            crossing = (
                (self._vy0 < y)
                & (y < self._vy1)
                & (np.maximum(self._vx0, seg.a.x) < np.minimum(self._vx1, seg.b.x))
            )
        else:
            x = seg.a.x
            crossing = (
                (self._vx0 < x)
                & (x < self._vx1)
                & (np.maximum(self._vy0, seg.a.y) < np.minimum(self._vy1, seg.b.y))
            )
        return not bool(crossing.any())

    def rects_touching(self, p: Point) -> list[Rect]:
        """Rects whose boundary passes through *p*.

        Used by the aggressive successor generator: the cell currently
        being hugged contributes its corner coordinates as escape stops.
        """
        if not self._count:
            return []
        closed = (
            (self._vx0 <= p.x) & (p.x <= self._vx1) & (self._vy0 <= p.y) & (p.y <= self._vy1)
        )
        touching = (self._slots[i] for i in np.flatnonzero(closed))
        return [rect for rect in touching if rect is not None]

    def on_any_boundary(self, p: Point) -> bool:
        """Whether *p* lies on any rect's boundary or the routing bound's.

        The vectorized form of ``any(r.on_boundary(p) for r in rects)``
        used by the inverted-corner cost model, which queries it once
        per candidate bend.
        """
        if self._count:
            px, py = p.x, p.y
            closed = (
                (self._vx0 <= px) & (px <= self._vx1)
                & (self._vy0 <= py) & (py <= self._vy1)
            )
            edge = (
                (self._vx0 == px) | (self._vx1 == px)
                | (self._vy0 == py) | (self._vy1 == py)
            )
            matches = closed & edge
            if matches.any():
                # Dead columns hold an out-of-bound sentinel point; it
                # can only match a query at that exact point, but rule
                # it out anyway rather than rely on callers staying
                # inside the bound.
                if any(self._slots[i] is not None for i in np.flatnonzero(matches)):
                    return True
        return self.bound.on_boundary(p)

    # ------------------------------------------------------------------
    # Ray tracing
    # ------------------------------------------------------------------
    def first_hit(self, origin: Point, direction: Direction) -> Hit:
        """Trace a ray and report how far it can extend.

        Answers are memoized per epoch when ``ray_cache_enabled``; a
        cached answer is byte-identical to a fresh trace because the
        set cannot have mutated since it was stored.

        Raises
        ------
        GeometryError
            If *origin* lies outside the routing boundary or strictly
            inside an obstacle (rays cannot start from illegal points).
        """
        if self.ray_cache_enabled:
            key = (origin.x, origin.y, direction)
            hit = self._ray_cache.get(key)
            if hit is not None:
                self.ray_cache_hits += 1
                return hit
            hit = self._trace(origin, direction)
            self.ray_cache_misses += 1
            cache = self._ray_cache
            if len(cache) >= RAY_CACHE_LIMIT:
                cache.clear()
            cache[key] = hit
            return hit
        return self._trace(origin, direction)

    def reaches(self, x: int, y: int) -> tuple[int, int, int, int]:
        """All four ray reaches from ``(x, y)`` in one probe.

        Returns ``(east_x, west_x, north_y, south_y)``.  The batched
        search engine asks for all four directions of every expanded
        state, so the combined answer gets its own per-epoch memo — one
        dict probe instead of four — with the same invalidation rules
        (and the same telemetry: a combined hit counts as four ray
        hits) as :meth:`first_hit`.
        """
        if self.ray_cache_enabled:
            key = (x, y)
            cached = self._reach_cache.get(key)
            if cached is not None:
                self.ray_cache_hits += 4
                return cached
        origin = Point(x, y)
        first_hit = self.first_hit
        result = (
            first_hit(origin, Direction.EAST).reach.x,
            first_hit(origin, Direction.WEST).reach.x,
            first_hit(origin, Direction.NORTH).reach.y,
            first_hit(origin, Direction.SOUTH).reach.y,
        )
        if self.ray_cache_enabled:
            cache = self._reach_cache
            if len(cache) >= RAY_CACHE_LIMIT:
                cache.clear()
            cache[key] = result
        return result

    def _trace(self, origin: Point, direction: Direction) -> Hit:
        """The uncached ray trace behind :meth:`first_hit`."""
        if not self.bound.contains_point(origin):
            raise GeometryError(f"ray origin {origin} outside routing bound {self.bound}")
        if not self.point_free(origin):
            raise GeometryError(f"ray origin {origin} inside an obstacle")
        px, py = origin.x, origin.y
        if direction is Direction.EAST:
            limit = self.bound.x1
            stops = self._ray_stops(self._vy0, self._vy1, py, self._vx1 > px, self._vx0, px, +1)
        elif direction is Direction.WEST:
            limit = self.bound.x0
            stops = self._ray_stops(self._vy0, self._vy1, py, self._vx0 < px, self._vx1, px, -1)
        elif direction is Direction.NORTH:
            limit = self.bound.y1
            stops = self._ray_stops(self._vx0, self._vx1, px, self._vy1 > py, self._vy0, py, +1)
        else:  # SOUTH
            limit = self.bound.y0
            stops = self._ray_stops(self._vx0, self._vx1, px, self._vy0 < py, self._vy1, py, -1)

        obstacle: Optional[Rect] = None
        reach_coord = limit
        if stops is not None and stops[0].size:
            coords, indices = stops
            best = int(coords.argmin() if direction.sign > 0 else coords.argmax())
            candidate = int(coords[best])
            closer = candidate < reach_coord if direction.sign > 0 else candidate > reach_coord
            if closer or candidate == reach_coord:
                reach_coord = candidate
                obstacle = self._slots[int(indices[best])]
        reach = (
            origin.with_x(reach_coord) if direction.is_horizontal else origin.with_y(reach_coord)
        )
        return Hit(origin, reach, obstacle)

    def _ray_stops(self, perp_lo, perp_hi, perp_coord, ahead_mask, near_edge, start, sign):
        """Candidate stop coordinates for one ray direction.

        A rect blocks when the ray's fixed coordinate is strictly inside
        the rect's perpendicular span and some part of the rect lies
        ahead.  The stop is the rect's near edge, clamped back to the
        origin when the origin already touches the rect's far column.
        Dead (removed) columns hold the out-of-bound sentinel and can
        never satisfy the perpendicular-span test.
        """
        if not self._count:
            return None
        mask = (perp_lo < perp_coord) & (perp_coord < perp_hi) & ahead_mask
        if not mask.any():
            return (np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64))
        indices = np.flatnonzero(mask)
        edges = near_edge[indices]
        if sign > 0:
            coords = np.maximum(edges, start)
        else:
            coords = np.minimum(edges, start)
        return (coords, indices)

    def clear_run(self, origin: Point, direction: Direction) -> Segment:
        """The maximal legal wire segment from *origin* along *direction*."""
        hit = self.first_hit(origin, direction)
        return Segment(origin, hit.reach)
