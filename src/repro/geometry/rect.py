"""Axis-aligned rectangles.

Cells ("blocks") in a general-cell layout are rectangles, per the
paper's first placement restriction.  A :class:`Rect` is closed — it
includes its boundary — but routing semantics treat the *interior* as
blocked and the boundary as routable, because "optimal paths need only
hug the boundaries of cells".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional

from repro.errors import GeometryError
from repro.geometry.interval import Interval
from repro.geometry.point import Point
from repro.geometry.segment import Segment


@dataclass(frozen=True, slots=True, order=True)
class Rect:
    """A closed axis-aligned rectangle ``[x0, x1] x [y0, y1]``.

    Degenerate rectangles (zero width and/or height) are allowed; they
    represent segments or points and are used for inflated wire
    obstacles in the sequential-routing baseline.
    """

    x0: int
    y0: int
    x1: int
    y1: int

    def __post_init__(self) -> None:
        if self.x0 > self.x1 or self.y0 > self.y1:
            raise GeometryError(
                f"rect corners out of order: ({self.x0},{self.y0})-({self.x1},{self.y1})"
            )

    # ------------------------------------------------------------------
    # Basic measures
    # ------------------------------------------------------------------
    @property
    def width(self) -> int:
        """Extent along x."""
        return self.x1 - self.x0

    @property
    def height(self) -> int:
        """Extent along y."""
        return self.y1 - self.y0

    @property
    def area(self) -> int:
        """``width * height``."""
        return self.width * self.height

    @property
    def half_perimeter(self) -> int:
        """``width + height`` — the HPWL contribution of this bounding box."""
        return self.width + self.height

    @property
    def x_span(self) -> Interval:
        """The closed x interval."""
        return Interval(self.x0, self.x1)

    @property
    def y_span(self) -> Interval:
        """The closed y interval."""
        return Interval(self.y0, self.y1)

    @property
    def center(self) -> Point:
        """Integer center (rounded toward the lower-left on odd extents)."""
        return Point((self.x0 + self.x1) // 2, (self.y0 + self.y1) // 2)

    @property
    def corners(self) -> tuple[Point, Point, Point, Point]:
        """Corners in counter-clockwise order from the lower-left."""
        return (
            Point(self.x0, self.y0),
            Point(self.x1, self.y0),
            Point(self.x1, self.y1),
            Point(self.x0, self.y1),
        )

    @property
    def edges(self) -> tuple[Segment, Segment, Segment, Segment]:
        """Boundary edges: bottom, right, top, left."""
        bl, br, tr, tl = self.corners
        return (Segment(bl, br), Segment(br, tr), Segment(tl, tr), Segment(bl, tl))

    # ------------------------------------------------------------------
    # Point relationships
    # ------------------------------------------------------------------
    def contains_point(self, p: Point, *, strict: bool = False) -> bool:
        """Whether *p* is inside the rect.

        ``strict=True`` tests the open interior — the blocking test for
        routing, since cell boundaries remain routable.
        """
        return self.x_span.contains(p.x, strict=strict) and self.y_span.contains(
            p.y, strict=strict
        )

    def on_boundary(self, p: Point) -> bool:
        """Whether *p* lies exactly on the rectangle's boundary."""
        return self.contains_point(p) and not self.contains_point(p, strict=True)

    def distance_to_point(self, p: Point) -> int:
        """Rectilinear distance from *p* to the closed rect (0 if inside)."""
        return self.x_span.distance_to(p.x) + self.y_span.distance_to(p.y)

    def nearest_point_to(self, p: Point) -> Point:
        """The closed-rect point nearest (L1) to *p*."""
        return Point(self.x_span.clamp(p.x), self.y_span.clamp(p.y))

    # ------------------------------------------------------------------
    # Rect relationships
    # ------------------------------------------------------------------
    def contains_rect(self, other: "Rect") -> bool:
        """Whether *other* lies entirely within this closed rect."""
        return (
            self.x0 <= other.x0
            and other.x1 <= self.x1
            and self.y0 <= other.y0
            and other.y1 <= self.y1
        )

    def intersects(self, other: "Rect", *, strict: bool = False) -> bool:
        """Whether the rects share points.

        ``strict=True`` requires the open interiors to overlap — the
        test for an illegal cell overlap, since touching boundaries do
        not constitute overlap.
        """
        return self.x_span.overlaps(other.x_span, strict=strict) and self.y_span.overlaps(
            other.y_span, strict=strict
        )

    def intersection(self, other: "Rect") -> Optional["Rect"]:
        """Shared closed rect, or ``None`` when disjoint."""
        xs = self.x_span.intersection(other.x_span)
        ys = self.y_span.intersection(other.y_span)
        if xs is None or ys is None:
            return None
        return Rect(xs.lo, ys.lo, xs.hi, ys.hi)

    def hull(self, other: "Rect") -> "Rect":
        """Smallest rect containing both operands."""
        return Rect(
            min(self.x0, other.x0),
            min(self.y0, other.y0),
            max(self.x1, other.x1),
            max(self.y1, other.y1),
        )

    def separation(self, other: "Rect") -> int:
        """Rectilinear gap between two rects (0 when touching/overlapping).

        This is the quantity constrained by the paper's third placement
        restriction: blocks must be "placed a finite and non-zero
        distance apart".
        """
        return self.x_span.gap_to(other.x_span) + self.y_span.gap_to(other.y_span)

    # ------------------------------------------------------------------
    # Segment relationships
    # ------------------------------------------------------------------
    def segment_crosses_interior(self, seg: Segment) -> bool:
        """Whether an axis-parallel segment passes through the open interior.

        Running along the boundary (hugging) does not count; neither
        does touching a corner or edge from outside.  This is the
        validity test for global-route wires.
        """
        if seg.is_degenerate:
            return self.contains_point(seg.a, strict=True)
        if seg.is_horizontal:
            if not self.y_span.contains(seg.a.y, strict=True):
                return False
            return seg.span.overlaps(self.x_span, strict=True)
        if not self.x_span.contains(seg.a.x, strict=True):
            return False
        return seg.span.overlaps(self.y_span, strict=True)

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    def inflated(self, margin: int) -> "Rect":
        """The rect grown by *margin* on all four sides.

        A negative margin shrinks the rect; shrinking past a degenerate
        rect raises :class:`GeometryError`.
        """
        return Rect(self.x0 - margin, self.y0 - margin, self.x1 + margin, self.y1 + margin)

    def translated(self, dx: int, dy: int) -> "Rect":
        """The rect displaced by ``(dx, dy)``."""
        return Rect(self.x0 + dx, self.y0 + dy, self.x1 + dx, self.y1 + dy)

    @staticmethod
    def from_points(a: Point, b: Point) -> "Rect":
        """Bounding rect of two points (any relative order)."""
        return Rect(min(a.x, b.x), min(a.y, b.y), max(a.x, b.x), max(a.y, b.y))

    @staticmethod
    def from_segment(seg: Segment) -> "Rect":
        """Degenerate rect covering a segment."""
        return Rect.from_points(seg.a, seg.b)

    @staticmethod
    def from_origin_size(x: int, y: int, width: int, height: int) -> "Rect":
        """Rect with lower-left corner ``(x, y)`` and the given extents."""
        if width < 0 or height < 0:
            raise GeometryError(f"negative size {width}x{height}")
        return Rect(x, y, x + width, y + height)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"[{self.x0},{self.y0} .. {self.x1},{self.y1}]"


def bounding_rect(points: Iterable[Point]) -> Rect:
    """Smallest rect containing every point in *points*.

    Raises :class:`GeometryError` on an empty iterable.
    """
    pts = list(points)
    if not pts:
        raise GeometryError("cannot bound an empty point collection")
    return Rect(
        min(p.x for p in pts),
        min(p.y for p in pts),
        max(p.x for p in pts),
        max(p.y for p in pts),
    )
