"""Closed 1-D intervals.

Intervals are the workhorse of rectilinear geometry: every axis-parallel
segment is a coordinate plus an interval, every rectangle is a pair of
intervals, and channel/track assignment in the detailed router is
interval packing.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional

from repro.errors import GeometryError


@dataclass(frozen=True, slots=True, order=True)
class Interval:
    """A closed interval ``[lo, hi]`` with ``lo <= hi``.

    Degenerate intervals (``lo == hi``) are allowed; they represent a
    single coordinate and arise naturally from point-like wire stubs.
    """

    lo: int
    hi: int

    def __post_init__(self) -> None:
        if self.lo > self.hi:
            raise GeometryError(f"interval lo {self.lo!r} > hi {self.hi!r}")

    @property
    def length(self) -> int:
        """``hi - lo`` (zero for degenerate intervals)."""
        return self.hi - self.lo

    @property
    def is_degenerate(self) -> bool:
        """True when the interval is a single coordinate."""
        return self.lo == self.hi

    @property
    def midpoint(self) -> float:
        """Arithmetic midpoint (may be fractional for odd lengths)."""
        return (self.lo + self.hi) / 2

    def contains(self, value: int, *, strict: bool = False) -> bool:
        """Whether *value* lies in the interval.

        With ``strict=True`` the endpoints are excluded (open interval
        membership), which is how obstacle interiors block rays while
        their boundaries remain routable.
        """
        if strict:
            return self.lo < value < self.hi
        return self.lo <= value <= self.hi

    def contains_interval(self, other: "Interval") -> bool:
        """Whether *other* lies entirely inside this closed interval."""
        return self.lo <= other.lo and other.hi <= self.hi

    def overlaps(self, other: "Interval", *, strict: bool = False) -> bool:
        """Whether the two intervals share points.

        ``strict=True`` requires an overlap of positive length (touching
        endpoints do not count), the test used for "do these two wires
        conflict on the same track".
        """
        if strict:
            return self.lo < other.hi and other.lo < self.hi
        return self.lo <= other.hi and other.lo <= self.hi

    def intersection(self, other: "Interval") -> Optional["Interval"]:
        """The overlapping closed interval, or ``None`` if disjoint."""
        lo = max(self.lo, other.lo)
        hi = min(self.hi, other.hi)
        if lo > hi:
            return None
        return Interval(lo, hi)

    def hull(self, other: "Interval") -> "Interval":
        """Smallest interval containing both operands."""
        return Interval(min(self.lo, other.lo), max(self.hi, other.hi))

    def union(self, other: "Interval") -> "Interval":
        """Merge two overlapping-or-touching intervals.

        Raises :class:`GeometryError` when the operands are disjoint,
        because their union would not be an interval.
        """
        if not self.overlaps(other):
            raise GeometryError(f"cannot union disjoint intervals {self} and {other}")
        return self.hull(other)

    def clamp(self, value: int) -> int:
        """Nearest coordinate inside the interval."""
        return max(self.lo, min(self.hi, value))

    def distance_to(self, value: int) -> int:
        """Distance from *value* to the interval (zero if inside)."""
        if value < self.lo:
            return self.lo - value
        if value > self.hi:
            return value - self.hi
        return 0

    def gap_to(self, other: "Interval") -> int:
        """Separation between two intervals (zero when they touch/overlap)."""
        if self.overlaps(other):
            return 0
        if self.hi < other.lo:
            return other.lo - self.hi
        return self.lo - other.hi

    def expanded(self, margin: int) -> "Interval":
        """The interval grown by *margin* on both sides."""
        return Interval(self.lo - margin, self.hi + margin)

    @staticmethod
    def spanning(values: Iterable[int]) -> "Interval":
        """Smallest interval containing every value in *values*.

        Raises :class:`GeometryError` on an empty iterable.
        """
        items = list(values)
        if not items:
            raise GeometryError("cannot span an empty collection")
        return Interval(min(items), max(items))

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"[{self.lo}, {self.hi}]"


def merge_intervals(intervals: Iterable[Interval]) -> list[Interval]:
    """Merge overlapping/touching intervals into a minimal disjoint list.

    The result is sorted by ``lo``.  Used by the congestion model to
    compute covered spans of passage cross-sections.
    """
    ordered = sorted(intervals)
    merged: list[Interval] = []
    for iv in ordered:
        if merged and merged[-1].overlaps(iv):
            merged[-1] = merged[-1].union(iv)
        else:
            merged.append(iv)
    return merged


def total_length(intervals: Iterable[Interval]) -> int:
    """Total length of the union of *intervals* (overlaps counted once)."""
    return sum(iv.length for iv in merge_intervals(intervals))
