"""Topologically ordered point structures.

The paper's implementation section describes the data structure behind
its ray tracer: "The atomic unit of the data structure is the point.
... All points are linked to reflect their topological order in both x
and y. ... a third set of links is kept to maintain this logical
relationship between points" (membership in boxes and wire segments).

Two structures are provided:

* :class:`CoordIndex` — a sorted multiset of coordinates supporting
  range queries.  This is what the escape-coordinate generator actually
  needs (all cell-edge coordinates crossed by a clear ray span).
* :class:`LinkedPointMesh` — a faithful rendition of the linked-point
  mesh: every inserted point is doubly linked in global x order and in
  global y order and tagged with the logical owner it belongs to.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field
from typing import Hashable, Iterable, Iterator, Optional

import numpy as np

from repro.errors import GeometryError
from repro.geometry.point import Point


class CoordIndex:
    """A sorted multiset of integer coordinates with range queries.

    Duplicates are reference-counted so that removing one of two cells
    sharing an edge coordinate keeps the coordinate alive.
    """

    def __init__(self, values: Iterable[int] = ()):
        self._counts: dict[int, int] = {}
        self._sorted: list[int] = []
        self._array: Optional[np.ndarray] = None
        for value in values:
            self.add(value)

    def add(self, value: int) -> None:
        """Insert *value* (duplicates allowed)."""
        if value in self._counts:
            self._counts[value] += 1
        else:
            self._counts[value] = 1
            bisect.insort(self._sorted, value)
            self._array = None

    def remove(self, value: int) -> None:
        """Remove one occurrence of *value*.

        Raises :class:`KeyError` if the value is not present.
        """
        count = self._counts[value]
        if count > 1:
            self._counts[value] = count - 1
        else:
            del self._counts[value]
            index = bisect.bisect_left(self._sorted, value)
            self._sorted.pop(index)
            self._array = None

    def as_array(self) -> np.ndarray:
        """Sorted distinct values as an int64 numpy snapshot.

        Cached until the distinct-value set changes; callers must not
        mutate the returned array.  The vectorized engine slices this
        with ``searchsorted`` instead of calling :meth:`between` per
        ray.
        """
        if self._array is None:
            self._array = np.asarray(self._sorted, dtype=np.int64)
        return self._array

    def __contains__(self, value: int) -> bool:
        return value in self._counts

    def __len__(self) -> int:
        return len(self._sorted)

    def __iter__(self) -> Iterator[int]:
        return iter(self._sorted)

    def between(
        self, lo: int, hi: int, *, include_lo: bool = False, include_hi: bool = False
    ) -> list[int]:
        """Distinct coordinates within ``(lo, hi)``.

        Boundary inclusion is controlled by the keyword flags; the
        default is the open interval, which matches "escape coordinates
        strictly inside a clear ray span".
        """
        if lo > hi:
            lo, hi = hi, lo
        left = bisect.bisect_left(self._sorted, lo) if include_lo else bisect.bisect_right(
            self._sorted, lo
        )
        right = bisect.bisect_right(self._sorted, hi) if include_hi else bisect.bisect_left(
            self._sorted, hi
        )
        return self._sorted[left:right]

    def nearest_at_or_below(self, value: int) -> Optional[int]:
        """Largest stored coordinate ``<= value``, or ``None``."""
        index = bisect.bisect_right(self._sorted, value)
        return self._sorted[index - 1] if index else None

    def nearest_at_or_above(self, value: int) -> Optional[int]:
        """Smallest stored coordinate ``>= value``, or ``None``."""
        index = bisect.bisect_left(self._sorted, value)
        return self._sorted[index] if index < len(self._sorted) else None


@dataclass(eq=False)
class MeshPoint:
    """A node of :class:`LinkedPointMesh`.

    Carries the geometric point, the logical owner (a box, wire, or any
    hashable tag — the paper's "third set of links"), and the four
    topological neighbour links maintained by the mesh.
    """

    point: Point
    owner: Hashable = None
    prev_x: Optional["MeshPoint"] = field(default=None, repr=False)
    next_x: Optional["MeshPoint"] = field(default=None, repr=False)
    prev_y: Optional["MeshPoint"] = field(default=None, repr=False)
    next_y: Optional["MeshPoint"] = field(default=None, repr=False)

    @property
    def key_x(self) -> tuple[int, int]:
        """Sort key for the x ordering (x major, y minor)."""
        return (self.point.x, self.point.y)

    @property
    def key_y(self) -> tuple[int, int]:
        """Sort key for the y ordering (y major, x minor)."""
        return (self.point.y, self.point.x)


class LinkedPointMesh:
    """Points doubly linked in both x and y topological order.

    Insertions keep two doubly linked lists consistent: one sorted by
    ``(x, y)`` and one by ``(y, x)``.  Identical coordinates from
    different owners coexist as distinct nodes.  The mesh supports the
    queries the paper's ray tracer needs — walking to the next point in
    either axis order — and is exercised by the analysis layer; the hot
    routing path uses the vectorized :class:`~repro.geometry.raytrace.ObstacleSet`
    instead (same semantics, measured faster).
    """

    def __init__(self) -> None:
        self._nodes: list[MeshPoint] = []
        self._head_x: Optional[MeshPoint] = None
        self._head_y: Optional[MeshPoint] = None

    def __len__(self) -> int:
        return len(self._nodes)

    def insert(self, point: Point, owner: Hashable = None) -> MeshPoint:
        """Insert *point* tagged with *owner* and return its node."""
        node = MeshPoint(point, owner)
        self._link(node, "x")
        self._link(node, "y")
        self._nodes.append(node)
        return node

    def remove(self, node: MeshPoint) -> None:
        """Unlink *node* from both orders.

        Raises :class:`GeometryError` if the node is not in this mesh.
        """
        try:
            self._nodes.remove(node)
        except ValueError:
            raise GeometryError("node does not belong to this mesh") from None
        self._unlink(node, "x")
        self._unlink(node, "y")

    # ------------------------------------------------------------------
    # Ordered iteration / walking
    # ------------------------------------------------------------------
    def iter_x_order(self) -> Iterator[MeshPoint]:
        """Nodes in ``(x, y)`` order."""
        node = self._head_x
        while node is not None:
            yield node
            node = node.next_x

    def iter_y_order(self) -> Iterator[MeshPoint]:
        """Nodes in ``(y, x)`` order."""
        node = self._head_y
        while node is not None:
            yield node
            node = node.next_y

    def points(self) -> list[Point]:
        """All stored points in x order."""
        return [node.point for node in self.iter_x_order()]

    def owners_at(self, point: Point) -> list[Hashable]:
        """Owners of every node at exactly *point*."""
        return [node.owner for node in self._nodes if node.point == point]

    # ------------------------------------------------------------------
    # Linked-list plumbing
    # ------------------------------------------------------------------
    def _link(self, node: MeshPoint, axis: str) -> None:
        head_attr = f"_head_{axis}"
        prev_attr, next_attr = f"prev_{axis}", f"next_{axis}"
        key = (lambda n: n.key_x) if axis == "x" else (lambda n: n.key_y)
        head: Optional[MeshPoint] = getattr(self, head_attr)
        if head is None or key(node) <= key(head):
            setattr(node, next_attr, head)
            if head is not None:
                setattr(head, prev_attr, node)
            setattr(self, head_attr, node)
            return
        cursor = head
        while getattr(cursor, next_attr) is not None and key(getattr(cursor, next_attr)) < key(
            node
        ):
            cursor = getattr(cursor, next_attr)
        follower = getattr(cursor, next_attr)
        setattr(node, prev_attr, cursor)
        setattr(node, next_attr, follower)
        setattr(cursor, next_attr, node)
        if follower is not None:
            setattr(follower, prev_attr, node)

    def _unlink(self, node: MeshPoint, axis: str) -> None:
        head_attr = f"_head_{axis}"
        prev_attr, next_attr = f"prev_{axis}", f"next_{axis}"
        prev: Optional[MeshPoint] = getattr(node, prev_attr)
        nxt: Optional[MeshPoint] = getattr(node, next_attr)
        if prev is not None:
            setattr(prev, next_attr, nxt)
        else:
            setattr(self, head_attr, nxt)
        if nxt is not None:
            setattr(nxt, prev_attr, prev)
        setattr(node, prev_attr, None)
        setattr(node, next_attr, None)
