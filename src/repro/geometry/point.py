"""Points and axis directions in the rectilinear routing plane.

The paper's state space is the two-dimensional routing plane itself:
"The space is the routing plane and it is, of course, two-dimensional."
A :class:`Point` is therefore both a geometric primitive and a search
state.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterator


@dataclass(frozen=True, slots=True, order=True)
class Point:
    """An immutable point in the routing plane.

    Points order lexicographically (x first, then y) which gives a
    deterministic tie-break order wherever points are sorted.

    Parameters
    ----------
    x, y:
        Coordinates in database units.  Integers keep all geometry exact
        and are what the routers and tests use throughout.
    """

    x: int
    y: int

    def manhattan(self, other: "Point") -> int:
        """Rectilinear (L1) distance to *other*.

        This is the paper's admissible heuristic: "the best you can do
        using Manhattan geometry is a connection whose length is equal
        to the rectilinear distance between the two points."
        """
        return abs(self.x - other.x) + abs(self.y - other.y)

    def translated(self, dx: int, dy: int) -> "Point":
        """Return a new point displaced by ``(dx, dy)``."""
        return Point(self.x + dx, self.y + dy)

    def with_x(self, x: int) -> "Point":
        """Return a copy with the x coordinate replaced."""
        return Point(x, self.y)

    def with_y(self, y: int) -> "Point":
        """Return a copy with the y coordinate replaced."""
        return Point(self.x, y)

    def coord(self, axis: "Axis") -> int:
        """Coordinate along *axis* (``Axis.X`` -> x, ``Axis.Y`` -> y)."""
        return self.x if axis is Axis.X else self.y

    def with_coord(self, axis: "Axis", value: int) -> "Point":
        """Return a copy with the coordinate along *axis* replaced."""
        return self.with_x(value) if axis is Axis.X else self.with_y(value)

    def as_tuple(self) -> tuple[int, int]:
        """Return ``(x, y)``."""
        return (self.x, self.y)

    def __iter__(self) -> Iterator[int]:
        yield self.x
        yield self.y

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"({self.x}, {self.y})"


def manhattan(a: Point, b: Point) -> int:
    """Module-level convenience alias for :meth:`Point.manhattan`."""
    return a.manhattan(b)


class Axis(enum.Enum):
    """The two rectilinear axes."""

    X = "x"
    Y = "y"

    @property
    def other(self) -> "Axis":
        """The perpendicular axis."""
        return Axis.Y if self is Axis.X else Axis.X


class Direction(enum.Enum):
    """The four rectilinear ray directions.

    Successor generation traces rays in these directions; the enum
    carries the unit displacement, the axis of travel, and sign helpers
    so ray-tracing code reads declaratively.
    """

    EAST = (1, 0)
    WEST = (-1, 0)
    NORTH = (0, 1)
    SOUTH = (0, -1)

    @property
    def dx(self) -> int:
        """Unit displacement along x."""
        return self.value[0]

    @property
    def dy(self) -> int:
        """Unit displacement along y."""
        return self.value[1]

    @property
    def axis(self) -> Axis:
        """Axis of travel (EAST/WEST move along X)."""
        return Axis.X if self.value[0] != 0 else Axis.Y

    @property
    def is_horizontal(self) -> bool:
        """True for EAST and WEST."""
        return self.value[0] != 0

    @property
    def sign(self) -> int:
        """+1 when travelling toward increasing coordinates, else -1."""
        return self.value[0] + self.value[1]

    @property
    def opposite(self) -> "Direction":
        """The reverse direction."""
        return _OPPOSITE[self]

    @property
    def perpendiculars(self) -> tuple["Direction", "Direction"]:
        """The two directions at right angles to this one."""
        if self.is_horizontal:
            return (Direction.NORTH, Direction.SOUTH)
        return (Direction.EAST, Direction.WEST)

    def advance(self, point: Point, distance: int) -> Point:
        """The point *distance* units from *point* along this direction."""
        return point.translated(self.dx * distance, self.dy * distance)

    @staticmethod
    def toward(origin: Point, target: Point) -> list["Direction"]:
        """Directions that strictly reduce the Manhattan distance to *target*.

        Used by the goal-directed ("aggressive") successor generator:
        the paper "extends any path as far toward the goal as is
        feasible in x and y".
        """
        moves: list[Direction] = []
        if target.x > origin.x:
            moves.append(Direction.EAST)
        elif target.x < origin.x:
            moves.append(Direction.WEST)
        if target.y > origin.y:
            moves.append(Direction.NORTH)
        elif target.y < origin.y:
            moves.append(Direction.SOUTH)
        return moves


_OPPOSITE = {
    Direction.EAST: Direction.WEST,
    Direction.WEST: Direction.EAST,
    Direction.NORTH: Direction.SOUTH,
    Direction.SOUTH: Direction.NORTH,
}

#: All four directions in a deterministic order.
ALL_DIRECTIONS: tuple[Direction, Direction, Direction, Direction] = (
    Direction.EAST,
    Direction.WEST,
    Direction.NORTH,
    Direction.SOUTH,
)
