"""Orthogonal (rectilinear) polygons.

The paper's Extensions section proposes "orthogonal polygons for the
cell boundaries" as a generalization beyond rectangles, noting that the
successor generator must then "leave no stone unturned".  This module
provides the polygon primitive plus a slab decomposition into
rectangles, which is how the routers consume polygonal cells: the
interior is blocked via the decomposition while hugging uses the
polygon's own edge coordinates.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

from repro.errors import GeometryError
from repro.geometry.point import Point
from repro.geometry.rect import Rect
from repro.geometry.segment import Segment


@dataclass(frozen=True)
class OrthoPolygon:
    """A simple rectilinear polygon given by its boundary vertices.

    Vertices are listed in order (either winding); the closing edge from
    the last vertex back to the first is implicit.  Consecutive edges
    must alternate between horizontal and vertical, so every vertex is a
    true corner.

    Raises
    ------
    GeometryError
        For fewer than 4 vertices, non-axis-parallel edges, zero-length
        edges, repeated vertices, or edges that fail to alternate.
    """

    vertices: tuple[Point, ...]
    _edges: tuple[Segment, ...] = field(init=False, repr=False, compare=False)

    def __init__(self, vertices: Sequence[Point] | Iterable[Point]):
        verts = tuple(vertices)
        if len(verts) < 4:
            raise GeometryError(f"orthogonal polygon needs >= 4 vertices, got {len(verts)}")
        if len(set(verts)) != len(verts):
            raise GeometryError("orthogonal polygon has repeated vertices")
        edges = []
        n = len(verts)
        for i in range(n):
            a, b = verts[i], verts[(i + 1) % n]
            if a == b:
                raise GeometryError(f"zero-length edge at vertex {i}")
            edges.append(Segment(a, b))  # raises if diagonal
        for i in range(n):
            prev_horizontal = verts[i].y == verts[(i + 1) % n].y
            next_horizontal = verts[(i + 1) % n].y == verts[(i + 2) % n].y
            if prev_horizontal == next_horizontal:
                raise GeometryError(f"edges around vertex {(i + 1) % n} do not alternate")
        object.__setattr__(self, "vertices", verts)
        object.__setattr__(self, "_edges", tuple(edges))

    # ------------------------------------------------------------------
    # Basic properties
    # ------------------------------------------------------------------
    @property
    def edges(self) -> tuple[Segment, ...]:
        """Boundary edges in vertex order (closing edge included)."""
        return self._edges

    @property
    def bounding_box(self) -> Rect:
        """Smallest rect containing the polygon."""
        xs = [v.x for v in self.vertices]
        ys = [v.y for v in self.vertices]
        return Rect(min(xs), min(ys), max(xs), max(ys))

    @property
    def area(self) -> int:
        """Enclosed area via the shoelace formula (always positive)."""
        total = 0
        n = len(self.vertices)
        for i in range(n):
            a, b = self.vertices[i], self.vertices[(i + 1) % n]
            total += a.x * b.y - b.x * a.y
        return abs(total) // 2

    # ------------------------------------------------------------------
    # Containment
    # ------------------------------------------------------------------
    def on_boundary(self, p: Point) -> bool:
        """Whether *p* lies on any boundary edge."""
        return any(edge.contains_point(p) for edge in self._edges)

    def contains_point(self, p: Point, *, strict: bool = False) -> bool:
        """Point-in-polygon test.

        Boundary points are inside unless ``strict=True`` (open-interior
        test, used for blocking).  Implemented by crossing count against
        the vertical edges along a horizontal ray cast at a half-integer
        height, which avoids degenerate edge-collinear cases entirely.
        """
        if self.on_boundary(p):
            return not strict
        # Cast the ray at y + 0.5 so it can never be collinear with a
        # horizontal edge nor pass through a vertex (coordinates are
        # integers).  Count vertical-edge crossings to the east.
        ray_y = p.y + 0.5
        crossings = 0
        for edge in self._edges:
            if not edge.is_vertical or edge.is_degenerate:
                continue
            if edge.a.x <= p.x:
                continue
            if edge.span.lo < ray_y < edge.span.hi:
                crossings += 1
        inside_upper = crossings % 2 == 1
        # The point is interior iff both the ray above and the ray below
        # report inside; a point in a notch exactly at the local y of a
        # boundary could otherwise be misclassified.
        ray_y = p.y - 0.5
        crossings = 0
        for edge in self._edges:
            if not edge.is_vertical or edge.is_degenerate:
                continue
            if edge.a.x <= p.x:
                continue
            if edge.span.lo < ray_y < edge.span.hi:
                crossings += 1
        inside_lower = crossings % 2 == 1
        return inside_upper and inside_lower

    # ------------------------------------------------------------------
    # Decomposition
    # ------------------------------------------------------------------
    def to_rects(self) -> list[Rect]:
        """Decompose the interior into disjoint horizontal slabs.

        Returns maximal-width rectangles whose union is exactly the
        polygon (their summed area equals :attr:`area`).  Slab seams are
        shared boundaries, which is fine for blocking queries because
        blocking uses open interiors.
        """
        ys = sorted({v.y for v in self.vertices})
        rects: list[Rect] = []
        for y_lo, y_hi in zip(ys, ys[1:]):
            mid = (y_lo + y_hi) / 2
            # Vertical edges crossing the slab midline, in x order, bound
            # alternating inside/outside spans.
            crossing_xs = sorted(
                edge.a.x
                for edge in self._edges
                if edge.is_vertical and not edge.is_degenerate and edge.span.lo < mid < edge.span.hi
            )
            if len(crossing_xs) % 2 != 0:
                raise GeometryError("polygon is not simple: odd crossing count")
            for x_lo, x_hi in zip(crossing_xs[::2], crossing_xs[1::2]):
                rects.append(Rect(x_lo, y_lo, x_hi, y_hi))
        return _coalesce_slabs(rects)

    @staticmethod
    def from_rect(rect: Rect) -> "OrthoPolygon":
        """The 4-vertex polygon matching *rect* (must be non-degenerate)."""
        if rect.width == 0 or rect.height == 0:
            raise GeometryError(f"cannot build polygon from degenerate rect {rect}")
        return OrthoPolygon(rect.corners)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return "Poly[" + " ".join(str(v) for v in self.vertices) + "]"


def _coalesce_slabs(rects: list[Rect]) -> list[Rect]:
    """Merge vertically adjacent slabs with identical x spans.

    Slab decomposition splits at every vertex y; stacked slabs with the
    same width are merged back so rect counts stay small.
    """
    rects = sorted(rects, key=lambda r: (r.x0, r.x1, r.y0))
    merged: list[Rect] = []
    for rect in rects:
        if (
            merged
            and merged[-1].x0 == rect.x0
            and merged[-1].x1 == rect.x1
            and merged[-1].y1 == rect.y0
        ):
            merged[-1] = Rect(rect.x0, merged[-1].y0, rect.x1, rect.y1)
        else:
            merged.append(rect)
    return merged
