"""The global router: all nets, routed independently.

"Independently routing each net considerably reduces the complexity of
the search since the only obstacles are the cells. ... Independent net
routing also eliminates the problem of net ordering."

In its base mode :class:`GlobalRouter` routes every net of a layout
against the cells alone — there the cells are the only obstacles, and
nets can be routed in any order with identical results (experiment E7
checks that order-invariance).  The congestion modes qualify both
statements: the two-pass scheme from the Conclusions and the
negotiated rip-up-and-reroute loop (:mod:`repro.core.negotiate`) add
usage-dependent penalty regions on top of the cells, so route costs
there depend on where other nets went in *earlier* passes.  Within any
single pass the cost model is frozen, so E7 order-invariance — and
hence the parallel fan-out behind ``RouterConfig.workers`` — still
holds pass by pass; it is only across passes that ordering (which
iteration a net is ripped up in) matters.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Iterable, Optional

from repro.errors import LayoutError, RoutingError, UnroutableError
from repro.core.congestion import CongestionMap, find_passages, measure_congestion
from repro.core.costs import (
    BendPenaltyCost,
    CongestionPenaltyCost,
    CostModel,
    InvertedCornerCost,
    WirelengthCost,
)
from repro.core.escape import EscapeMode
from repro.core.route import GlobalRoute, RouteTree
from repro.core.steiner import route_net
from repro.layout.layout import Layout
from repro.layout.net import Net
from repro.search.engine import Order
from repro.search.stats import SearchStats


@dataclass(frozen=True)
class RouterConfig:
    """Tuning knobs of the global router.

    Attributes
    ----------
    mode:
        Escape successor policy (``FULL`` is admissible; ``AGGRESSIVE``
        is the paper's lean generator — see DESIGN.md §3).
    order:
        OPEN-list discipline; A* is the paper's algorithm.
    inverted_corner:
        Charge the Figure 2 epsilon so corner-hugging routes win ties.
    corner_epsilon:
        Size of that epsilon (must stay below coordinate resolution).
    bend_penalty:
        Optional per-corner surcharge (via minimization); 0 disables.
    exact_steiner_order:
        Use true-cost Prim ordering for multi-terminal nets.
    refine:
        Apply rip-up-and-reconnect refinement to each routed tree
        (never longer; see :mod:`repro.core.refine`).
    node_limit:
        Per-connection expansion budget (``None`` = unlimited).
    trace:
        Record expansion traces on every connection.
    ray_cache:
        Memoize ray queries on the router's obstacle set per mutation
        epoch (see :class:`~repro.geometry.raytrace.ObstacleSet`).
        On by default; routed results are byte-identical either way,
        so the flag exists for A/B measurement
        (``benchmarks/bench_x5_hotpath.py``) and debugging.
    prune_clean_nets:
        Negotiation-loop pruning (standard PathFinder practice): each
        iteration reroutes only nets whose current path overlaps a
        presently-congested passage.  Opting out
        (``prune_clean_nets=False``) rips up and reroutes *every*
        routed net per iteration — the original PathFinder formulation,
        far slower and occasionally shorter.
    workers:
        Net-level fan-out for the independent passes (see
        :mod:`repro.core.parallel`).  1 (the default) routes serially;
        larger values partition each pass's netlist over a worker
        pool, producing identical trees in identical order.
    executor:
        Pool flavour for ``workers > 1``: ``"process"`` (scales with
        cores) or ``"thread"`` (GIL-bound fallback for unpicklable
        layouts/cost models).
    engine:
        Search-core implementation: ``"scalar"`` (the pure-Python
        conformance oracle), ``"vectorized"`` (numpy-batched frontier
        expansion), or ``"native"`` (the batched loop with
        numba-jitted kernels, falling back to ``"vectorized"``
        behaviour when numba is not installed).  All engines produce
        byte-identical routes — the parity suite and the conformance
        matrix pin it — so this knob only trades wall clock.
    """

    mode: EscapeMode = EscapeMode.FULL
    order: Order = Order.A_STAR
    inverted_corner: bool = False
    corner_epsilon: float = 1.0 / 16.0
    bend_penalty: float = 0.0
    exact_steiner_order: bool = False
    refine: bool = False
    node_limit: Optional[int] = None
    trace: bool = False
    ray_cache: bool = True
    prune_clean_nets: bool = True
    workers: int = 1
    executor: str = "process"
    engine: str = "scalar"

    def __post_init__(self) -> None:
        """Reject malformed configs at construction time.

        Programmatic callers get the same errors the CLI used to
        hand-check, and a bad config can never reach a routing pass
        (or a worker pool) half-built.
        """
        from repro.core.parallel import EXECUTORS

        if self.workers < 1:
            raise RoutingError(f"workers must be >= 1, got {self.workers}")
        if self.executor not in EXECUTORS:
            raise RoutingError(
                f"executor must be one of {EXECUTORS}, not {self.executor!r}"
            )
        if self.bend_penalty < 0:
            raise RoutingError(f"bend_penalty must be >= 0, got {self.bend_penalty}")
        if self.corner_epsilon < 0:
            raise RoutingError(
                f"corner_epsilon must be >= 0, got {self.corner_epsilon}"
            )
        if self.node_limit is not None and self.node_limit < 1:
            raise RoutingError(f"node_limit must be >= 1, got {self.node_limit}")
        from repro.core.pathfinder import ENGINES

        if self.engine not in ENGINES:
            raise RoutingError(
                f"engine must be one of {ENGINES}, not {self.engine!r}"
            )


@dataclass
class TwoPassResult:
    """Outcome of congestion-driven two-pass routing.

    ``search_stats`` totals the whole run's search effort (every
    pass), whereas ``final.stats`` stops accumulating at the best pass
    — perf telemetry reads the run-wide numbers.
    """

    first: GlobalRoute
    final: GlobalRoute
    congestion_before: CongestionMap
    congestion_after: CongestionMap
    rerouted_nets: list[str] = field(default_factory=list)
    search_stats: "SearchStats" = field(default_factory=lambda: SearchStats())


class GlobalRouter:
    """Routes the nets of one layout.

    Parameters
    ----------
    layout:
        The placed design.  Cells are the only obstacles.
    config:
        Router knobs; defaults reproduce the paper's base algorithm.
    cost_model:
        Overrides the config-derived cost model when given.
    """

    def __init__(
        self,
        layout: Layout,
        config: RouterConfig = RouterConfig(),
        *,
        cost_model: Optional[CostModel] = None,
    ):
        self.layout = layout
        self.config = config
        self.obstacles = layout.obstacles()
        self.obstacles.ray_cache_enabled = config.ray_cache
        self._cost_model = cost_model if cost_model is not None else self._build_cost_model()

    def _build_cost_model(self) -> CostModel:
        """Stack cost decorators per the config."""
        model: CostModel = WirelengthCost()
        if self.config.bend_penalty > 0:
            model = BendPenaltyCost(self.config.bend_penalty, base=model)
        if self.config.inverted_corner:
            model = InvertedCornerCost(
                self.obstacles, epsilon=self.config.corner_epsilon, base=model
            )
        return model

    @property
    def cost_model(self) -> CostModel:
        """The active cost model."""
        return self._cost_model

    # ------------------------------------------------------------------
    # Routing entry points
    # ------------------------------------------------------------------
    def route_one(self, net: Net, *, cost_model: Optional[CostModel] = None) -> RouteTree:
        """Route a single net against the cells only."""
        model = cost_model if cost_model is not None else self._cost_model
        tree = route_net(
            net,
            self.obstacles,
            cost_model=model,
            mode=self.config.mode,
            order=self.config.order,
            exact_order=self.config.exact_steiner_order,
            node_limit=self.config.node_limit,
            trace=self.config.trace,
            engine=self.config.engine,
        )
        if self.config.refine:
            from repro.core.refine import refine_tree

            tree = refine_tree(
                net,
                tree,
                self.obstacles,
                cost_model=model,
                mode=self.config.mode,
                order=self.config.order,
                engine=self.config.engine,
            )
        return tree

    def open_pool(self) -> Optional["NetRoutingPool"]:  # noqa: F821
        """A reusable worker pool per the config, or ``None`` if serial.

        Multi-pass loops (two-pass, negotiation) call this once and
        pass the result through :meth:`route_all`/:meth:`route_each`
        so every pass reuses the same workers instead of paying spawn
        and layout-pickle costs per pass.  The caller owns the pool
        and must ``close()`` it (or use it as a context manager).
        """
        if self.config.workers > 1 and len(self.layout.nets) > 1 and not self.config.trace:
            from repro.core.parallel import NetRoutingPool

            return NetRoutingPool(self)
        return None

    def route_each(
        self,
        net_names: Iterable[str],
        *,
        cost_model: Optional[CostModel] = None,
        pool: Optional["NetRoutingPool"] = None,  # noqa: F821
        fail_fast: bool = False,
    ) -> list[tuple[str, Optional[RouteTree], Optional[UnroutableError]]]:
        """Route the named layout nets under one frozen cost model.

        The pass primitive shared by :meth:`route_all` and the
        congestion loops.  Returns ``(name, tree_or_None,
        error_or_None)`` outcomes in input order, the error slot
        carrying the original :class:`UnroutableError` (``partial``
        diagnostic intact, even across process boundaries);
        unroutability comes back as data so the caller picks
        raise-vs-skip semantics —
        except with ``fail_fast=True``, where the *serial* path
        re-raises the first :class:`UnroutableError` immediately
        (pool-backed passes always run to completion first, so there
        fail-fast only skips the merge).

        With ``config.workers > 1`` the nets fan out over a worker
        pool (:mod:`repro.core.parallel`); because the cost model is
        frozen for the whole pass this produces trees identical to the
        serial run.  Callers that run many passes should obtain one
        pool via :meth:`open_pool` and pass it through to amortize the
        pool setup.  Trace-recording runs stay serial so expansion
        traces never cross a process boundary.
        """
        names = list(net_names)
        if names and not self.config.trace:
            if pool is not None:
                return pool.route_each(names, cost_model=cost_model)
            if self.config.workers > 1 and len(names) > 1:
                from repro.core.parallel import route_each_parallel

                return route_each_parallel(
                    self,
                    names,
                    cost_model=cost_model,
                    workers=self.config.workers,
                    executor=self.config.executor,
                )
        outcomes: list[tuple[str, Optional[RouteTree], Optional[UnroutableError]]] = []
        for name in names:
            try:
                outcomes.append((name, self.route_one(self.layout.net(name), cost_model=cost_model), None))
            except UnroutableError as exc:
                if fail_fast:
                    raise
                outcomes.append((name, None, exc))
        return outcomes

    def merge_outcomes(
        self,
        route: GlobalRoute,
        outcomes: Iterable[tuple[str, Optional[RouteTree], Optional[UnroutableError]]],
        *,
        on_unroutable: str,
        keep_previous: bool = False,
        rerouted: Optional[set] = None,
    ) -> int:
        """Fold :meth:`route_each` outcomes into *route*; returns nets merged.

        The one place raise-vs-skip semantics live.  In raise mode the
        first failed outcome's original error is re-raised (its
        ``partial`` diagnostic intact).  In skip mode a failed net is
        recorded in ``failed_nets`` — unless ``keep_previous`` is set,
        the reroute-loop behaviour where the net's earlier tree is
        still in *route* and should simply survive.  *rerouted*, when
        given, collects the names of successfully merged nets.
        """
        merged = 0
        for name, tree, error in outcomes:
            if tree is None:
                if on_unroutable == "raise":
                    if error is not None:
                        raise error
                    raise UnroutableError(f"net {name!r} is unroutable")
                if not keep_previous:
                    route.failed_nets.append(name)
                continue
            route.trees[name] = tree
            route.stats = route.stats.merged_with(tree.stats)
            if rerouted is not None:
                rerouted.add(name)
            merged += 1
        return merged

    def reroute_pass(
        self,
        current: GlobalRoute,
        affected: Iterable[str],
        cost_model: CostModel,
        *,
        passages: list,
        pool: Optional["NetRoutingPool"] = None,  # noqa: F821
        on_unroutable: str = "raise",
        rerouted: Optional[set] = None,
    ) -> tuple[GlobalRoute, CongestionMap, int]:
        """One penalized repass: the shared skeleton of the congestion loops.

        Copies *current* (trees, stats, failed nets), reroutes the
        *affected* nets under the frozen *cost_model* (a net whose
        reroute fails keeps its previous tree), and re-measures the
        *passages*.  Returns ``(candidate, congestion_map,
        nets_moved)``.
        """
        candidate = GlobalRoute(
            trees=dict(current.trees),
            stats=current.stats,
            failed_nets=list(current.failed_nets),
        )
        outcomes = self.route_each(
            affected,
            cost_model=cost_model,
            pool=pool,
            fail_fast=on_unroutable == "raise",
        )
        moved = self.merge_outcomes(
            candidate,
            outcomes,
            on_unroutable=on_unroutable,
            keep_previous=True,
            rerouted=rerouted,
        )
        return candidate, measure_congestion(passages, candidate), moved

    def route_all(
        self,
        nets: Optional[Iterable[Net]] = None,
        *,
        on_unroutable: str = "raise",
        pool: Optional["NetRoutingPool"] = None,  # noqa: F821
    ) -> GlobalRoute:
        """Route every net (or the given subset) independently.

        Parameters
        ----------
        on_unroutable:
            ``"raise"`` (default) propagates the first failure;
            ``"skip"`` records the net in ``failed_nets`` and carries
            on — useful for diagnostics on deliberately hard inputs.
        pool:
            An existing :class:`~repro.core.parallel.NetRoutingPool`
            to reuse (multi-pass loops); otherwise ``config.workers``
            decides whether a one-shot pool is spun up.

        With ``config.workers > 1`` the nets are partitioned over a
        worker pool; the resulting trees (and their order) are
        identical to the serial run.  In raise mode the serial path
        fails fast on the first unroutable net, while the parallel
        path finishes the in-flight pass before raising the same
        error.  Ad-hoc :class:`Net` objects not registered in the
        layout are routed too, but their presence makes the *whole*
        pass serial (workers address nets by name, so a mixed list
        cannot be partitioned without reordering outcomes).
        """
        if on_unroutable not in ("raise", "skip"):
            raise RoutingError(f"on_unroutable must be 'raise' or 'skip', not {on_unroutable!r}")
        net_list = list(nets) if nets is not None else list(self.layout.nets)
        route = GlobalRoute()
        started = time.perf_counter()
        if all(self._owns(net) for net in net_list):
            outcomes = self.route_each(
                [net.name for net in net_list],
                pool=pool,
                fail_fast=on_unroutable == "raise",
            )
        else:
            outcomes = []
            for net in net_list:
                try:
                    outcomes.append((net.name, self.route_one(net), None))
                except UnroutableError as exc:
                    if on_unroutable == "raise":
                        raise
                    outcomes.append((net.name, None, exc))
        self.merge_outcomes(route, outcomes, on_unroutable=on_unroutable)
        route.stats.elapsed_seconds = time.perf_counter() - started
        return route

    def _owns(self, net: Net) -> bool:
        """Whether *net* is the layout's own net object (routable by name)."""
        try:
            return self.layout.net(net.name) is net
        except LayoutError:
            return False

    # ------------------------------------------------------------------
    # Two-pass congestion routing (Conclusions)
    # ------------------------------------------------------------------
    def _two_pass(
        self,
        *,
        penalty_weight: float = 2.0,
        max_gap: Optional[int] = None,
        on_unroutable: str = "raise",
        passes: int = 2,
    ) -> TwoPassResult:
        """First pass, congestion measurement, penalized repasses.

        Only nets through overflowed passages are rerouted; everything
        else keeps its earlier tree (the paper: "a second route of the
        *affected* nets").  ``passes=2`` is the paper's scheme; larger
        values iterate with accumulated penalties (each round adds the
        currently-overflowed regions on top of the previous penalties)
        and the best route seen — by total overflow, then wirelength —
        is returned as ``final``.

        In skip mode a net whose *reroute* fails under the penalties
        keeps its earlier tree (first-pass failures stay recorded in
        ``failed_nets``); with ``workers > 1`` all passes share one
        worker pool.
        """
        if passes < 2:
            raise RoutingError(f"two-pass routing needs passes >= 2, got {passes}")
        passages = find_passages(self.layout, max_gap=max_gap)
        pool = self.open_pool()
        try:
            first = self.route_all(on_unroutable=on_unroutable, pool=pool)
            before = measure_congestion(passages, first)

            best = first
            best_map = before
            current = first
            current_map = before
            rerouted: set[str] = set()
            regions: list[tuple] = []
            for _round in range(passes - 1):
                affected = sorted(current_map.affected_nets())
                if not affected:
                    break
                regions = regions + current_map.penalty_regions(weight=penalty_weight)
                penalized = CongestionPenaltyCost(regions, base=self._cost_model)
                candidate, candidate_map, _moved = self.reroute_pass(
                    current,
                    affected,
                    penalized,
                    passages=passages,
                    pool=pool,
                    on_unroutable=on_unroutable,
                    rerouted=rerouted,
                )
                current, current_map = candidate, candidate_map
                if (candidate_map.total_overflow, candidate.total_length) < (
                    best_map.total_overflow,
                    best.total_length,
                ):
                    best, best_map = candidate, candidate_map
        finally:
            if pool is not None:
                pool.close()
        return TwoPassResult(
            first,
            best,
            before,
            best_map,
            rerouted_nets=sorted(rerouted),
            search_stats=current.stats,
        )

    # The long-deprecated route_two_pass / route_negotiated delegates
    # were removed; build a repro.api.RouteRequest with
    # strategy="two-pass" / "negotiated" instead (or use
    # repro.core.negotiate.NegotiatedRouter directly).
