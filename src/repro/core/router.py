"""The global router: all nets, routed independently.

"Independently routing each net considerably reduces the complexity of
the search since the only obstacles are the cells. ... Independent net
routing also eliminates the problem of net ordering."

:class:`GlobalRouter` routes every net of a layout against the cells
alone, in any order, with identical results (experiment E7 checks the
order-invariance).  The optional two-pass mode implements the
congestion feedback sketched in the Conclusions.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Iterable, Optional

from repro.errors import RoutingError, UnroutableError
from repro.core.congestion import CongestionMap, find_passages, measure_congestion
from repro.core.costs import (
    BendPenaltyCost,
    CongestionPenaltyCost,
    CostModel,
    InvertedCornerCost,
    WirelengthCost,
)
from repro.core.escape import EscapeMode
from repro.core.route import GlobalRoute, RouteTree
from repro.core.steiner import route_net
from repro.layout.layout import Layout
from repro.layout.net import Net
from repro.search.engine import Order


@dataclass(frozen=True)
class RouterConfig:
    """Tuning knobs of the global router.

    Attributes
    ----------
    mode:
        Escape successor policy (``FULL`` is admissible; ``AGGRESSIVE``
        is the paper's lean generator — see DESIGN.md §3).
    order:
        OPEN-list discipline; A* is the paper's algorithm.
    inverted_corner:
        Charge the Figure 2 epsilon so corner-hugging routes win ties.
    corner_epsilon:
        Size of that epsilon (must stay below coordinate resolution).
    bend_penalty:
        Optional per-corner surcharge (via minimization); 0 disables.
    exact_steiner_order:
        Use true-cost Prim ordering for multi-terminal nets.
    refine:
        Apply rip-up-and-reconnect refinement to each routed tree
        (never longer; see :mod:`repro.core.refine`).
    node_limit:
        Per-connection expansion budget (``None`` = unlimited).
    trace:
        Record expansion traces on every connection.
    """

    mode: EscapeMode = EscapeMode.FULL
    order: Order = Order.A_STAR
    inverted_corner: bool = False
    corner_epsilon: float = 1.0 / 16.0
    bend_penalty: float = 0.0
    exact_steiner_order: bool = False
    refine: bool = False
    node_limit: Optional[int] = None
    trace: bool = False


@dataclass
class TwoPassResult:
    """Outcome of congestion-driven two-pass routing."""

    first: GlobalRoute
    final: GlobalRoute
    congestion_before: CongestionMap
    congestion_after: CongestionMap
    rerouted_nets: list[str] = field(default_factory=list)


class GlobalRouter:
    """Routes the nets of one layout.

    Parameters
    ----------
    layout:
        The placed design.  Cells are the only obstacles.
    config:
        Router knobs; defaults reproduce the paper's base algorithm.
    cost_model:
        Overrides the config-derived cost model when given.
    """

    def __init__(
        self,
        layout: Layout,
        config: RouterConfig = RouterConfig(),
        *,
        cost_model: Optional[CostModel] = None,
    ):
        self.layout = layout
        self.config = config
        self.obstacles = layout.obstacles()
        self._cost_model = cost_model if cost_model is not None else self._build_cost_model()

    def _build_cost_model(self) -> CostModel:
        """Stack cost decorators per the config."""
        model: CostModel = WirelengthCost()
        if self.config.bend_penalty > 0:
            model = BendPenaltyCost(self.config.bend_penalty, base=model)
        if self.config.inverted_corner:
            model = InvertedCornerCost(
                self.obstacles, epsilon=self.config.corner_epsilon, base=model
            )
        return model

    @property
    def cost_model(self) -> CostModel:
        """The active cost model."""
        return self._cost_model

    # ------------------------------------------------------------------
    # Routing entry points
    # ------------------------------------------------------------------
    def route_one(self, net: Net, *, cost_model: Optional[CostModel] = None) -> RouteTree:
        """Route a single net against the cells only."""
        model = cost_model if cost_model is not None else self._cost_model
        tree = route_net(
            net,
            self.obstacles,
            cost_model=model,
            mode=self.config.mode,
            order=self.config.order,
            exact_order=self.config.exact_steiner_order,
            node_limit=self.config.node_limit,
            trace=self.config.trace,
        )
        if self.config.refine:
            from repro.core.refine import refine_tree

            tree = refine_tree(
                net,
                tree,
                self.obstacles,
                cost_model=model,
                mode=self.config.mode,
                order=self.config.order,
            )
        return tree

    def route_all(
        self,
        nets: Optional[Iterable[Net]] = None,
        *,
        on_unroutable: str = "raise",
    ) -> GlobalRoute:
        """Route every net (or the given subset) independently.

        Parameters
        ----------
        on_unroutable:
            ``"raise"`` (default) propagates the first failure;
            ``"skip"`` records the net in ``failed_nets`` and carries
            on — useful for diagnostics on deliberately hard inputs.
        """
        if on_unroutable not in ("raise", "skip"):
            raise RoutingError(f"on_unroutable must be 'raise' or 'skip', not {on_unroutable!r}")
        route = GlobalRoute()
        started = time.perf_counter()
        for net in nets if nets is not None else self.layout.nets:
            try:
                tree = self.route_one(net)
            except UnroutableError:
                if on_unroutable == "raise":
                    raise
                route.failed_nets.append(net.name)
                continue
            route.trees[net.name] = tree
            route.stats = route.stats.merged_with(tree.stats)
        route.stats.elapsed_seconds = time.perf_counter() - started
        return route

    # ------------------------------------------------------------------
    # Two-pass congestion routing (Conclusions)
    # ------------------------------------------------------------------
    def route_two_pass(
        self,
        *,
        penalty_weight: float = 2.0,
        max_gap: Optional[int] = None,
        on_unroutable: str = "raise",
        passes: int = 2,
    ) -> TwoPassResult:
        """First pass, congestion measurement, penalized repasses.

        Only nets through overflowed passages are rerouted; everything
        else keeps its earlier tree (the paper: "a second route of the
        *affected* nets").  ``passes=2`` is the paper's scheme; larger
        values iterate with accumulated penalties (each round adds the
        currently-overflowed regions on top of the previous penalties)
        and the best route seen — by total overflow, then wirelength —
        is returned as ``final``.
        """
        if passes < 2:
            raise RoutingError(f"two-pass routing needs passes >= 2, got {passes}")
        passages = find_passages(self.layout, max_gap=max_gap)
        first = self.route_all(on_unroutable=on_unroutable)
        before = measure_congestion(passages, first)

        best = first
        best_map = before
        current = first
        current_map = before
        rerouted: set[str] = set()
        regions: list[tuple] = []
        for _round in range(passes - 1):
            affected = sorted(current_map.affected_nets())
            if not affected:
                break
            regions = regions + current_map.penalty_regions(weight=penalty_weight)
            penalized = CongestionPenaltyCost(regions, base=self._cost_model)
            candidate = GlobalRoute(trees=dict(current.trees), stats=current.stats)
            for net_name in affected:
                net = self.layout.net(net_name)
                try:
                    tree = self.route_one(net, cost_model=penalized)
                except UnroutableError:
                    if on_unroutable == "raise":
                        raise
                    candidate.failed_nets.append(net_name)
                    continue
                candidate.trees[net_name] = tree
                candidate.stats = candidate.stats.merged_with(tree.stats)
                rerouted.add(net_name)
            candidate_map = measure_congestion(passages, candidate)
            current, current_map = candidate, candidate_map
            if (candidate_map.total_overflow, candidate.total_length) < (
                best_map.total_overflow,
                best.total_length,
            ):
                best, best_map = candidate, candidate_map
        return TwoPassResult(first, best, before, best_map, rerouted_nets=sorted(rerouted))
