"""Placement feedback: congestion-driven placement adjustment.

The Introduction raises (and defers) this: "the routing system [could]
provide feedback so that the placement can be automatically adjusted.
With the latter approach one must be concerned about convergence.
Placement adjustment can alter the paths taken during global routing
thereby creating inter-cell spacing problems where they did not
previously exist. ... This is the topic of further research by the
author."

This module implements that loop as the paper frames it: route all
nets, find the worst over-capacity passage, widen it by sliding one of
its flanking cells outward (pins ride along), re-validate the
placement restrictions, and reroute — stopping on success, on a stall
(the oscillation the paper worries about), or when no legal move
remains.  Experiment X1 measures the convergence behaviour.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.errors import LayoutError, ValidationError
from repro.core.congestion import BOUNDARY, CongestionMap, find_passages, measure_congestion
from repro.core.route import GlobalRoute
from repro.core.router import GlobalRouter, RouterConfig
from repro.geometry.point import Axis
from repro.layout.layout import Layout
from repro.layout.net import Net
from repro.layout.pin import Pin
from repro.layout.terminal import Terminal
from repro.layout.validate import validate_layout


def move_cell(layout: Layout, cell_name: str, dx: int, dy: int) -> Layout:
    """A new layout with one cell (and every pin on it) displaced.

    Raises :class:`LayoutError` when the moved cell would leave the
    routing surface; separation against other cells is the caller's
    check (via :func:`validate_layout`).
    """
    moved = Layout(layout.outline)
    for cell in layout.cells:
        moved.add_cell(cell.translated(dx, dy) if cell.name == cell_name else cell)
    for net in layout.nets:
        terminals = []
        for terminal in net.terminals:
            pins = [
                Pin(
                    pin.name,
                    pin.location.translated(dx, dy) if pin.cell == cell_name else pin.location,
                    pin.cell,
                )
                for pin in terminal.pins
            ]
            terminals.append(Terminal(terminal.name, pins))
        moved.add_net(Net(net.name, terminals))
    return moved


@dataclass
class FeedbackResult:
    """Outcome of the placement-feedback loop.

    Attributes
    ----------
    layout:
        The final (possibly adjusted) layout.
    route:
        The final global route on that layout.
    overflow_history:
        Total passage overflow after each routing pass (index 0 is the
        original placement).
    moves:
        The cell displacements applied, in order.
    converged:
        True when the loop ended with zero overflow.
    stalled:
        True when it stopped because overflow stopped improving — the
        non-convergence the paper warns about.
    """

    layout: Layout
    route: GlobalRoute
    congestion: CongestionMap
    overflow_history: list[int] = field(default_factory=list)
    moves: list[tuple[str, int, int]] = field(default_factory=list)
    converged: bool = False
    stalled: bool = False


def adjust_placement(
    layout: Layout,
    *,
    config: RouterConfig = RouterConfig(),
    step: int = 2,
    max_rounds: int = 8,
    min_separation: int = 1,
    stall_rounds: int = 3,
) -> FeedbackResult:
    """Iteratively widen over-capacity passages by moving cells.

    Parameters
    ----------
    step:
        Displacement applied per adjustment (database units).
    max_rounds:
        Routing passes before giving up.
    stall_rounds:
        Stop when the best overflow has not improved for this many
        consecutive rounds (oscillation guard).
    """
    current = layout
    history: list[int] = []
    moves: list[tuple[str, int, int]] = []
    best_overflow: Optional[int] = None
    rounds_since_improvement = 0

    route = GlobalRouter(current, config).route_all()
    congestion = measure_congestion(find_passages(current), route)
    history.append(congestion.total_overflow)

    for _round in range(max_rounds):
        if congestion.total_overflow == 0:
            return FeedbackResult(
                current, route, congestion, history, moves, converged=True
            )
        if best_overflow is None or congestion.total_overflow < best_overflow:
            best_overflow = congestion.total_overflow
            rounds_since_improvement = 0
        else:
            rounds_since_improvement += 1
            if rounds_since_improvement >= stall_rounds:
                return FeedbackResult(
                    current, route, congestion, history, moves, stalled=True
                )

        adjusted = _widen_worst_passage(current, congestion, step, min_separation, moves)
        if adjusted is None:
            break  # no legal move remains
        current = adjusted
        route = GlobalRouter(current, config).route_all()
        congestion = measure_congestion(find_passages(current), route)
        history.append(congestion.total_overflow)

    return FeedbackResult(
        current,
        route,
        congestion,
        history,
        moves,
        converged=congestion.total_overflow == 0,
    )


def _widen_worst_passage(
    layout: Layout,
    congestion: CongestionMap,
    step: int,
    min_separation: int,
    moves: list[tuple[str, int, int]],
) -> Optional[Layout]:
    """Try to widen the most overloaded passage; None when impossible."""
    overloaded = sorted(
        congestion.overflowed(), key=lambda e: (-e.utilization, e.passage.region)
    )
    for entry in overloaded:
        passage = entry.passage
        first, second = passage.between
        # Flow along Y means the gap is horizontal: widen along x.
        if passage.flow is Axis.Y:
            candidates = [(second, step, 0), (first, -step, 0)]
        else:
            candidates = [(second, 0, step), (first, 0, -step)]
        for cell_name, dx, dy in candidates:
            if cell_name == BOUNDARY:
                continue
            try:
                adjusted = move_cell(layout, cell_name, dx, dy)
                validate_layout(adjusted, min_separation=min_separation)
            except (LayoutError, ValidationError):
                continue
            moves.append((cell_name, dx, dy))
            return adjusted
    return None
