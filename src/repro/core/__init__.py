"""The paper's primary contribution: gridless line-search A* global routing.

Public surface:

* :func:`~repro.core.pathfinder.find_path` — one two-point (or
  set-to-set) connection via line-search A*.
* :func:`~repro.core.steiner.route_net` — a whole multi-terminal /
  multi-pin net as an approximate Steiner tree.
* :class:`~repro.core.router.GlobalRouter` — all nets of a layout,
  independently routed (optionally fanned out over worker processes),
  with the optional congestion-driven second pass from the paper's
  Conclusions.
* :class:`~repro.core.negotiate.NegotiatedRouter` — the PathFinder-
  style generalization of that sketch: iterated rip-up-and-reroute
  under present-usage × accumulated-history congestion costs.
* :class:`~repro.core.timing.TimingDrivenRouter` — the negotiated
  loop with a tree-walk delay model on top: per-net criticality blends
  a delay term into the congestion cost and orders each wave
  most-critical-first (:mod:`repro.core.timing`).
* Cost models (:mod:`repro.core.costs`) — the "generalized cost
  function concept": wirelength, inverted-corner epsilon, bend/via
  penalties, congestion penalties (fixed, negotiated, timing-blended).
"""

from repro.core.escape import EscapeMode, escape_moves
from repro.core.costs import (
    BendPenaltyCost,
    CongestionPenaltyCost,
    CostModel,
    InvertedCornerCost,
    NegotiatedCongestionCost,
    TimingDrivenCost,
    WirelengthCost,
)
from repro.core.route import GlobalRoute, RoutePath, RouteTree, TargetSet
from repro.core.pathfinder import PathRequest, find_path
from repro.core.steiner import route_net
from repro.core.congestion import (
    CongestionHistory,
    CongestionMap,
    Passage,
    find_passages,
    measure_congestion,
)
from repro.core.negotiate import (
    IterationStats,
    NegotiatedRouter,
    NegotiationConfig,
    NegotiationResult,
)
from repro.core.router import GlobalRouter, RouterConfig, TwoPassResult
from repro.core.timing import (
    NetTiming,
    TimingAnalysis,
    TimingConfig,
    TimingDrivenRouter,
    TimingResult,
    analyze_route_timing,
    net_delay,
)
from repro.core.feedback import FeedbackResult, adjust_placement, move_cell
from repro.core.refine import refine_tree
from repro.core.route_io import (
    route_from_dict,
    route_from_json,
    route_to_dict,
    route_to_json,
)

__all__ = [
    "BendPenaltyCost",
    "CongestionHistory",
    "CongestionMap",
    "CongestionPenaltyCost",
    "CostModel",
    "EscapeMode",
    "FeedbackResult",
    "GlobalRoute",
    "GlobalRouter",
    "IterationStats",
    "NegotiatedCongestionCost",
    "NegotiatedRouter",
    "NegotiationConfig",
    "NegotiationResult",
    "NetTiming",
    "adjust_placement",
    "move_cell",
    "InvertedCornerCost",
    "Passage",
    "PathRequest",
    "RoutePath",
    "RouteTree",
    "RouterConfig",
    "TargetSet",
    "TimingAnalysis",
    "TimingConfig",
    "TimingDrivenCost",
    "TimingDrivenRouter",
    "TimingResult",
    "TwoPassResult",
    "WirelengthCost",
    "analyze_route_timing",
    "escape_moves",
    "find_path",
    "find_passages",
    "measure_congestion",
    "net_delay",
    "route_from_dict",
    "route_from_json",
    "refine_tree",
    "route_net",
    "route_to_dict",
    "route_to_json",
]
