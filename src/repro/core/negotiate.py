"""Negotiated-congestion rip-up-and-reroute — the iterated generalization.

The paper's Conclusions sketch exactly one feedback round: "A first-pass
route of all nets would reveal congested areas. ... A second route of
the affected nets could penalize those paths which chose the congested
area."  The ``two-pass`` strategy reproduces that sketch; this
module grows it into the scheme the field converged on a few years
later (McMurchie & Ebeling's PathFinder, used by both cgra_pnr
reference routers): iterate rip-up-and-reroute under a cost that
combines *present* passage utilization with a monotonically
*accumulating history* of overflow, until every passage fits or an
iteration budget runs out.

Why iterate, and why history?  One penalized repass can only push the
affected nets somewhere else — and with fixed penalties they often
push each other back, oscillating between two over-capacity
configurations.  The history term breaks the tie: each iteration a
passage spends over capacity makes it permanently more expensive, so
the set of nets willing to pay for it shrinks until the passage fits.
Dense, over-subscribed layouts that the two-pass mode leaves illegal
are legalized this way (see ``benchmarks/bench_x3_negotiation.py``).

Parallelism rides along for free: within one iteration the negotiated
cost model is frozen, so the paper's E7 order-invariance applies to
every pass, and both the first pass and each reroute wave fan out over
``RouterConfig.workers`` (see :mod:`repro.core.parallel`) with results
identical to a serial run.
"""

from __future__ import annotations

import dataclasses
import time
from dataclasses import dataclass, field
from typing import Optional

from repro.errors import RoutingError
from repro.core.congestion import (
    CongestionHistory,
    CongestionMap,
    find_passages,
    measure_congestion,
)
from repro.core.costs import CostModel, NegotiatedCongestionCost
from repro.core.route import GlobalRoute
from repro.core.router import GlobalRouter, RouterConfig
from repro.layout.layout import Layout
from repro.search.stats import SearchStats


@dataclass(frozen=True)
class NegotiationConfig:
    """Knobs of the negotiation loop.

    Attributes
    ----------
    max_iterations:
        Rip-up-and-reroute rounds after the first pass (the budget;
        convergence usually needs far fewer).
    present_weight:
        Scale of the present-utilization penalty term.
    history_weight:
        Scale of the accumulated-history multiplier.
    history_gain:
        How much history one unit of relative overflow deposits per
        iteration (:class:`~repro.core.congestion.CongestionHistory`).
    max_gap:
        Ignore passages wider than this when measuring congestion
        (``None`` considers all of them).
    """

    max_iterations: int = 20
    present_weight: float = 1.0
    history_weight: float = 2.0
    history_gain: float = 2.0
    max_gap: Optional[int] = None

    def __post_init__(self) -> None:
        if self.max_iterations < 1:
            raise RoutingError(
                f"negotiation needs max_iterations >= 1, got {self.max_iterations}"
            )
        for knob in ("present_weight", "history_weight", "history_gain"):
            value = getattr(self, knob)
            if value < 0:
                raise RoutingError(f"negotiation {knob} must be >= 0, got {value}")

    @classmethod
    def from_params(cls, params: dict) -> "NegotiationConfig":
        """Build a config from a plain keyword dict (pipeline strategy params).

        Unknown keys raise :class:`RoutingError` naming the offender,
        so a typo in a JSON ``strategy_params`` block fails loudly
        instead of silently routing with defaults.
        """
        known = {f.name for f in dataclasses.fields(cls)}
        unknown = sorted(set(params) - known)
        if unknown:
            raise RoutingError(
                f"unknown negotiation parameter(s) {unknown}; known: {sorted(known)}"
            )
        return cls(**params)


@dataclass(frozen=True)
class IterationStats:
    """Convergence telemetry for one negotiation iteration.

    Iteration 0 describes the first (unpenalized) pass; iterations
    1..N describe each reroute wave, measured after its nets moved.
    """

    iteration: int
    overflowed_passages: int
    total_overflow: int
    max_overflow: int
    wirelength: int
    wirelength_delta: int
    rerouted: int
    elapsed_seconds: float

    def as_dict(self) -> dict:
        """JSON-ready representation (used by :mod:`repro.api.result`)."""
        return {
            "iteration": self.iteration,
            "overflowed_passages": self.overflowed_passages,
            "total_overflow": self.total_overflow,
            "max_overflow": self.max_overflow,
            "wirelength": self.wirelength,
            "wirelength_delta": self.wirelength_delta,
            "rerouted": self.rerouted,
            "elapsed_seconds": self.elapsed_seconds,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "IterationStats":
        """Inverse of :meth:`as_dict`."""
        return cls(
            iteration=int(data["iteration"]),
            overflowed_passages=int(data["overflowed_passages"]),
            total_overflow=int(data["total_overflow"]),
            max_overflow=int(data["max_overflow"]),
            wirelength=int(data["wirelength"]),
            wirelength_delta=int(data["wirelength_delta"]),
            rerouted=int(data["rerouted"]),
            elapsed_seconds=float(data["elapsed_seconds"]),
        )


@dataclass
class NegotiationResult:
    """Outcome of negotiated rip-up-and-reroute.

    ``search_stats`` totals the search effort of the *whole* run —
    every pass of every iteration — unlike ``final.stats``, which only
    accumulates up to the best iteration (the returned route).  Perf
    telemetry (expansions/sec, ray-cache hit rate) must read the
    run-wide numbers or it silently drops the waves after the best.
    """

    first: GlobalRoute
    final: GlobalRoute
    congestion_before: CongestionMap
    congestion_after: CongestionMap
    iterations: list[IterationStats] = field(default_factory=list)
    rerouted_nets: list[str] = field(default_factory=list)
    converged: bool = False
    search_stats: SearchStats = field(default_factory=SearchStats)

    @property
    def iteration_count(self) -> int:
        """Reroute waves actually run (excludes the first pass)."""
        return max(0, len(self.iterations) - 1)


class NegotiatedRouter:
    """Iterated negotiated-congestion routing of one layout.

    Parameters mirror :class:`~repro.core.router.GlobalRouter`, plus a
    :class:`NegotiationConfig`.  The loop:

    1. Route all nets independently (parallel when
       ``config.workers > 1``) and measure passage congestion.
    2. While any passage is over capacity and budget remains: fold the
       overflow into the history, build a
       :class:`~repro.core.costs.NegotiatedCongestionCost` from the
       present utilizations and accumulated history, rip up every net
       through an overflowed passage, and reroute those nets under the
       frozen negotiated model (again fanning out over workers).
    3. Return the best route seen — least total overflow, then least
       wirelength — with per-iteration convergence stats.
    """

    def __init__(
        self,
        layout: Optional[Layout] = None,
        config: RouterConfig = RouterConfig(),
        *,
        cost_model: Optional[CostModel] = None,
        negotiation: Optional[NegotiationConfig] = None,
        router: Optional[GlobalRouter] = None,
    ):
        if (layout is None) == (router is None):
            raise RoutingError("provide exactly one of layout or router")
        self.router = (
            router
            if router is not None
            else GlobalRouter(layout, config, cost_model=cost_model)
        )
        self.negotiation = negotiation if negotiation is not None else NegotiationConfig()

    @classmethod
    def from_router(
        cls, router: GlobalRouter, *, negotiation: Optional[NegotiationConfig] = None
    ) -> "NegotiatedRouter":
        """Wrap an existing configured router."""
        return cls(router=router, negotiation=negotiation)

    @property
    def layout(self) -> Layout:
        """The layout being routed."""
        return self.router.layout

    def run(self, *, on_unroutable: str = "raise") -> NegotiationResult:
        """Negotiate until congestion-free or out of budget.

        Parameters
        ----------
        on_unroutable:
            ``"raise"`` propagates the first unroutable net;
            ``"skip"`` records it in the route's ``failed_nets``.  A
            net that fails *during a reroute wave* keeps its previous
            tree, so the route never loses a net it once had.
        """
        if on_unroutable not in ("raise", "skip"):
            raise RoutingError(f"on_unroutable must be 'raise' or 'skip', not {on_unroutable!r}")
        # One pool for the whole run: the first pass and every reroute
        # wave reuse the same workers instead of paying spawn +
        # layout-pickle costs per iteration.
        pool = self.router.open_pool()
        try:
            return self._run(on_unroutable, pool)
        finally:
            if pool is not None:
                pool.close()

    def _run(self, on_unroutable: str, pool) -> NegotiationResult:
        """The negotiation loop proper (*pool* is shared by all passes)."""
        knobs = self.negotiation
        passages = find_passages(self.layout, max_gap=knobs.max_gap)
        history = CongestionHistory(gain=knobs.history_gain)

        started = time.perf_counter()
        first = self.router.route_all(on_unroutable=on_unroutable, pool=pool)
        before = measure_congestion(passages, first)
        iterations = [
            IterationStats(
                iteration=0,
                overflowed_passages=before.overflow_count,
                total_overflow=before.total_overflow,
                max_overflow=before.max_overflow,
                wirelength=first.total_length,
                wirelength_delta=0,
                rerouted=0,
                elapsed_seconds=time.perf_counter() - started,
            )
        ]

        current, current_map = first, before
        best, best_map = first, before
        rerouted: set[str] = set()
        # Standard PathFinder pruning: at the start of each iteration,
        # skip nets whose current path has zero present-congestion
        # overlap — affected_nets() is exactly the nets flowing through
        # a presently-overflowed passage, so everything else keeps its
        # tree untouched.  RouterConfig.prune_clean_nets opts out,
        # ripping up the whole netlist every wave (the original
        # PathFinder formulation; useful as a quality baseline).
        prune = self.router.config.prune_clean_nets
        for iteration in range(1, knobs.max_iterations + 1):
            if current_map.total_overflow == 0:
                break
            wave_started = time.perf_counter()
            history.update(current_map)
            model = NegotiatedCongestionCost(
                history.penalty_terms(current_map),
                present_weight=knobs.present_weight,
                history_weight=knobs.history_weight,
                base=self.router.cost_model,
            )
            if prune:
                affected = sorted(current_map.affected_nets())
            else:
                affected = sorted(current.trees)
            candidate, candidate_map, moved = self.router.reroute_pass(
                current,
                affected,
                model,
                passages=passages,
                pool=pool,
                on_unroutable=on_unroutable,
                rerouted=rerouted,
            )
            iterations.append(
                IterationStats(
                    iteration=iteration,
                    overflowed_passages=candidate_map.overflow_count,
                    total_overflow=candidate_map.total_overflow,
                    max_overflow=candidate_map.max_overflow,
                    wirelength=candidate.total_length,
                    wirelength_delta=candidate.total_length - current.total_length,
                    rerouted=moved,
                    elapsed_seconds=time.perf_counter() - wave_started,
                )
            )
            current, current_map = candidate, candidate_map
            if (candidate_map.total_overflow, candidate.total_length) < (
                best_map.total_overflow,
                best.total_length,
            ):
                best, best_map = candidate, candidate_map

        return NegotiationResult(
            first=first,
            final=best,
            congestion_before=before,
            congestion_after=best_map,
            iterations=iterations,
            rerouted_nets=sorted(rerouted),
            converged=best_map.total_overflow == 0,
            # `current` is the last candidate, whose stats accumulated
            # through every wave — the run-wide totals.
            search_stats=current.stats,
        )
