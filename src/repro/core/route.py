"""Route result data structures.

A two-point search yields a :class:`RoutePath`; a routed net is a
:class:`RouteTree` (the paper's "connected set": pins plus all the
line segments of every connecting path); a routed layout is a
:class:`GlobalRoute`.  :class:`TargetSet` is the search-facing view of
a partially built tree — the goal test, the admissible heuristic, and
the escape coordinates it contributes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional

import numpy as np

from repro.errors import RoutingError
from repro.geometry.point import Point
from repro.geometry.rect import Rect, bounding_rect
from repro.geometry.segment import Segment, path_bends, path_length, path_segments
from repro.search.stats import ExpansionTrace, SearchStats

_I64_MAX = np.iinfo(np.int64).max


@dataclass(frozen=True)
class RoutePath:
    """One point-to-point (or point-to-tree) connection.

    Attributes
    ----------
    points:
        Bend points from the connection's start pin to its attachment
        point, in order.  A single-point path represents a terminal
        that was already on the tree (zero-length connection).
    cost:
        Search cost of the path under the active cost model (equals
        length for the plain wirelength model).
    """

    points: tuple[Point, ...]
    cost: float = 0.0

    def __post_init__(self) -> None:
        if not self.points:
            raise RoutingError("a route path needs at least one point")
        path_length(list(self.points))  # validates rectilinearity

    @property
    def start(self) -> Point:
        """First point of the path."""
        return self.points[0]

    @property
    def end(self) -> Point:
        """Last point (the attachment to the target/tree)."""
        return self.points[-1]

    @property
    def length(self) -> int:
        """Total rectilinear wirelength."""
        return path_length(list(self.points))

    @property
    def bends(self) -> int:
        """Number of corners along the path."""
        return path_bends(list(self.points))

    @property
    def segments(self) -> tuple[Segment, ...]:
        """Non-degenerate segments of the path."""
        return tuple(path_segments(list(self.points)))


@dataclass
class RouteTree:
    """A routed net: the paper's "connected set".

    Attributes
    ----------
    net_name:
        The routed net.
    paths:
        One entry per terminal connection, in connection order.  The
        seed terminal contributes no path.
    connected_terminals:
        Terminal names in connection order (seed first).
    stats:
        Merged search statistics over every connection.
    """

    net_name: str
    paths: list[RoutePath] = field(default_factory=list)
    connected_terminals: list[str] = field(default_factory=list)
    stats: SearchStats = field(default_factory=SearchStats)
    traces: list[ExpansionTrace] = field(default_factory=list)

    @property
    def segments(self) -> list[Segment]:
        """All non-degenerate wire segments of the tree."""
        segs: list[Segment] = []
        for path in self.paths:
            segs.extend(path.segments)
        return segs

    @property
    def total_length(self) -> int:
        """Total tree wirelength."""
        return sum(path.length for path in self.paths)

    @property
    def total_bends(self) -> int:
        """Total corner count over all connections."""
        return sum(path.bends for path in self.paths)

    @property
    def points(self) -> list[Point]:
        """Every bend point of every path."""
        return [p for path in self.paths for p in path.points]

    @property
    def bounding_box(self) -> Optional[Rect]:
        """Bounding rect of the tree geometry (``None`` if empty)."""
        pts = self.points
        return bounding_rect(pts) if pts else None


@dataclass
class GlobalRoute:
    """The global routing of a whole layout."""

    trees: dict[str, RouteTree] = field(default_factory=dict)
    stats: SearchStats = field(default_factory=SearchStats)
    failed_nets: list[str] = field(default_factory=list)

    @property
    def total_length(self) -> int:
        """Summed wirelength over all routed nets."""
        return sum(tree.total_length for tree in self.trees.values())

    @property
    def total_bends(self) -> int:
        """Summed corner count over all routed nets."""
        return sum(tree.total_bends for tree in self.trees.values())

    @property
    def routed_count(self) -> int:
        """Number of successfully routed nets."""
        return len(self.trees)

    def tree(self, net_name: str) -> RouteTree:
        """Route tree for *net_name*.

        Raises :class:`RoutingError` if the net was not routed.
        """
        try:
            return self.trees[net_name]
        except KeyError:
            raise RoutingError(f"net {net_name!r} has no route") from None

    def all_segments(self) -> list[tuple[str, Segment]]:
        """Every wire segment, tagged with its owning net name."""
        return [(name, seg) for name, tree in self.trees.items() for seg in tree.segments]


class TargetSet:
    """The goal of one search: a set of points and segments.

    For the first connection of a net this is the destination
    terminal's pins; for later connections it is the whole partial tree
    — "all line segments in the spanning tree being built as potential
    connection points".
    """

    def __init__(self, points: Iterable[Point] = (), segments: Iterable[Segment] = ()):
        self.points: list[Point] = list(points)
        self.segments: list[Segment] = [s for s in segments if not s.is_degenerate]
        # Degenerate segments are points in disguise.
        self.points.extend(s.a for s in segments if s.is_degenerate)
        if not self.points and not self.segments:
            raise RoutingError("target set is empty")
        self._point_set = set(self.points)
        self._xy_set = {(p.x, p.y) for p in self.points}
        self._columns: Optional[tuple[np.ndarray, ...]] = None
        self._track_terms_cache: dict[tuple[bool, int], tuple[np.ndarray, ...]] = {}

    def contains(self, p: Point) -> bool:
        """Goal test: *p* coincides with a target point or lies on a segment."""
        if p in self._point_set:
            return True
        return any(seg.contains_point(p) for seg in self.segments)

    def contains_xy(self, x: int, y: int) -> bool:
        """:meth:`contains` over bare coordinates (vectorized engine)."""
        if (x, y) in self._xy_set:
            return True
        for seg in self.segments:
            a, b = seg.a, seg.b  # normalized: a <= b
            if a.y == b.y:
                if y == a.y and a.x <= x <= b.x:
                    return True
            elif x == a.x and a.y <= y <= b.y:
                return True
        return False

    def distance_to(self, p: Point) -> int:
        """Minimum rectilinear distance from *p* to any target.

        This is the admissible heuristic for tree connection: actual
        obstacle-avoiding cost can only be larger.
        """
        best: Optional[int] = None
        for point in self.points:
            d = point.manhattan(p)
            if best is None or d < best:
                best = d
        for seg in self.segments:
            d = seg.distance_to_point(p)
            if best is None or d < best:
                best = d
        assert best is not None
        return best

    def _target_columns(self) -> tuple[np.ndarray, ...]:
        """Lazily built int64 columns for the batched heuristic."""
        if self._columns is None:
            horizontal = [s for s in self.segments if s.is_horizontal]
            vertical = [s for s in self.segments if not s.is_horizontal]
            self._columns = (
                np.array([p.x for p in self.points], dtype=np.int64),
                np.array([p.y for p in self.points], dtype=np.int64),
                np.array([s.a.y for s in horizontal], dtype=np.int64),
                np.array([s.a.x for s in horizontal], dtype=np.int64),
                np.array([s.b.x for s in horizontal], dtype=np.int64),
                np.array([s.a.x for s in vertical], dtype=np.int64),
                np.array([s.a.y for s in vertical], dtype=np.int64),
                np.array([s.b.y for s in vertical], dtype=np.int64),
            )
        return self._columns

    def distances_to_many(self, xs: np.ndarray, ys: np.ndarray, *, native: bool = False) -> np.ndarray:
        """:meth:`distance_to` for a whole successor batch at once.

        Pure int64 arithmetic, so the values equal the scalar loop's
        exactly.  With ``native=True`` and numba importable the
        distance kernel runs jitted; otherwise numpy broadcasting.
        """
        from repro.search import native as native_kernels

        px, py, hy, hx0, hx1, vx, vy0, vy1 = self._target_columns()
        if native and native_kernels.NATIVE_AVAILABLE:
            out = np.empty(xs.shape[0], dtype=np.int64)
            native_kernels.min_target_distance(xs, ys, px, py, hy, hx0, hx1, vx, vy0, vy1, out)
            return out
        best = np.full(xs.shape[0], _I64_MAX, dtype=np.int64)
        if px.size:
            d = np.abs(px[:, None] - xs[None, :]) + np.abs(py[:, None] - ys[None, :])
            np.minimum(best, d.min(axis=0), out=best)
        if hy.size:
            # Nearest point on a horizontal segment clamps x to the span.
            dx = np.maximum(np.maximum(hx0[:, None] - xs[None, :], xs[None, :] - hx1[:, None]), 0)
            np.minimum(best, (dx + np.abs(hy[:, None] - ys[None, :])).min(axis=0), out=best)
        if vx.size:
            dy = np.maximum(np.maximum(vy0[:, None] - ys[None, :], ys[None, :] - vy1[:, None]), 0)
            np.minimum(best, (dy + np.abs(vx[:, None] - xs[None, :])).min(axis=0), out=best)
        return best

    def _track_terms(self, horizontal: bool, fixed: int) -> tuple[np.ndarray, ...]:
        """Targets collapsed against one track, for :meth:`distances_along`.

        For successors varying along one axis with the other pinned to
        *fixed*, each target's distance is either ``|t - c| + k``
        (points, and segments perpendicular to the travel axis — their
        clamp term depends only on *fixed*) or ``clamp(c, lo, hi) + k``
        (segments parallel to the travel axis).  The constant parts
        are precomputed and cached per track: searches expand many
        states on the same track, and the target set is frozen for the
        whole connection.
        """
        key = (horizontal, fixed)
        cached = self._track_terms_cache.get(key)
        if cached is not None:
            return cached
        px, py, hy, hx0, hx1, vx, vy0, vy1 = self._target_columns()
        if horizontal:
            t = np.concatenate((px, vx))
            k = np.concatenate((
                np.abs(py - fixed),
                np.maximum(np.maximum(vy0 - fixed, fixed - vy1), 0),
            ))
            lo, hi, kseg = hx0, hx1, np.abs(hy - fixed)
        else:
            t = np.concatenate((py, hy))
            k = np.concatenate((
                np.abs(px - fixed),
                np.maximum(np.maximum(hx0 - fixed, fixed - hx1), 0),
            ))
            lo, hi, kseg = vy0, vy1, np.abs(vx - fixed)
        cached = (t, k, lo, hi, kseg)
        self._track_terms_cache[key] = cached
        return cached

    def distances_along(self, coords: np.ndarray, fixed: int, horizontal: bool) -> np.ndarray:
        """:meth:`distances_to_many` for an axis-aligned batch.

        Successor ``j`` sits at ``(coords[j], fixed)`` when
        *horizontal*, else at ``(fixed, coords[j])``.  All arithmetic
        is int64, and an integer minimum is exact regardless of
        evaluation order, so the values equal the scalar
        :meth:`distance_to` loop's exactly.
        """
        t, k, lo, hi, kseg = self._track_terms(horizontal, fixed)
        if not lo.size and t.size == 1:
            # Single point target (the common late-tree case): the
            # minimum over one row is that row, no broadcast needed.
            d1 = np.abs(coords - t[0])
            d1 += k[0]
            return d1
        best: Optional[np.ndarray] = None
        if t.size:
            d = np.abs(t[:, None] - coords[None, :])
            d += k[:, None]
            best = d.min(axis=0)
        if lo.size:
            d2 = np.maximum(np.maximum(lo[:, None] - coords, coords - hi[:, None]), 0)
            d2 += kseg[:, None]
            if best is None:
                best = d2.min(axis=0)
            else:
                np.minimum(best, d2.min(axis=0), out=best)
        assert best is not None  # the target set is never empty
        return best

    def distances_expansion(
        self, hx: np.ndarray, y: int, vy: np.ndarray, x: int, *, native: bool = False
    ) -> np.ndarray:
        """Heuristics for a whole expansion as one float64 array.

        Fuses the two per-axis :meth:`distances_along` calls —
        horizontal successors ``(hx[j], y)`` first, then vertical
        successors ``(x, vy[j])`` — casting the exact int64 distances
        into a single output (integers are exact in float64).
        """
        from repro.search import native as native_kernels

        nh = hx.shape[0]
        n = nh + vy.shape[0]
        if native and native_kernels.NATIVE_AVAILABLE:
            px, py, hy, hx0, hx1, vx, vy0, vy1 = self._target_columns()
            xs = np.empty(n, dtype=np.int64)
            ys = np.empty(n, dtype=np.int64)
            xs[:nh] = hx
            xs[nh:] = x
            ys[:nh] = y
            ys[nh:] = vy
            out_i = np.empty(n, dtype=np.int64)
            native_kernels.min_target_distance(
                xs, ys, px, py, hy, hx0, hx1, vx, vy0, vy1, out_i
            )
            return out_i.astype(np.float64)
        out = np.empty(n, dtype=np.float64)
        if nh:
            out[:nh] = self.distances_along(hx, y, True)
        if vy.shape[0]:
            out[nh:] = self.distances_along(vy, x, False)
        return out

    def nearest_point_to(self, p: Point) -> Point:
        """The concrete target point nearest to *p* (for diagnostics)."""
        candidates = list(self.points) + [seg.nearest_point_to(p) for seg in self.segments]
        return min(candidates, key=lambda c: (c.manhattan(p), c))

    def escape_xs(self) -> set[int]:
        """x coordinates at which a search may need to stop to hit a target."""
        xs = {p.x for p in self.points}
        for seg in self.segments:
            xs.add(seg.a.x)
            xs.add(seg.b.x)
        return xs

    def escape_ys(self) -> set[int]:
        """y coordinates at which a search may need to stop to hit a target."""
        ys = {p.y for p in self.points}
        for seg in self.segments:
            ys.add(seg.a.y)
            ys.add(seg.b.y)
        return ys

    def extended(
        self, points: Iterable[Point] = (), segments: Iterable[Segment] = ()
    ) -> "TargetSet":
        """A new target set with more members (tree growth)."""
        return TargetSet(
            points=list(self.points) + list(points),
            segments=list(self.segments) + list(segments),
        )

    def __len__(self) -> int:
        return len(self.points) + len(self.segments)
