"""Route result data structures.

A two-point search yields a :class:`RoutePath`; a routed net is a
:class:`RouteTree` (the paper's "connected set": pins plus all the
line segments of every connecting path); a routed layout is a
:class:`GlobalRoute`.  :class:`TargetSet` is the search-facing view of
a partially built tree — the goal test, the admissible heuristic, and
the escape coordinates it contributes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional

from repro.errors import RoutingError
from repro.geometry.point import Point
from repro.geometry.rect import Rect, bounding_rect
from repro.geometry.segment import Segment, path_bends, path_length, path_segments
from repro.search.stats import ExpansionTrace, SearchStats


@dataclass(frozen=True)
class RoutePath:
    """One point-to-point (or point-to-tree) connection.

    Attributes
    ----------
    points:
        Bend points from the connection's start pin to its attachment
        point, in order.  A single-point path represents a terminal
        that was already on the tree (zero-length connection).
    cost:
        Search cost of the path under the active cost model (equals
        length for the plain wirelength model).
    """

    points: tuple[Point, ...]
    cost: float = 0.0

    def __post_init__(self) -> None:
        if not self.points:
            raise RoutingError("a route path needs at least one point")
        path_length(list(self.points))  # validates rectilinearity

    @property
    def start(self) -> Point:
        """First point of the path."""
        return self.points[0]

    @property
    def end(self) -> Point:
        """Last point (the attachment to the target/tree)."""
        return self.points[-1]

    @property
    def length(self) -> int:
        """Total rectilinear wirelength."""
        return path_length(list(self.points))

    @property
    def bends(self) -> int:
        """Number of corners along the path."""
        return path_bends(list(self.points))

    @property
    def segments(self) -> tuple[Segment, ...]:
        """Non-degenerate segments of the path."""
        return tuple(path_segments(list(self.points)))


@dataclass
class RouteTree:
    """A routed net: the paper's "connected set".

    Attributes
    ----------
    net_name:
        The routed net.
    paths:
        One entry per terminal connection, in connection order.  The
        seed terminal contributes no path.
    connected_terminals:
        Terminal names in connection order (seed first).
    stats:
        Merged search statistics over every connection.
    """

    net_name: str
    paths: list[RoutePath] = field(default_factory=list)
    connected_terminals: list[str] = field(default_factory=list)
    stats: SearchStats = field(default_factory=SearchStats)
    traces: list[ExpansionTrace] = field(default_factory=list)

    @property
    def segments(self) -> list[Segment]:
        """All non-degenerate wire segments of the tree."""
        segs: list[Segment] = []
        for path in self.paths:
            segs.extend(path.segments)
        return segs

    @property
    def total_length(self) -> int:
        """Total tree wirelength."""
        return sum(path.length for path in self.paths)

    @property
    def total_bends(self) -> int:
        """Total corner count over all connections."""
        return sum(path.bends for path in self.paths)

    @property
    def points(self) -> list[Point]:
        """Every bend point of every path."""
        return [p for path in self.paths for p in path.points]

    @property
    def bounding_box(self) -> Optional[Rect]:
        """Bounding rect of the tree geometry (``None`` if empty)."""
        pts = self.points
        return bounding_rect(pts) if pts else None


@dataclass
class GlobalRoute:
    """The global routing of a whole layout."""

    trees: dict[str, RouteTree] = field(default_factory=dict)
    stats: SearchStats = field(default_factory=SearchStats)
    failed_nets: list[str] = field(default_factory=list)

    @property
    def total_length(self) -> int:
        """Summed wirelength over all routed nets."""
        return sum(tree.total_length for tree in self.trees.values())

    @property
    def total_bends(self) -> int:
        """Summed corner count over all routed nets."""
        return sum(tree.total_bends for tree in self.trees.values())

    @property
    def routed_count(self) -> int:
        """Number of successfully routed nets."""
        return len(self.trees)

    def tree(self, net_name: str) -> RouteTree:
        """Route tree for *net_name*.

        Raises :class:`RoutingError` if the net was not routed.
        """
        try:
            return self.trees[net_name]
        except KeyError:
            raise RoutingError(f"net {net_name!r} has no route") from None

    def all_segments(self) -> list[tuple[str, Segment]]:
        """Every wire segment, tagged with its owning net name."""
        return [(name, seg) for name, tree in self.trees.items() for seg in tree.segments]


class TargetSet:
    """The goal of one search: a set of points and segments.

    For the first connection of a net this is the destination
    terminal's pins; for later connections it is the whole partial tree
    — "all line segments in the spanning tree being built as potential
    connection points".
    """

    def __init__(self, points: Iterable[Point] = (), segments: Iterable[Segment] = ()):
        self.points: list[Point] = list(points)
        self.segments: list[Segment] = [s for s in segments if not s.is_degenerate]
        # Degenerate segments are points in disguise.
        self.points.extend(s.a for s in segments if s.is_degenerate)
        if not self.points and not self.segments:
            raise RoutingError("target set is empty")
        self._point_set = set(self.points)

    def contains(self, p: Point) -> bool:
        """Goal test: *p* coincides with a target point or lies on a segment."""
        if p in self._point_set:
            return True
        return any(seg.contains_point(p) for seg in self.segments)

    def distance_to(self, p: Point) -> int:
        """Minimum rectilinear distance from *p* to any target.

        This is the admissible heuristic for tree connection: actual
        obstacle-avoiding cost can only be larger.
        """
        best: Optional[int] = None
        for point in self.points:
            d = point.manhattan(p)
            if best is None or d < best:
                best = d
        for seg in self.segments:
            d = seg.distance_to_point(p)
            if best is None or d < best:
                best = d
        assert best is not None
        return best

    def nearest_point_to(self, p: Point) -> Point:
        """The concrete target point nearest to *p* (for diagnostics)."""
        candidates = list(self.points) + [seg.nearest_point_to(p) for seg in self.segments]
        return min(candidates, key=lambda c: (c.manhattan(p), c))

    def escape_xs(self) -> set[int]:
        """x coordinates at which a search may need to stop to hit a target."""
        xs = {p.x for p in self.points}
        for seg in self.segments:
            xs.add(seg.a.x)
            xs.add(seg.b.x)
        return xs

    def escape_ys(self) -> set[int]:
        """y coordinates at which a search may need to stop to hit a target."""
        ys = {p.y for p in self.points}
        for seg in self.segments:
            ys.add(seg.a.y)
            ys.add(seg.b.y)
        return ys

    def extended(
        self, points: Iterable[Point] = (), segments: Iterable[Segment] = ()
    ) -> "TargetSet":
        """A new target set with more members (tree growth)."""
        return TargetSet(
            points=list(self.points) + list(points),
            segments=list(self.segments) + list(segments),
        )

    def __len__(self) -> int:
        return len(self.points) + len(self.segments)
