"""Passage congestion: detection, measurement, penalty regions.

From the Conclusions: "a cost function may be associated with what is
called channel congestion.  Since there are no channels the term is
slightly abused, but it refers here to congested passages between
adjacent cells.  A first-pass route of all nets would reveal congested
areas.  These congested areas would manifest themselves in the form of
several nets hugging the edge of a cell which was close to an adjacent
cell.  A second route of the affected nets could penalize those paths
which chose the congested area."

A *passage* is the rectangular corridor between two facing cell edges
(or between a cell edge and the routing boundary) with no third cell
in between.  Its capacity is the number of unit-pitch wire tracks that
fit across the gap — ``gap + 1``, counting the two hugging positions
on the cell boundaries themselves.  Usage counts distinct nets running
*through* the passage parallel to its flow direction.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional

import numpy as np

from repro.core.route import GlobalRoute
from repro.geometry.point import Axis
from repro.geometry.rect import Rect
from repro.geometry.segment import Segment
from repro.layout.layout import Layout

#: Pseudo cell name for passages against the routing boundary.
BOUNDARY = "<boundary>"


@dataclass(frozen=True)
class Passage:
    """A corridor between two facing cell edges.

    Attributes
    ----------
    region:
        The corridor rectangle (closed; its long sides lie on the two
        facing boundaries).
    flow:
        Axis along which wires pass *through* the corridor:
        ``Axis.Y`` for a corridor between horizontally adjacent cells.
    between:
        Names of the two cells (or :data:`BOUNDARY`).
    """

    region: Rect
    flow: Axis
    between: tuple[str, str]

    @property
    def gap(self) -> int:
        """Distance between the two facing edges."""
        return self.region.width if self.flow is Axis.Y else self.region.height

    @property
    def capacity(self) -> int:
        """Unit-pitch wire tracks across the gap (both hug positions count)."""
        return self.gap + 1

    @property
    def length(self) -> int:
        """Extent of the corridor along its flow axis."""
        return self.region.height if self.flow is Axis.Y else self.region.width

    def carries(self, seg: Segment) -> bool:
        """Whether *seg* flows through the passage.

        A carrying segment is parallel to the flow axis, lies within
        the corridor across the gap (hugging the facing edges counts),
        and overlaps the corridor's flow extent with positive length.
        """
        if seg.is_degenerate:
            return False
        if self.flow is Axis.Y:
            if not seg.is_vertical or seg.is_horizontal:
                return False
            if not self.region.x_span.contains(seg.a.x):
                return False
            return seg.span.overlaps(self.region.y_span, strict=True)
        if not seg.is_horizontal or seg.is_vertical:
            return False
        if not self.region.y_span.contains(seg.a.y):
            return False
        return seg.span.overlaps(self.region.x_span, strict=True)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        a, b = self.between
        return f"Passage({a}|{b}, gap={self.gap}, {self.region})"


def find_passages(layout: Layout, *, max_gap: Optional[int] = None) -> list[Passage]:
    """Detect all inter-cell and cell-to-boundary passages of *layout*.

    Parameters
    ----------
    max_gap:
        When given, corridors wider than this are ignored (they are
        not plausible bottlenecks).

    Passages blocked by an intervening third cell are dropped rather
    than split: a corridor with a cell in the middle is two *other*
    passages against that cell, which the pairwise sweep finds anyway.
    """
    passages: list[Passage] = []
    boxes = [(cell.name, cell.bounding_box) for cell in layout.cells]

    for i in range(len(boxes)):
        for j in range(len(boxes)):
            if i == j:
                continue
            name_a, a = boxes[i]
            name_b, b = boxes[j]
            # Horizontal adjacency: a strictly left of b.
            if a.x1 <= b.x0:
                overlap = a.y_span.intersection(b.y_span)
                if overlap is not None and overlap.length >= 1:
                    region = Rect(a.x1, overlap.lo, b.x0, overlap.hi)
                    _append_if_clear(
                        passages, region, Axis.Y, (name_a, name_b), boxes, max_gap
                    )
            # Vertical adjacency: a strictly below b.
            if a.y1 <= b.y0:
                overlap = a.x_span.intersection(b.x_span)
                if overlap is not None and overlap.length >= 1:
                    region = Rect(overlap.lo, a.y1, overlap.hi, b.y0)
                    _append_if_clear(
                        passages, region, Axis.X, (name_a, name_b), boxes, max_gap
                    )

    outline = layout.outline
    for name, box in boxes:
        candidates = (
            (Rect(outline.x0, box.y0, box.x0, box.y1), Axis.Y, (BOUNDARY, name)),
            (Rect(box.x1, box.y0, outline.x1, box.y1), Axis.Y, (name, BOUNDARY)),
            (Rect(box.x0, outline.y0, box.x1, box.y0), Axis.X, (BOUNDARY, name)),
            (Rect(box.x0, box.y1, box.x1, outline.y1), Axis.X, (name, BOUNDARY)),
        )
        for region, flow, between in candidates:
            _append_if_clear(passages, region, flow, between, boxes, max_gap)

    return _dedupe(passages)


def _append_if_clear(
    passages: list[Passage],
    region: Rect,
    flow: Axis,
    between: tuple[str, str],
    boxes: list[tuple[str, Rect]],
    max_gap: Optional[int],
) -> None:
    """Append the passage unless degenerate, too wide, or obstructed."""
    gap = region.width if flow is Axis.Y else region.height
    span = region.height if flow is Axis.Y else region.width
    if gap < 1 or span < 1:
        return
    if max_gap is not None and gap > max_gap:
        return
    for name, box in boxes:
        if name in between:
            continue
        if box.intersects(region, strict=True):
            return
    passages.append(Passage(region, flow, between))


def _dedupe(passages: list[Passage]) -> list[Passage]:
    """Drop symmetric duplicates (a|b vs b|a over the same region)."""
    seen: set[tuple[Rect, Axis, frozenset[str]]] = set()
    unique: list[Passage] = []
    for p in passages:
        key = (p.region, p.flow, frozenset(p.between))
        if key not in seen:
            seen.add(key)
            unique.append(p)
    return unique


@dataclass
class PassageUsage:
    """Measured load of one passage."""

    passage: Passage
    nets: set[str] = field(default_factory=set)

    @property
    def usage(self) -> int:
        """Distinct nets flowing through the passage."""
        return len(self.nets)

    @property
    def utilization(self) -> float:
        """usage / capacity."""
        return self.usage / self.passage.capacity

    @property
    def overflow(self) -> int:
        """Nets beyond capacity (0 when within capacity)."""
        return max(0, self.usage - self.passage.capacity)

    @property
    def overuse(self) -> float:
        """PathFinder's present-sharing term, relative to capacity.

        ``max(0, usage + 1 - capacity) / capacity``: positive as soon
        as the passage has no room for one more net, so full passages
        already repel newcomers before they overflow.
        """
        return max(0, self.usage + 1 - self.passage.capacity) / self.passage.capacity


@dataclass
class CongestionMap:
    """Usage of every passage after a routing pass."""

    entries: list[PassageUsage]

    @property
    def max_utilization(self) -> float:
        """Peak usage/capacity over all passages (0.0 with no passages)."""
        return max((e.utilization for e in self.entries), default=0.0)

    @property
    def total_overflow(self) -> int:
        """Summed overflow over all passages."""
        return sum(e.overflow for e in self.entries)

    @property
    def overflow_count(self) -> int:
        """Number of passages loaded beyond capacity."""
        return len(self.overflowed())

    @property
    def max_overflow(self) -> int:
        """Worst single-passage overflow (0 when everything fits)."""
        return max((e.overflow for e in self.entries), default=0)

    def overflowed(self) -> list[PassageUsage]:
        """Passages loaded beyond capacity."""
        return [e for e in self.entries if e.overflow > 0]

    def affected_nets(self) -> set[str]:
        """Nets flowing through any overflowed passage."""
        nets: set[str] = set()
        for entry in self.overflowed():
            nets |= entry.nets
        return nets

    def penalty_regions(self, *, weight: float = 2.0) -> list[tuple[Rect, float]]:
        """Cost-model regions for the second pass.

        The per-unit-length weight scales with relative overload so
        that badly overflowed passages repel harder.
        """
        regions: list[tuple[Rect, float]] = []
        for entry in self.overflowed():
            overload = entry.usage / entry.passage.capacity
            regions.append((entry.passage.region, weight * overload))
        return regions


@dataclass
class CongestionHistory:
    """Accumulated per-passage overflow history — PathFinder's *h* term.

    The two-pass scheme forgets: a passage that overflowed in round one
    but drained in round two exerts no force in round three, so nets
    oscillate back in.  Negotiated congestion (McMurchie & Ebeling's
    PathFinder, and both cgra_pnr routers) fixes this by accumulating a
    monotone history value per congested resource; the penalty a
    passage exerts grows with every iteration it spends over capacity,
    so repeat offenders become ever more expensive and the negotiation
    converges instead of cycling.

    Values are keyed by the (hashable) :class:`Passage` itself and
    never decrease; :meth:`update` folds in one iteration's measured
    overflow, scaled by ``gain``.
    """

    gain: float = 1.0
    values: dict[Passage, float] = field(default_factory=dict)

    def value(self, passage: Passage) -> float:
        """Accumulated history of *passage* (0.0 if it never overflowed)."""
        return self.values.get(passage, 0.0)

    def update(self, congestion: CongestionMap) -> None:
        """Fold one iteration's overflow into the history.

        Each overflowed passage gains ``gain * overflow / capacity``,
        so badly overloaded narrow passages build history fastest.
        History is monotone: passages that stopped overflowing keep
        what they accrued.
        """
        for entry in congestion.overflowed():
            self.values[entry.passage] = self.value(entry.passage) + self.gain * (
                entry.overflow / entry.passage.capacity
            )

    def seed(self, congestion: CongestionMap) -> None:
        """Pre-charge history from an existing routing's utilization.

        The incremental re-router starts from kept routes that a prior
        negotiation already detoured; their conflicts are *resolved*,
        so :meth:`update` (overflow-driven) would record nothing and a
        ripped-up net would forget why it detoured.  Seeding charges
        every *full* passage (``usage >= capacity``) with
        ``gain * usage / capacity`` — the saturated structure of the
        previous solution — so dirty nets steer around it from wave 0
        and re-negotiation does not unravel the kept assignment.
        Existing history is kept when larger (seed never decreases).
        """
        for entry in congestion.entries:
            capacity = entry.passage.capacity
            if capacity > 0 and entry.usage >= capacity:
                charge = self.gain * entry.usage / capacity
                if charge > self.value(entry.passage):
                    self.values[entry.passage] = charge

    def penalty_terms(self, congestion: CongestionMap) -> list[tuple[Rect, float, float]]:
        """``(region, present, history)`` terms for the negotiated cost.

        One term per passage that is presently out of room
        (:attr:`PassageUsage.overuse` > 0) *or* carries history; the
        history term keeps repelling even after a passage drains, which
        is what stops ripped-up nets from oscillating straight back.
        Terms follow the congestion map's entry order, so identical
        inputs yield an identical (deterministic) cost model.
        """
        terms: list[tuple[Rect, float, float]] = []
        for entry in congestion.entries:
            history = self.value(entry.passage)
            if entry.overuse > 0 or history > 0:
                terms.append((entry.passage.region, entry.overuse, history))
        return terms


def measure_congestion(passages: Iterable[Passage], route: GlobalRoute) -> CongestionMap:
    """Count, per passage, the distinct nets flowing through it.

    Column-batched form of the naive ``passage.carries(seg)`` double
    loop: segment endpoints go into int64 columns once, then each
    passage's carry test is a handful of elementwise comparisons.  The
    membership math is integer-exact and ``nets`` is a set, so the
    result is identical to the scalar loop for any input.
    """
    entries = [PassageUsage(p) for p in passages]
    tagged = route.all_segments()
    if not entries or not tagged:
        return CongestionMap(entries)

    n = len(tagged)
    ax = np.empty(n, dtype=np.int64)
    ay = np.empty(n, dtype=np.int64)
    bx = np.empty(n, dtype=np.int64)
    by = np.empty(n, dtype=np.int64)
    for i, (_, seg) in enumerate(tagged):
        ax[i] = seg.a.x
        ay[i] = seg.a.y
        bx[i] = seg.b.x
        by[i] = seg.b.y
    # Degenerate segments are in neither class (carries() ignores
    # them); non-rectilinear ones would be in neither either.
    vertical = (ax == bx) & (ay != by)
    horizontal = (ay == by) & (ax != bx)
    v_lo = np.minimum(ay, by)
    v_hi = np.maximum(ay, by)
    h_lo = np.minimum(ax, bx)
    h_hi = np.maximum(ax, bx)
    names = [name for name, _ in tagged]

    for entry in entries:
        region = entry.passage.region
        if entry.passage.flow is Axis.Y:
            # Vertical segments crossing the corridor: on a track
            # inside the closed x span, overlapping the y span with
            # positive length.
            mask = (
                vertical
                & (region.x0 <= ax)
                & (ax <= region.x1)
                & (v_lo < region.y1)
                & (region.y0 < v_hi)
            )
        else:
            mask = (
                horizontal
                & (region.y0 <= ay)
                & (ay <= region.y1)
                & (h_lo < region.x1)
                & (region.x0 < h_hi)
            )
        entry.nets.update(names[i] for i in np.flatnonzero(mask).tolist())
    return CongestionMap(entries)
