"""Escape-point successor generation — the heart of the line-search router.

"What is needed then is a method of detecting when a path collides
with a cell and a means for generating successors that: (1) extends
any path as far toward the goal as is feasible in x and y and (2) hugs
cells (obstacles) as they are encountered."

Both requirements reduce to: trace the four maximal clear rays from
the current point and decide where along each ray the path may stop
(each stop is a successor reachable by one straight wire segment).

Two stop policies are provided:

``FULL``
    Stop at every *escape coordinate* crossed by the clear ray — the
    edge coordinates of all cells and of the routing boundary, plus
    caller-supplied coordinates (goal and source alignments).  This
    lazily explores the full track graph, on which a minimal
    rectilinear obstacle-avoiding path always exists, so A* over it is
    admissible.  It is also the "leaves no stone unturned" form that
    the orthogonal-polygon extension requires.

``AGGRESSIVE``
    The literal reading of the paper's two rules: stop only at
    caller-supplied (goal-aligned) coordinates, at the farthest
    feasible reach, and at the corner coordinates of cells being
    hugged — the cell just collided with and any cell whose boundary
    passes through the current point.  Generates fewer nodes; the A1
    ablation quantifies the trade against ``FULL``.
"""

from __future__ import annotations

import enum
from typing import Iterable, Sequence

from repro.geometry.point import ALL_DIRECTIONS, Direction, Point
from repro.geometry.raytrace import ObstacleSet
from repro.geometry.rect import Rect


class EscapeMode(enum.Enum):
    """Successor-stop policy (see module docstring)."""

    FULL = "full"
    AGGRESSIVE = "aggressive"


def escape_moves(
    origin: Point,
    obstacles: ObstacleSet,
    *,
    mode: EscapeMode = EscapeMode.FULL,
    extra_xs: Sequence[int] = (),
    extra_ys: Sequence[int] = (),
) -> list[tuple[Point, Direction]]:
    """Successor points of *origin*, each reachable by one straight wire.

    Parameters
    ----------
    origin:
        Current search point (must be routable).
    obstacles:
        The ray-tracing view of the layout.
    mode:
        Stop policy.
    extra_xs, extra_ys:
        Additional stop coordinates — the goal/source/tree alignments
        supplied by the pathfinder so that goal-directed extension
        "as far toward the goal as is feasible" emerges from the same
        mechanism.

    Returns
    -------
    list of (successor point, direction of travel) pairs; deduplicated,
    in deterministic order.
    """
    moves: list[tuple[Point, Direction]] = []
    for direction in ALL_DIRECTIONS:
        hit = obstacles.first_hit(origin, direction)
        if hit.reach == origin:
            continue
        stops = _stops_for_ray(origin, direction, hit.reach, hit.obstacle, obstacles, mode,
                               extra_xs, extra_ys)
        # No cross-direction dedup is needed: east/west stops keep the
        # origin's y and differ from it in x, north/south keep x and
        # differ in y, and the origin itself is never a stop — so the
        # four rays cannot produce the same successor twice.
        origin_coord = origin.x if direction.is_horizontal else origin.y
        make = origin.with_x if direction.is_horizontal else origin.with_y
        for coord in stops:
            if coord != origin_coord:
                moves.append((make(coord), direction))
    return moves


def _stops_for_ray(
    origin: Point,
    direction: Direction,
    reach: Point,
    blocker: Rect | None,
    obstacles: ObstacleSet,
    mode: EscapeMode,
    extra_xs: Sequence[int],
    extra_ys: Sequence[int],
) -> list[int]:
    """Stop coordinates along one clear ray, always including the reach."""
    horizontal = direction.is_horizontal
    start = origin.x if horizontal else origin.y
    end = reach.x if horizontal else reach.y
    lo, hi = (start, end) if start < end else (end, start)
    extras = extra_xs if horizontal else extra_ys

    stops: set[int] = {end}
    if mode is EscapeMode.FULL:
        index = obstacles.edge_xs if horizontal else obstacles.edge_ys
        stops.update(index.between(lo, hi))
    else:
        hug_cells = obstacles.rects_touching(origin)
        if blocker is not None:
            hug_cells.append(blocker)
        for cell in hug_cells:
            for coord in (cell.x0, cell.x1) if horizontal else (cell.y0, cell.y1):
                if lo < coord < hi:
                    stops.add(coord)
    for coord in extras:
        if lo < coord < hi:
            stops.add(coord)
    return sorted(stops)


def hanan_coordinates(
    obstacles: ObstacleSet,
    extra_points: Iterable[Point] = (),
) -> tuple[list[int], list[int]]:
    """The full track-graph coordinate sets (for oracles and analysis).

    All distinct cell-edge and boundary coordinates plus those of
    *extra_points* (sources/targets).  The explicit graph over these
    coordinates is the reference a lazy escape search explores.
    """
    xs = set(obstacles.edge_xs)
    ys = set(obstacles.edge_ys)
    for p in extra_points:
        xs.add(p.x)
        ys.add(p.y)
    return sorted(xs), sorted(ys)
