"""Single-connection line-search A*.

:func:`find_path` routes one connection: from a set of source points
(all pins of the terminal being connected — multi-pin terminals are
just multiple start states) to a :class:`~repro.core.route.TargetSet`
(a destination terminal's pins, or the whole partial route tree).

The search state is a plain :class:`~repro.geometry.point.Point` —
"the space is the routing plane" — unless the cost model prices bends,
in which case states carry the arrival direction so that turning can
be charged exactly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional

import numpy as np

from repro.errors import UnroutableError
from repro.core.costs import CostModel, WirelengthCost
from repro.core.escape import EscapeMode, escape_moves
from repro.core.route import RoutePath, TargetSet
from repro.geometry.point import Direction, Point
from repro.geometry.raytrace import ObstacleSet
from repro.geometry.segment import Segment
from repro.search.engine import Order, SearchResult, search
from repro.search.problem import SearchProblem
from repro.search.stats import ExpansionTrace, SearchStats
from repro.search.vector import VectorSearchProblem, search_vectorized

#: Recognized search engines.  ``scalar`` is the conformance oracle;
#: ``vectorized`` batches successor pricing over numpy arrays;
#: ``native`` additionally runs the batch kernels under numba when it
#: is importable (and is otherwise identical to ``vectorized``).  All
#: three produce byte-identical routes — the parity suite pins it.
ENGINES = ("scalar", "vectorized", "native")

#: Largest flat key space (in states) the batched problem will mirror
#: into the engine's dense g array — 4M states is 32 MB of float64,
#: comfortably covering every corpus surface; anything larger uses the
#: generic dict-only path with identical results.
_DENSE_KEY_LIMIT = 1 << 22


@dataclass
class PathRequest:
    """Everything one connection search needs.

    Attributes
    ----------
    obstacles:
        Ray-tracing view of the layout (cells only, per independent
        net routing; baselines may have added wire obstacles).
    sources:
        Start points with initial costs (normally 0 each).
    targets:
        Goal points/segments.
    cost_model:
        Pricing of segments and bends; defaults to pure wirelength.
    mode:
        Escape-point stop policy.
    order:
        OPEN-list discipline; ``A_STAR`` is the paper's algorithm, the
        others exist for the strategy-comparison experiment.
    node_limit:
        Optional expansion budget.
    trace:
        Record expansion order for rendering.
    engine:
        Search engine (one of :data:`ENGINES`).  Non-scalar engines
        apply only where the batched problem is available (FULL escape
        mode, cost-ordered order, direction-insensitive batch-capable
        cost model); other searches silently use the scalar oracle,
        which is always result-identical anyway.
    """

    obstacles: ObstacleSet
    sources: list[tuple[Point, float]]
    targets: TargetSet
    cost_model: CostModel = field(default_factory=WirelengthCost)
    mode: EscapeMode = EscapeMode.FULL
    order: Order = Order.A_STAR
    node_limit: Optional[int] = None
    trace: bool = False
    engine: str = "scalar"


@dataclass
class PathSearchResult:
    """A found connection plus its search telemetry."""

    path: RoutePath
    stats: SearchStats
    trace: Optional[ExpansionTrace] = None


class _PointProblem(SearchProblem):
    """Escape search over bare points (direction-insensitive costs)."""

    def __init__(self, request: PathRequest, extra_xs: list[int], extra_ys: list[int]):
        self._req = request
        self._extra_xs = extra_xs
        self._extra_ys = extra_ys

    def start_states(self) -> Iterable[tuple[Point, float]]:
        return self._req.sources

    def is_goal(self, state: Point) -> bool:
        return self._req.targets.contains(state)

    def successors(self, state: Point) -> Iterable[tuple[Point, float]]:
        for succ, _direction in escape_moves(
            state,
            self._req.obstacles,
            mode=self._req.mode,
            extra_xs=self._extra_xs,
            extra_ys=self._extra_ys,
        ):
            yield succ, self._req.cost_model.segment_cost(Segment(state, succ))

    def heuristic(self, state: Point) -> float:
        return float(self._req.targets.distance_to(state))


DirectedState = tuple[Point, Optional[Direction]]


class _DirectedProblem(SearchProblem):
    """Escape search over (point, heading) states (bend-priced costs)."""

    def __init__(self, request: PathRequest, extra_xs: list[int], extra_ys: list[int]):
        self._req = request
        self._extra_xs = extra_xs
        self._extra_ys = extra_ys

    def start_states(self) -> Iterable[tuple[DirectedState, float]]:
        return [((point, None), g0) for point, g0 in self._req.sources]

    def is_goal(self, state: DirectedState) -> bool:
        return self._req.targets.contains(state[0])

    def successors(self, state: DirectedState) -> Iterable[tuple[DirectedState, float]]:
        point, heading = state
        model = self._req.cost_model
        for succ, direction in escape_moves(
            point,
            self._req.obstacles,
            mode=self._req.mode,
            extra_xs=self._extra_xs,
            extra_ys=self._extra_ys,
        ):
            cost = model.segment_cost(Segment(point, succ))
            if heading is not None and heading is not direction:
                cost += model.bend_cost(point, heading, direction)
            yield (succ, direction), cost

    def heuristic(self, state: DirectedState) -> float:
        return float(self._req.targets.distance_to(state[0]))


class _BatchedPointProblem(VectorSearchProblem):
    """FULL-mode escape search over bare ``(x, y)`` tuples, batched.

    One :meth:`expand` call prices a whole expansion: the four clear
    rays are traced through the shared (cached) ``first_hit`` exactly
    as in :func:`~repro.core.escape.escape_moves`, but the stop
    coordinates along each ray come from ``searchsorted`` slices of
    pre-snapshotted edge/extra columns, and segment costs plus the
    target-distance heuristic are evaluated per batch.  Successor
    order — EAST, WEST, NORTH, SOUTH, each ray's stops ascending — and
    every float match the scalar :class:`_PointProblem` bit for bit.

    States are plain int tuples rather than :class:`Point` objects;
    equality and hashing coincide, and :func:`find_path` converts back
    at the boundary.
    """

    def __init__(
        self,
        request: PathRequest,
        extra_xs: list[int],
        extra_ys: list[int],
        *,
        native: bool = False,
    ):
        self._req = request
        self._obstacles = request.obstacles
        self._model = request.cost_model
        self._targets = request.targets
        self._native = native
        # Stop coordinates are drawn from the union of edge and extra
        # columns; both are fixed for the whole search, so merge once
        # and slice per ray instead of deduplicating per ray.
        self._stops_x = np.union1d(
            request.obstacles.edge_xs.as_array(), np.asarray(extra_xs, dtype=np.int64)
        )
        self._stops_y = np.union1d(
            request.obstacles.edge_ys.as_array(), np.asarray(extra_ys, dtype=np.int64)
        )
        # Dense-key layout for the engine's batched g prefilter: every
        # reachable state lies inside the closed routing bound, so
        # (x, y) flattens to (x - x0) * stride + (y - y0).  Surfaces
        # large enough to make the flat array a memory concern fall
        # back to the generic dict-only path.
        bound = request.obstacles.bound
        self._key_stride = bound.y1 - bound.y0 + 1
        self._key_base_x = bound.x0
        self._key_base_y = bound.y0
        size = (bound.x1 - bound.x0 + 1) * self._key_stride
        self._dense = size if size <= _DENSE_KEY_LIMIT else None

    def start_states(self) -> list[tuple[tuple[int, int], float]]:
        return [((p.x, p.y), g0) for p, g0 in self._req.sources]

    def is_goal(self, state: tuple[int, int]) -> bool:
        return self._targets.contains_xy(state[0], state[1])

    def heuristic(self, state: tuple[int, int]) -> float:
        return float(self._targets.distance_to(Point(state[0], state[1])))

    @staticmethod
    def _axis_stops(origin: int, fwd_reach: int, back_reach: int, merged: np.ndarray) -> np.ndarray:
        """Stop coordinates of both rays on one axis, in one array.

        Forward (east/north) stops first — ascending, reach last —
        then backward (west/south) stops — reach first, then ascending.
        This is the exact successor order of ``escape_moves`` plus
        ``_stops_for_ray``: each ray contributes every merged
        edge/extra coordinate strictly inside its span (the
        open-interval ``searchsorted`` slice excludes both span ends,
        so the origin never appears) plus its reach, already sorted
        and distinct without any per-ray dedup.
        """
        searchsorted = merged.searchsorted
        if fwd_reach != origin:
            f0 = searchsorted(origin, side="right")
            f1 = searchsorted(fwd_reach, side="left")
            n_fwd = f1 - f0 + 1
        else:
            f0 = f1 = n_fwd = 0
        if back_reach != origin:
            b0 = searchsorted(back_reach, side="right")
            b1 = searchsorted(origin, side="left")
            n_back = b1 - b0 + 1
        else:
            b0 = b1 = n_back = 0
        out = np.empty(n_fwd + n_back, dtype=np.int64)
        if n_fwd:
            out[: n_fwd - 1] = merged[f0:f1]
            out[n_fwd - 1] = fwd_reach
        if n_back:
            out[n_fwd] = back_reach
            out[n_fwd + 1:] = merged[b0:b1]
        return out

    def _rays(self, x: int, y: int) -> tuple[np.ndarray, np.ndarray]:
        """Stop columns (``hx``) and rows (``vy``) of the four rays."""
        east, west, north, south = self._obstacles.reaches(x, y)
        return (
            self._axis_stops(x, east, west, self._stops_x),
            self._axis_stops(y, north, south, self._stops_y),
        )

    def expand(
        self, state: tuple[int, int], with_h: bool
    ) -> tuple[list[tuple[int, int]], np.ndarray, Optional[np.ndarray]]:
        x, y = state
        hx, vy = self._rays(x, y)
        native = self._native
        states = [(cx, y) for cx in hx.tolist()]
        states.extend((x, cy) for cy in vy.tolist())
        costs = self._model.expansion_costs(x, y, hx, vy, native=native)
        if not with_h:
            return states, costs, None
        hs = self._targets.distances_expansion(hx, y, vy, x, native=native)
        return states, costs, hs

    def dense_size(self) -> Optional[int]:
        return self._dense

    def dense_key(self, state: tuple[int, int]) -> int:
        return (state[0] - self._key_base_x) * self._key_stride + (
            state[1] - self._key_base_y
        )

    def expand_dense(self, state: tuple[int, int]) -> tuple[np.ndarray, np.ndarray]:
        x, y = state
        hx, vy = self._rays(x, y)
        stride = self._key_stride
        nh = hx.shape[0]
        keys = np.empty(nh + vy.shape[0], dtype=np.int64)
        np.multiply(hx, stride, out=keys[:nh])
        keys[:nh] += y - self._key_base_y - self._key_base_x * stride
        keys[nh:] = vy
        keys[nh:] += (x - self._key_base_x) * stride - self._key_base_y
        costs = self._model.expansion_costs(x, y, hx, vy, native=self._native)
        self._last_batch = (x, y, hx, vy, nh)
        return keys, costs

    def dense_winners(
        self, winners: np.ndarray, with_h: bool
    ) -> tuple[list[tuple[int, int]], Optional[np.ndarray]]:
        x, y, hx, vy, nh = self._last_batch
        split = int(winners.searchsorted(nh))
        hx_w = hx[winners[:split]]
        vy_w = vy[winners[split:] - nh]
        states = [(cx, y) for cx in hx_w.tolist()]
        states.extend((x, cy) for cy in vy_w.tolist())
        if not with_h:
            return states, None
        # Per-point distances: each batch column is an independent
        # min-over-targets, so the subset evaluates bit-identically to
        # slicing the full batch.
        hs = self._targets.distances_expansion(hx_w, y, vy_w, x, native=self._native)
        return states, hs


def _use_batched_engine(request: PathRequest) -> bool:
    """Whether the non-scalar engines can serve *request*.

    The batched problem covers the paper's primary configuration: FULL
    escape mode, a cost-ordered OPEN list, and a direction-insensitive
    cost model that prices batches bit-identically.  Everything else
    (AGGRESSIVE mode, blind orders, bend-priced models, unknown cost
    subclasses) falls back to the scalar oracle — results are
    identical by construction, only the wall clock differs.
    """
    return (
        request.engine != "scalar"
        and request.mode is EscapeMode.FULL
        and request.order.is_cost_ordered
        and not request.cost_model.direction_sensitive
        and request.cost_model.supports_batched_costs
    )


def find_path(request: PathRequest) -> PathSearchResult:
    """Route one connection.

    Returns the found path with its telemetry, or raises
    :class:`UnroutableError` (carrying the final
    :class:`~repro.search.stats.SearchStats` as ``partial``) when the
    search exhausts or hits its node limit without reaching a target.
    """
    _check_endpoints(request)

    # Source already touching a target: zero-length connection.
    for point, g0 in request.sources:
        if request.targets.contains(point):
            return PathSearchResult(RoutePath((point,), cost=g0), SearchStats(termination="goal"))

    extra_xs = sorted(request.targets.escape_xs() | {p.x for p, _ in request.sources})
    extra_ys = sorted(request.targets.escape_ys() | {p.y for p, _ in request.sources})

    batched = _use_batched_engine(request)

    # Ray-cache traffic attributable to this search: delta of the
    # obstacle set's counters around the search (the set is shared
    # across connections, so absolute values span many searches).
    obstacles = request.obstacles
    hits_before = obstacles.ray_cache_hits
    misses_before = obstacles.ray_cache_misses
    result: SearchResult
    if batched:
        vproblem = _BatchedPointProblem(
            request, extra_xs, extra_ys, native=request.engine == "native"
        )
        result = search_vectorized(
            vproblem,
            request.order,
            node_limit=request.node_limit,
            trace=request.trace,
        )
    else:
        problem: SearchProblem
        if request.cost_model.direction_sensitive:
            problem = _DirectedProblem(request, extra_xs, extra_ys)
        else:
            problem = _PointProblem(request, extra_xs, extra_ys)
        result = search(
            problem,
            request.order,
            node_limit=request.node_limit,
            trace=request.trace,
        )
    result.stats.cache_hits = obstacles.ray_cache_hits - hits_before
    result.stats.cache_misses = obstacles.ray_cache_misses - misses_before
    if not result.found:
        raise UnroutableError(
            f"no route from {[str(p) for p, _ in request.sources]} to "
            f"{len(request.targets)} target(s) "
            f"(termination: {result.stats.termination})",
            partial=result.stats,
        )

    raw_states = result.path
    if batched:
        points = [Point(sx, sy) for sx, sy in raw_states]
    elif request.cost_model.direction_sensitive:
        points = [state[0] for state in raw_states]
    else:
        points = list(raw_states)
    path = RoutePath(tuple(_compress_collinear(points)), cost=result.cost)
    if batched:
        trace = _point_trace(result.trace)
    else:
        trace = _strip_trace(result.trace, request.cost_model.direction_sensitive)
    return PathSearchResult(path, result.stats, trace)


def _check_endpoints(request: PathRequest) -> None:
    """Fail fast on illegal endpoints with a precise message."""
    if not request.sources:
        raise UnroutableError("no source points given")
    for point, g0 in request.sources:
        if g0 < 0:
            raise UnroutableError(f"negative initial cost {g0} at source {point}")
        if not request.obstacles.point_free(point):
            raise UnroutableError(f"source {point} is not routable (inside a cell or outside)")
    for point in request.targets.points:
        if not request.obstacles.point_free(point):
            raise UnroutableError(f"target {point} is not routable (inside a cell or outside)")


def _compress_collinear(points: list[Point]) -> list[Point]:
    """Drop interior points that do not change direction."""
    if len(points) <= 2:
        return points
    compressed = [points[0]]
    for prev, here, nxt in zip(points, points[1:], points[2:]):
        straight_x = prev.x == here.x == nxt.x
        straight_y = prev.y == here.y == nxt.y
        if not (straight_x or straight_y):
            compressed.append(here)
    compressed.append(points[-1])
    return compressed


def _strip_trace(
    trace: Optional[ExpansionTrace], directed: bool
) -> Optional[ExpansionTrace]:
    """Reduce directed-state traces to point traces for rendering."""
    if trace is None or not directed:
        return trace
    stripped = ExpansionTrace()
    for state, parent in trace.entries:
        stripped.record(state[0], parent[0] if parent is not None else None)
    return stripped


def _point_trace(trace: Optional[ExpansionTrace]) -> Optional[ExpansionTrace]:
    """Convert the batched engine's tuple-state trace to points."""
    if trace is None:
        return trace
    converted = ExpansionTrace()
    for state, parent in trace.entries:
        converted.record(
            Point(state[0], state[1]),
            Point(parent[0], parent[1]) if parent is not None else None,
        )
    return converted
