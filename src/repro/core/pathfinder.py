"""Single-connection line-search A*.

:func:`find_path` routes one connection: from a set of source points
(all pins of the terminal being connected — multi-pin terminals are
just multiple start states) to a :class:`~repro.core.route.TargetSet`
(a destination terminal's pins, or the whole partial route tree).

The search state is a plain :class:`~repro.geometry.point.Point` —
"the space is the routing plane" — unless the cost model prices bends,
in which case states carry the arrival direction so that turning can
be charged exactly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional

from repro.errors import UnroutableError
from repro.core.costs import CostModel, WirelengthCost
from repro.core.escape import EscapeMode, escape_moves
from repro.core.route import RoutePath, TargetSet
from repro.geometry.point import Direction, Point
from repro.geometry.raytrace import ObstacleSet
from repro.geometry.segment import Segment
from repro.search.engine import Order, SearchResult, search
from repro.search.problem import SearchProblem
from repro.search.stats import ExpansionTrace, SearchStats


@dataclass
class PathRequest:
    """Everything one connection search needs.

    Attributes
    ----------
    obstacles:
        Ray-tracing view of the layout (cells only, per independent
        net routing; baselines may have added wire obstacles).
    sources:
        Start points with initial costs (normally 0 each).
    targets:
        Goal points/segments.
    cost_model:
        Pricing of segments and bends; defaults to pure wirelength.
    mode:
        Escape-point stop policy.
    order:
        OPEN-list discipline; ``A_STAR`` is the paper's algorithm, the
        others exist for the strategy-comparison experiment.
    node_limit:
        Optional expansion budget.
    trace:
        Record expansion order for rendering.
    """

    obstacles: ObstacleSet
    sources: list[tuple[Point, float]]
    targets: TargetSet
    cost_model: CostModel = field(default_factory=WirelengthCost)
    mode: EscapeMode = EscapeMode.FULL
    order: Order = Order.A_STAR
    node_limit: Optional[int] = None
    trace: bool = False


@dataclass
class PathSearchResult:
    """A found connection plus its search telemetry."""

    path: RoutePath
    stats: SearchStats
    trace: Optional[ExpansionTrace] = None


class _PointProblem(SearchProblem):
    """Escape search over bare points (direction-insensitive costs)."""

    def __init__(self, request: PathRequest, extra_xs: list[int], extra_ys: list[int]):
        self._req = request
        self._extra_xs = extra_xs
        self._extra_ys = extra_ys

    def start_states(self) -> Iterable[tuple[Point, float]]:
        return self._req.sources

    def is_goal(self, state: Point) -> bool:
        return self._req.targets.contains(state)

    def successors(self, state: Point) -> Iterable[tuple[Point, float]]:
        for succ, _direction in escape_moves(
            state,
            self._req.obstacles,
            mode=self._req.mode,
            extra_xs=self._extra_xs,
            extra_ys=self._extra_ys,
        ):
            yield succ, self._req.cost_model.segment_cost(Segment(state, succ))

    def heuristic(self, state: Point) -> float:
        return float(self._req.targets.distance_to(state))


DirectedState = tuple[Point, Optional[Direction]]


class _DirectedProblem(SearchProblem):
    """Escape search over (point, heading) states (bend-priced costs)."""

    def __init__(self, request: PathRequest, extra_xs: list[int], extra_ys: list[int]):
        self._req = request
        self._extra_xs = extra_xs
        self._extra_ys = extra_ys

    def start_states(self) -> Iterable[tuple[DirectedState, float]]:
        return [((point, None), g0) for point, g0 in self._req.sources]

    def is_goal(self, state: DirectedState) -> bool:
        return self._req.targets.contains(state[0])

    def successors(self, state: DirectedState) -> Iterable[tuple[DirectedState, float]]:
        point, heading = state
        model = self._req.cost_model
        for succ, direction in escape_moves(
            point,
            self._req.obstacles,
            mode=self._req.mode,
            extra_xs=self._extra_xs,
            extra_ys=self._extra_ys,
        ):
            cost = model.segment_cost(Segment(point, succ))
            if heading is not None and heading is not direction:
                cost += model.bend_cost(point, heading, direction)
            yield (succ, direction), cost

    def heuristic(self, state: DirectedState) -> float:
        return float(self._req.targets.distance_to(state[0]))


def find_path(request: PathRequest) -> PathSearchResult:
    """Route one connection.

    Returns the found path with its telemetry, or raises
    :class:`UnroutableError` (carrying the final
    :class:`~repro.search.stats.SearchStats` as ``partial``) when the
    search exhausts or hits its node limit without reaching a target.
    """
    _check_endpoints(request)

    # Source already touching a target: zero-length connection.
    for point, g0 in request.sources:
        if request.targets.contains(point):
            return PathSearchResult(RoutePath((point,), cost=g0), SearchStats(termination="goal"))

    extra_xs = sorted(request.targets.escape_xs() | {p.x for p, _ in request.sources})
    extra_ys = sorted(request.targets.escape_ys() | {p.y for p, _ in request.sources})

    problem: SearchProblem
    if request.cost_model.direction_sensitive:
        problem = _DirectedProblem(request, extra_xs, extra_ys)
    else:
        problem = _PointProblem(request, extra_xs, extra_ys)

    # Ray-cache traffic attributable to this search: delta of the
    # obstacle set's counters around the search (the set is shared
    # across connections, so absolute values span many searches).
    obstacles = request.obstacles
    hits_before = obstacles.ray_cache_hits
    misses_before = obstacles.ray_cache_misses
    result: SearchResult = search(
        problem,
        request.order,
        node_limit=request.node_limit,
        trace=request.trace,
    )
    result.stats.cache_hits = obstacles.ray_cache_hits - hits_before
    result.stats.cache_misses = obstacles.ray_cache_misses - misses_before
    if not result.found:
        raise UnroutableError(
            f"no route from {[str(p) for p, _ in request.sources]} to "
            f"{len(request.targets)} target(s) "
            f"(termination: {result.stats.termination})",
            partial=result.stats,
        )

    raw_states = result.path
    if request.cost_model.direction_sensitive:
        points = [state[0] for state in raw_states]
    else:
        points = list(raw_states)
    path = RoutePath(tuple(_compress_collinear(points)), cost=result.cost)
    trace = _strip_trace(result.trace, request.cost_model.direction_sensitive)
    return PathSearchResult(path, result.stats, trace)


def _check_endpoints(request: PathRequest) -> None:
    """Fail fast on illegal endpoints with a precise message."""
    if not request.sources:
        raise UnroutableError("no source points given")
    for point, g0 in request.sources:
        if g0 < 0:
            raise UnroutableError(f"negative initial cost {g0} at source {point}")
        if not request.obstacles.point_free(point):
            raise UnroutableError(f"source {point} is not routable (inside a cell or outside)")
    for point in request.targets.points:
        if not request.obstacles.point_free(point):
            raise UnroutableError(f"target {point} is not routable (inside a cell or outside)")


def _compress_collinear(points: list[Point]) -> list[Point]:
    """Drop interior points that do not change direction."""
    if len(points) <= 2:
        return points
    compressed = [points[0]]
    for prev, here, nxt in zip(points, points[1:], points[2:]):
        straight_x = prev.x == here.x == nxt.x
        straight_y = prev.y == here.y == nxt.y
        if not (straight_x or straight_y):
            compressed.append(here)
    compressed.append(points[-1])
    return compressed


def _strip_trace(
    trace: Optional[ExpansionTrace], directed: bool
) -> Optional[ExpansionTrace]:
    """Reduce directed-state traces to point traces for rendering."""
    if trace is None or not directed:
        return trace
    stripped = ExpansionTrace()
    for state, parent in trace.entries:
        stripped.record(state[0], parent[0] if parent is not None else None)
    return stripped
