"""Delay analysis and timing-driven negotiated routing.

The negotiated loop (:mod:`repro.core.negotiate`) optimizes overflow
then wirelength, which happily trades a long detour on a chip-spanning
net for a short one on a local net.  For timing that trade is exactly
backwards: the chip-spanning net is the critical path.  This module
adds the standard fix (cgra_pnr's timing-driven router is the direct
reference): a cheap delay model over the routed trees, a per-net
*criticality* in ``[0, 1]``, and a negotiation loop that re-prices and
re-orders every wave so critical nets stay short while non-critical
nets absorb the detours.

The delay model is deliberately simple — Elmore-flavoured, not Elmore:
a net's delay is its longest source→sink path length *along the routed
tree*, plus ``load_factor`` times the total tree wirelength (the
driver sees the whole tree as load).  That is enough to make "which
net may detour" a principled choice without modelling RC at all.
"""

from __future__ import annotations

import dataclasses
import heapq
import time
from dataclasses import dataclass, field
from typing import Iterable, Optional, Sequence

from repro.errors import RoutingError
from repro.core.congestion import (
    CongestionHistory,
    CongestionMap,
    find_passages,
    measure_congestion,
)
from repro.core.costs import CostModel, TimingDrivenCost
from repro.core.negotiate import IterationStats
from repro.core.route import GlobalRoute, RouteTree
from repro.core.router import GlobalRouter, RouterConfig
from repro.layout.layout import Layout
from repro.layout.net import Net
from repro.search.stats import SearchStats


@dataclass(frozen=True)
class TimingConfig:
    """Knobs of the timing-driven negotiation loop.

    The congestion knobs (``max_iterations`` .. ``max_gap``) mean
    exactly what they mean in
    :class:`~repro.core.negotiate.NegotiationConfig`; the last three
    are timing-specific.

    Attributes
    ----------
    delay_weight:
        Per-unit-length delay surcharge a fully critical net pays
        (:class:`~repro.core.costs.TimingDrivenCost`); 0 reduces the
        blend to criticality-scaled congestion only.
    load_factor:
        Extra delay per unit of *total tree* wirelength added to every
        sink (the driver loading term).  0 makes delay the pure longest
        source→sink path length.
    target_delay:
        Delay target that per-net slack is measured against.  ``None``
        uses the worst observed delay, so the most critical net has
        exactly zero slack.
    """

    max_iterations: int = 20
    present_weight: float = 1.0
    history_weight: float = 2.0
    history_gain: float = 2.0
    max_gap: Optional[int] = None
    delay_weight: float = 0.5
    load_factor: float = 0.0
    target_delay: Optional[float] = None

    def __post_init__(self) -> None:
        if self.max_iterations < 1:
            raise RoutingError(
                f"timing negotiation needs max_iterations >= 1, got {self.max_iterations}"
            )
        for knob in (
            "present_weight",
            "history_weight",
            "history_gain",
            "delay_weight",
            "load_factor",
        ):
            value = getattr(self, knob)
            if value < 0:
                raise RoutingError(f"timing {knob} must be >= 0, got {value}")
        if self.target_delay is not None and self.target_delay < 0:
            raise RoutingError(
                f"timing target_delay must be >= 0, got {self.target_delay}"
            )

    @classmethod
    def from_params(cls, params: dict) -> "TimingConfig":
        """Build a config from a plain keyword dict, rejecting unknown keys."""
        known = {f.name for f in dataclasses.fields(cls)}
        unknown = sorted(set(params) - known)
        if unknown:
            raise RoutingError(
                f"unknown timing parameter(s) {unknown}; known: {sorted(known)}"
            )
        return cls(**params)


@dataclass(frozen=True)
class NetTiming:
    """One net's delay picture under the current routing."""

    net_name: str
    delay: float
    criticality: float
    slack: float

    def as_dict(self) -> dict:
        """JSON-ready representation (used by :mod:`repro.api.result`)."""
        return {
            "delay": self.delay,
            "criticality": self.criticality,
            "slack": self.slack,
        }

    @classmethod
    def from_dict(cls, net_name: str, data: dict) -> "NetTiming":
        """Inverse of :meth:`as_dict`."""
        return cls(
            net_name=net_name,
            delay=float(data["delay"]),
            criticality=float(data["criticality"]),
            slack=float(data["slack"]),
        )


@dataclass
class TimingAnalysis:
    """Per-net delays, criticalities, and slacks for one routing."""

    nets: dict[str, NetTiming] = field(default_factory=dict)
    worst_delay: float = 0.0
    target: float = 0.0

    @property
    def worst_net(self) -> Optional[str]:
        """Name of the net carrying the worst delay (``None`` if empty)."""
        if not self.nets:
            return None
        return min(
            self.nets, key=lambda name: (-self.nets[name].delay, name)
        )

    def criticality(self, net_name: str) -> float:
        """Criticality of *net_name* (0 for unrouted/unknown nets)."""
        timing = self.nets.get(net_name)
        return timing.criticality if timing is not None else 0.0

    def order_by_criticality(self, net_names: Iterable[str]) -> list[str]:
        """*net_names* sorted most-critical-first (name breaks ties).

        A permutation of the input: the rip-up loop routes critical
        nets before the congestion map fills with everyone else's
        detours.
        """
        return sorted(net_names, key=lambda name: (-self.criticality(name), name))

    def as_dict(self) -> dict:
        """JSON-ready representation."""
        return {
            "worst_delay": self.worst_delay,
            "target": self.target,
            "nets": {name: timing.as_dict() for name, timing in sorted(self.nets.items())},
        }

    @classmethod
    def from_dict(cls, data: dict) -> "TimingAnalysis":
        """Inverse of :meth:`as_dict`."""
        return cls(
            nets={
                name: NetTiming.from_dict(name, timing)
                for name, timing in data.get("nets", {}).items()
            },
            worst_delay=float(data["worst_delay"]),
            target=float(data["target"]),
        )


def _tree_distances(tree: RouteTree, sources: Sequence) -> Optional[dict]:
    """Shortest along-tree distance from any *source* pin location.

    Builds the tree's connectivity graph — every segment split at every
    path point and pin location lying on it — and runs a multi-source
    Dijkstra.  Returns ``{(x, y): distance}`` for every graph node, or
    ``None`` when no source lies on the tree (degenerate geometry).
    """
    key_points = {(p.x, p.y) for p in tree.points}
    key_points.update((p.x, p.y) for p in sources)
    segments = tree.segments
    if not segments:
        # Every connection was zero-length: all terminals coincide.
        on_tree = [(p.x, p.y) for p in sources if (p.x, p.y) in key_points]
        return {xy: 0 for xy in key_points} if on_tree else None

    adjacency: dict[tuple, list] = {}

    def link(a: tuple, b: tuple, dist: int) -> None:
        adjacency.setdefault(a, []).append((b, dist))
        adjacency.setdefault(b, []).append((a, dist))

    for seg in segments:
        a, b = seg.a, seg.b  # normalized: a <= b
        if seg.is_horizontal:
            stops = sorted(
                {x for x, y in key_points if y == a.y and a.x <= x <= b.x}
                | {a.x, b.x}
            )
            for lo, hi in zip(stops, stops[1:]):
                link((lo, a.y), (hi, a.y), hi - lo)
        else:
            stops = sorted(
                {y for x, y in key_points if x == a.x and a.y <= y <= b.y}
                | {a.y, b.y}
            )
            for lo, hi in zip(stops, stops[1:]):
                link((a.x, lo), (a.x, hi), hi - lo)

    starts = [(p.x, p.y) for p in sources if (p.x, p.y) in adjacency]
    if not starts:
        return None
    distances: dict[tuple, int] = {}
    frontier = [(0, xy) for xy in sorted(set(starts))]
    heapq.heapify(frontier)
    while frontier:
        dist, xy = heapq.heappop(frontier)
        if xy in distances:
            continue
        distances[xy] = dist
        for neighbor, step in adjacency[xy]:
            if neighbor not in distances:
                heapq.heappush(frontier, (dist + step, neighbor))
    return distances


def net_delay(tree: RouteTree, net: Net, *, load_factor: float = 0.0) -> float:
    """Delay of one routed net under the path-length model.

    Longest source→sink distance measured *along the routed tree* (the
    source is the net's first terminal, matching the router's seed),
    plus ``load_factor`` times the total tree wirelength.  Unreachable
    geometry (a tree the source does not touch — should not happen for
    router output) falls back to the total wirelength bound.
    """
    sources = [pin.location for pin in net.terminals[0].pins]
    total = tree.total_length
    distances = _tree_distances(tree, sources)
    if distances is None:
        return float(total) + load_factor * total
    longest = 0
    for terminal in net.terminals[1:]:
        reached = [
            distances[(pin.location.x, pin.location.y)]
            for pin in terminal.pins
            if (pin.location.x, pin.location.y) in distances
        ]
        # An unconnected sink pin set (not router output) costs the
        # conservative whole-tree bound.
        arrival = min(reached) if reached else total
        if arrival > longest:
            longest = arrival
    return float(longest) + load_factor * total


def analyze_route_timing(
    route: GlobalRoute,
    layout: Layout,
    *,
    load_factor: float = 0.0,
    target_delay: Optional[float] = None,
) -> TimingAnalysis:
    """Delay, criticality, and slack for every routed net.

    Criticality is ``delay / worst_delay`` clamped to ``[0, 1]`` (all
    zero when nothing has any delay); slack is measured against
    *target_delay*, defaulting to the worst observed delay.
    """
    delays: dict[str, float] = {}
    for net in layout.nets:
        tree = route.trees.get(net.name)
        if tree is None:
            continue
        delays[net.name] = net_delay(tree, net, load_factor=load_factor)
    worst = max(delays.values(), default=0.0)
    target = float(target_delay) if target_delay is not None else worst
    nets = {
        name: NetTiming(
            net_name=name,
            delay=delay,
            criticality=min(1.0, max(0.0, delay / worst)) if worst > 0 else 0.0,
            slack=target - delay,
        )
        for name, delay in delays.items()
    }
    return TimingAnalysis(nets=nets, worst_delay=worst, target=target)


@dataclass
class TimingResult:
    """Outcome of timing-driven negotiation.

    Same shape as :class:`~repro.core.negotiate.NegotiationResult`
    plus the final route's :class:`TimingAnalysis`; ``search_stats``
    again totals the whole run (every wave, not just up to the best
    iteration).
    """

    first: GlobalRoute
    final: GlobalRoute
    congestion_before: CongestionMap
    congestion_after: CongestionMap
    timing: TimingAnalysis = field(default_factory=TimingAnalysis)
    iterations: list[IterationStats] = field(default_factory=list)
    rerouted_nets: list[str] = field(default_factory=list)
    converged: bool = False
    search_stats: SearchStats = field(default_factory=SearchStats)

    @property
    def iteration_count(self) -> int:
        """Reroute waves actually run (excludes the first pass)."""
        return max(0, len(self.iterations) - 1)


class TimingDrivenRouter:
    """Criticality-aware negotiated routing of one layout.

    The loop mirrors :class:`~repro.core.negotiate.NegotiatedRouter`
    with three timing twists, all recomputed per wave:

    1. After every pass the routed trees are re-analyzed
       (:func:`analyze_route_timing`) — criticalities always reflect
       the *current* geometry.
    2. Each wave routes its affected nets most-critical-first, every
       net under its own frozen
       :class:`~repro.core.costs.TimingDrivenCost` carrying that net's
       criticality.  (Congestion terms stay frozen for the wave, so
       the ordering only matters across waves, like the negotiated
       loop.)
    3. The best route is the lexicographically least
       ``(total_overflow, worst_delay, wirelength)`` — delay outranks
       wirelength, which is the whole point.
    """

    def __init__(
        self,
        layout: Optional[Layout] = None,
        config: RouterConfig = RouterConfig(),
        *,
        cost_model: Optional[CostModel] = None,
        timing: Optional[TimingConfig] = None,
        router: Optional[GlobalRouter] = None,
    ):
        if (layout is None) == (router is None):
            raise RoutingError("provide exactly one of layout or router")
        self.router = (
            router
            if router is not None
            else GlobalRouter(layout, config, cost_model=cost_model)
        )
        self.timing = timing if timing is not None else TimingConfig()

    @classmethod
    def from_router(
        cls, router: GlobalRouter, *, timing: Optional[TimingConfig] = None
    ) -> "TimingDrivenRouter":
        """Wrap an existing configured router."""
        return cls(router=router, timing=timing)

    @property
    def layout(self) -> Layout:
        """The layout being routed."""
        return self.router.layout

    def analyze(self, route: GlobalRoute) -> TimingAnalysis:
        """:func:`analyze_route_timing` under this loop's knobs."""
        return analyze_route_timing(
            route,
            self.layout,
            load_factor=self.timing.load_factor,
            target_delay=self.timing.target_delay,
        )

    def run(self, *, on_unroutable: str = "raise") -> TimingResult:
        """Negotiate until congestion-free or out of budget."""
        if on_unroutable not in ("raise", "skip"):
            raise RoutingError(
                f"on_unroutable must be 'raise' or 'skip', not {on_unroutable!r}"
            )
        # The first (unpenalized) pass can fan out over a pool; the
        # waves route net-by-net (each net has its own cost model) and
        # stay serial regardless of workers, so results never depend
        # on the worker count.
        pool = self.router.open_pool()
        try:
            return self._run(on_unroutable, pool)
        finally:
            if pool is not None:
                pool.close()

    def _run(self, on_unroutable: str, pool) -> TimingResult:
        """The timing negotiation loop proper."""
        knobs = self.timing
        passages = find_passages(self.layout, max_gap=knobs.max_gap)
        history = CongestionHistory(gain=knobs.history_gain)

        started = time.perf_counter()
        first = self.router.route_all(on_unroutable=on_unroutable, pool=pool)
        before = measure_congestion(passages, first)
        analysis = self.analyze(first)
        iterations = [
            IterationStats(
                iteration=0,
                overflowed_passages=before.overflow_count,
                total_overflow=before.total_overflow,
                max_overflow=before.max_overflow,
                wirelength=first.total_length,
                wirelength_delta=0,
                rerouted=0,
                elapsed_seconds=time.perf_counter() - started,
            )
        ]

        current, current_map = first, before
        best, best_map, best_analysis = first, before, analysis
        rerouted: set[str] = set()
        prune = self.router.config.prune_clean_nets
        fail_fast = on_unroutable == "raise"
        for iteration in range(1, knobs.max_iterations + 1):
            if current_map.total_overflow == 0:
                break
            wave_started = time.perf_counter()
            history.update(current_map)
            terms = history.penalty_terms(current_map)
            if prune:
                affected = sorted(current_map.affected_nets())
            else:
                affected = sorted(current.trees)
            candidate = GlobalRoute(
                trees=dict(current.trees),
                stats=current.stats,
                failed_nets=list(current.failed_nets),
            )
            moved = 0
            for name in analysis.order_by_criticality(affected):
                model = TimingDrivenCost(
                    terms,
                    criticality=analysis.criticality(name),
                    delay_weight=knobs.delay_weight,
                    present_weight=knobs.present_weight,
                    history_weight=knobs.history_weight,
                    base=self.router.cost_model,
                )
                outcomes = self.router.route_each(
                    [name], cost_model=model, fail_fast=fail_fast
                )
                moved += self.router.merge_outcomes(
                    candidate,
                    outcomes,
                    on_unroutable=on_unroutable,
                    keep_previous=True,
                    rerouted=rerouted,
                )
            candidate_map = measure_congestion(passages, candidate)
            candidate_analysis = self.analyze(candidate)
            iterations.append(
                IterationStats(
                    iteration=iteration,
                    overflowed_passages=candidate_map.overflow_count,
                    total_overflow=candidate_map.total_overflow,
                    max_overflow=candidate_map.max_overflow,
                    wirelength=candidate.total_length,
                    wirelength_delta=candidate.total_length - current.total_length,
                    rerouted=moved,
                    elapsed_seconds=time.perf_counter() - wave_started,
                )
            )
            current, current_map, analysis = (
                candidate,
                candidate_map,
                candidate_analysis,
            )
            if (
                candidate_map.total_overflow,
                candidate_analysis.worst_delay,
                candidate.total_length,
            ) < (best_map.total_overflow, best_analysis.worst_delay, best.total_length):
                best, best_map, best_analysis = (
                    candidate,
                    candidate_map,
                    candidate_analysis,
                )

        return TimingResult(
            first=first,
            final=best,
            congestion_before=before,
            congestion_after=best_map,
            timing=best_analysis,
            iterations=iterations,
            rerouted_nets=sorted(rerouted),
            converged=best_map.total_overflow == 0,
            search_stats=current.stats,
        )
