"""Generalized cost functions.

"Because of the generality of the A* algorithm, the heuristic cost
function can be used to favor certain classes of routes over others."

A :class:`CostModel` prices the two things a rectilinear route is made
of: straight segments and the bends between them.  Every model must
dominate pure wirelength from below — i.e. ``segment_cost >= length``
and ``bend_cost >= 0`` — so the rectilinear-distance heuristic remains
a lower bound and A* stays admissible.

Models that price bends need to know the incoming direction at each
search state, which the pathfinder supports by switching to
direction-tagged states; they declare ``direction_sensitive = True``.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.errors import RoutingError
from repro.geometry.point import Direction, Point
from repro.geometry.raytrace import ObstacleSet
from repro.geometry.rect import Rect
from repro.geometry.segment import Segment
from repro.search import native as native_kernels


class CostModel:
    """Base model: cost is exactly rectilinear wirelength.

    Subclasses override :meth:`segment_cost` and/or :meth:`bend_cost`.
    """

    #: Whether the pathfinder must track arrival directions so that
    #: :meth:`bend_cost` can be charged.
    direction_sensitive: bool = False

    def segment_cost(self, seg: Segment) -> float:
        """Cost of routing a wire along *seg*.  Must be >= ``seg.length``."""
        return float(seg.length)

    def bend_cost(self, at: Point, incoming: Direction, outgoing: Direction) -> float:
        """Extra cost for turning at *at*.  Must be >= 0."""
        return 0.0

    @property
    def supports_batched_costs(self) -> bool:
        """Whether :meth:`segment_costs_from` prices exactly like
        :meth:`segment_cost`.

        Only models that are known (and tested) to produce bit-identical
        batched costs opt in; unknown subclasses default to ``False`` so
        the vectorized engine falls back to the scalar oracle rather
        than silently mispricing an overridden :meth:`segment_cost`.
        """
        return type(self) in (CostModel, WirelengthCost)

    def segment_costs_from(
        self, x: int, y: int, coords: np.ndarray, horizontal: bool, *, native: bool = False
    ) -> np.ndarray:
        """Batched :meth:`segment_cost` for same-axis segments.

        Successor ``j`` is the segment from ``(x, y)`` to
        ``(coords[j], y)`` when *horizontal*, else to ``(x, coords[j])``.
        Returns a fresh float64 array; values equal the scalar method's
        exactly (int64 length cast to float64).
        """
        origin = x if horizontal else y
        return np.abs(coords - origin).astype(np.float64)

    def expansion_costs(
        self, x: int, y: int, hx: np.ndarray, vy: np.ndarray, *, native: bool = False
    ) -> np.ndarray:
        """Both axes of one expansion priced into a single array.

        The fused form of two :meth:`segment_costs_from` calls —
        horizontal successors ``(hx[j], y)`` first, then vertical
        successors ``(x, vy[j])`` — writing straight into one float64
        output.  Values are identical to the per-axis calls (integer
        coordinates are exact in float64, so casting before or after
        the subtraction cannot change them); only the call count and
        allocations shrink, which is what the small per-expansion
        batches are dominated by.
        """
        nh = hx.shape[0]
        out = np.empty(nh + vy.shape[0], dtype=np.float64)
        if nh:
            head = out[:nh]
            head[...] = hx
            np.subtract(head, x, out=head)
            np.abs(head, out=head)
        if vy.shape[0]:
            tail = out[nh:]
            tail[...] = vy
            np.subtract(tail, y, out=tail)
            np.abs(tail, out=tail)
        return out


class WirelengthCost(CostModel):
    """Explicit name for the default minimal-length objective."""


class BendPenaltyCost(CostModel):
    """Charge a fixed penalty per corner.

    Corners become vias after layer assignment, so this is the "other
    heuristics [are] easily implemented" knob for via minimization.
    The penalty may be any non-negative number; fractional values
    (< 1 database unit) act purely as tie-breakers among equal-length
    routes.
    """

    direction_sensitive = True

    def __init__(self, penalty: float = 0.25, base: Optional[CostModel] = None):
        if penalty < 0:
            raise RoutingError(f"bend penalty must be >= 0, got {penalty}")
        self.penalty = penalty
        self.base = base or CostModel()
        self.direction_sensitive = True

    def segment_cost(self, seg: Segment) -> float:
        return self.base.segment_cost(seg)

    def bend_cost(self, at: Point, incoming: Direction, outgoing: Direction) -> float:
        inherited = self.base.bend_cost(at, incoming, outgoing)
        if incoming is not outgoing:
            return inherited + self.penalty
        return inherited


class InvertedCornerCost(CostModel):
    """The paper's inverted-corner epsilon (Figure 2).

    Among equal-length routes around a cell corner, the preferred route
    turns exactly at the cell boundary; the non-preferred route turns
    in free space ("the inverted corner"), wasting the passage next to
    the cell.  "Since both routes have exactly the same length, if a
    small number, e, is added to the cost of the non-preferred route
    the algorithm will automatically pick the preferred route."

    Detection: a bend at a point on some cell (or surface) boundary is
    free; a bend floating in free space costs epsilon.  Epsilon must be
    small enough never to change which *lengths* are optimal — the
    default 1/16 is far below the 1-unit coordinate resolution.
    """

    direction_sensitive = True

    def __init__(
        self,
        obstacles: ObstacleSet,
        epsilon: float = 1.0 / 16.0,
        base: Optional[CostModel] = None,
    ):
        if epsilon <= 0:
            raise RoutingError(f"inverted-corner epsilon must be > 0, got {epsilon}")
        self.obstacles = obstacles
        self.epsilon = epsilon
        self.base = base or CostModel()
        self.direction_sensitive = True

    def _on_any_boundary(self, p: Point) -> bool:
        return self.obstacles.on_any_boundary(p)

    def segment_cost(self, seg: Segment) -> float:
        return self.base.segment_cost(seg)

    def bend_cost(self, at: Point, incoming: Direction, outgoing: Direction) -> float:
        inherited = self.base.bend_cost(at, incoming, outgoing)
        if incoming is outgoing:
            return inherited
        if self._on_any_boundary(at):
            return inherited
        return inherited + self.epsilon


#: Coordinate offset separating the two axes of a fused expansion
#: surcharge.  Vertical successors and vertical-track regions are
#: shifted here so that a cross-axis (region, successor) pair can never
#: overlap: one operand stays in ordinary coordinate range, the other
#: sits beyond it, so the clamped interval is empty and the
#: contribution is exactly ``0.0``.  Same-axis pairs are unaffected —
#: the offset cancels in the interval subtraction (exact int64).
_FUSE_OFFSET = 1 << 40


class CongestionPenaltyCost(CostModel):
    """Per-unit-length surcharge inside congested regions.

    Used by the two-pass scheme from the Conclusions: "A second route
    of the affected nets could penalize those paths which chose the
    congested area."  Each region carries its own weight (cost added
    per unit of wire inside it); overlapping regions stack.

    This is the negotiated loop's hottest cost model — every generated
    successor prices one segment against every region — so the region
    bounds are flattened once at construction (the model is frozen for
    a whole routing pass) into plain int tuples for a tight scalar
    loop, or numpy columns once the region count is large enough for
    vectorization to win.  Per-region contributions are bit-identical
    between the two forms and to the original object-per-query code
    (same product, accumulated in the same region order, zero terms
    skipped), so routed results do not depend on which implementation
    priced them.
    """

    #: Region count at which the numpy path overtakes the scalar loop.
    VECTOR_THRESHOLD = 48

    def __init__(
        self,
        regions: Sequence[tuple[Rect, float]],
        base: Optional[CostModel] = None,
    ):
        for region, weight in regions:
            if weight < 0:
                raise RoutingError(f"congestion weight must be >= 0, got {weight} for {region}")
        self.regions = list(regions)
        self.base = base or CostModel()
        self.direction_sensitive = self.base.direction_sensitive
        self._bounds = [(r.x0, r.y0, r.x1, r.y1, w) for r, w in self.regions]
        self._vectorized = len(self.regions) >= self.VECTOR_THRESHOLD
        self._batch_columns: Optional[tuple[np.ndarray, ...]] = None
        self._track_regions: dict[tuple[bool, int], Optional[tuple[np.ndarray, ...]]] = {}
        self._pair_spans_cache: dict[tuple[int, int], Optional[tuple[np.ndarray, ...]]] = {}
        if self._vectorized:
            self._rx0 = np.array([r.x0 for r, _ in self.regions], dtype=np.int64)
            self._ry0 = np.array([r.y0 for r, _ in self.regions], dtype=np.int64)
            self._rx1 = np.array([r.x1 for r, _ in self.regions], dtype=np.int64)
            self._ry1 = np.array([r.y1 for r, _ in self.regions], dtype=np.int64)
            self._weights = np.array([w for _, w in self.regions], dtype=np.float64)

    def segment_cost(self, seg: Segment) -> float:
        cost = self.base.segment_cost(seg)
        if not self._bounds:
            return cost
        a, b = seg.a, seg.b  # normalized: a <= b
        ax, ay = a.x, a.y
        bx, by = b.x, b.y
        if ax == bx and ay == by:  # degenerate: no wire, no surcharge
            return cost
        if self._vectorized:
            if ay == by:
                inside = (self._ry0 <= ay) & (ay <= self._ry1)
                overlap = np.minimum(self._rx1, bx) - np.maximum(self._rx0, ax)
            else:
                inside = (self._rx0 <= ax) & (ax <= self._rx1)
                overlap = np.minimum(self._ry1, by) - np.maximum(self._ry0, ay)
            contrib = self._weights * np.where(inside & (overlap > 0), overlap, 0)
            for index in np.flatnonzero(contrib):
                cost += float(contrib[index])
            return cost
        if ay == by:  # horizontal
            for x0, y0, x1, y1, weight in self._bounds:
                if y0 <= ay <= y1:
                    lo = x0 if x0 > ax else ax
                    hi = x1 if x1 < bx else bx
                    if lo < hi:
                        cost += weight * (hi - lo)
        else:
            for x0, y0, x1, y1, weight in self._bounds:
                if x0 <= ax <= x1:
                    lo = y0 if y0 > ay else ay
                    hi = y1 if y1 < by else by
                    if lo < hi:
                        cost += weight * (hi - lo)
        return cost

    def bend_cost(self, at: Point, incoming: Direction, outgoing: Direction) -> float:
        return self.base.bend_cost(at, incoming, outgoing)

    @property
    def supports_batched_costs(self) -> bool:
        return (
            type(self) in (CongestionPenaltyCost, NegotiatedCongestionCost)
            and self.base.supports_batched_costs
        )

    def _region_columns(self) -> tuple[np.ndarray, ...]:
        """Region bounds as int64/float64 columns, in declaration order."""
        if self._vectorized:
            return self._rx0, self._ry0, self._rx1, self._ry1, self._weights
        if self._batch_columns is None:
            self._batch_columns = (
                np.array([b[0] for b in self._bounds], dtype=np.int64),
                np.array([b[1] for b in self._bounds], dtype=np.int64),
                np.array([b[2] for b in self._bounds], dtype=np.int64),
                np.array([b[3] for b in self._bounds], dtype=np.int64),
                np.array([b[4] for b in self._bounds], dtype=np.float64),
            )
        return self._batch_columns

    def _regions_on_track(self, horizontal: bool, fixed: int) -> Optional[tuple[np.ndarray, ...]]:
        """Region columns whose perpendicular span contains *fixed*.

        The model is frozen for a whole routing pass and searches
        revisit the same tracks constantly, so the per-track selection
        (in declaration order) is cached; ``None`` marks tracks no
        region touches, which lets most batch calls exit immediately.
        """
        key = (horizontal, fixed)
        try:
            return self._track_regions[key]
        except KeyError:
            pass
        rx0, ry0, rx1, ry1, weights = self._region_columns()
        if horizontal:
            perp_lo, perp_hi = ry0, ry1
            span_lo, span_hi = rx0, rx1
        else:
            perp_lo, perp_hi = rx0, rx1
            span_lo, span_hi = ry0, ry1
        inside = np.flatnonzero((perp_lo <= fixed) & (fixed <= perp_hi))
        selection: Optional[tuple[np.ndarray, ...]]
        if inside.size:
            selection = (span_lo[inside], span_hi[inside], weights[inside])
        else:
            selection = None
        self._track_regions[key] = selection
        return selection

    def _surcharge_into(
        self,
        costs: np.ndarray,
        coords: np.ndarray,
        origin: int,
        horizontal: bool,
        fixed: int,
        native: bool,
    ) -> None:
        """Add this track's congestion surcharges to *costs* in place."""
        selection = self._regions_on_track(horizontal, fixed)
        if selection is None:
            return
        span_lo, span_hi, weights = selection
        a = np.minimum(coords, origin)
        b = np.maximum(coords, origin)
        if native and native_kernels.NATIVE_AVAILABLE:
            native_kernels.congestion_surcharge_on_track(
                a, b, span_lo, span_hi, weights, costs
            )
            return
        lo = np.maximum(span_lo[:, None], a[None, :])
        hi = np.minimum(span_hi[:, None], b[None, :])
        np.subtract(hi, lo, out=hi)
        np.maximum(hi, 0, out=hi)
        self._fold_contributions(costs, hi, weights)

    @staticmethod
    def _fold_contributions(
        costs: np.ndarray, hi: np.ndarray, weights: np.ndarray
    ) -> None:
        """``costs[j] += sum_r weights[r] * hi[r, j]`` in row order.

        Accumulates contributions per successor in region declaration
        order — the exact accumulation order of the scalar path
        (including its zero terms: ``x + 0.0 == x`` for the positive
        finite costs here, so skipped-vs-added zeros cannot differ).
        """
        n = costs.shape[0]
        if n == 1:
            # Degenerate batch: a (R, 1) column is contiguous, where
            # numpy reductions switch to pairwise summation and can
            # drift by an ULP.  Accumulate with Python floats instead.
            acc = costs[0]
            for overlap, weight in zip(hi[:, 0].tolist(), weights.tolist()):
                acc += weight * overlap
            costs[0] = acc
        else:
            # Row 0 is the running total, each later row one region's
            # weighted overlap (multiplied straight into the buffer —
            # no intermediate contribution matrix).  An axis-0 reduce
            # over a C-contiguous matrix with a non-trivial inner axis
            # folds rows top-down sequentially (pairwise summation
            # only applies along a contiguous reduction axis) — i.e.
            # ``((base + c0) + c1) + ...`` per successor,
            # bit-identical to the scalar loop.  The parity suite and
            # an adversarial unit test pin this.
            stacked = np.empty((hi.shape[0] + 1, n), dtype=np.float64)
            stacked[0] = costs
            np.multiply(hi, weights[:, None], out=stacked[1:])
            np.add.reduce(stacked, axis=0, out=costs)

    def _pair_spans(self, y: int, x: int) -> Optional[tuple[np.ndarray, ...]]:
        """Region spans of both expansion tracks, fused into one set.

        The horizontal track ``y`` contributes its regions' x spans
        as-is; the vertical track ``x`` contributes its regions' y
        spans shifted by :data:`_FUSE_OFFSET` so they can only ever
        overlap (equally shifted) vertical successors.  Cached per
        ``(y, x)`` origin: searches re-expand the same origins across
        nets and iterations while the model is frozen.
        """
        key = (y, x)
        try:
            return self._pair_spans_cache[key]
        except KeyError:
            pass
        sel_h = self._regions_on_track(True, y)
        sel_v = self._regions_on_track(False, x)
        combined: Optional[tuple[np.ndarray, ...]]
        if sel_v is None:
            combined = sel_h
        elif sel_h is None:
            lo_v, hi_v, w_v = sel_v
            combined = (lo_v + _FUSE_OFFSET, hi_v + _FUSE_OFFSET, w_v)
        else:
            lo_h, hi_h, w_h = sel_h
            lo_v, hi_v, w_v = sel_v
            combined = (
                np.concatenate((lo_h, lo_v + _FUSE_OFFSET)),
                np.concatenate((hi_h, hi_v + _FUSE_OFFSET)),
                np.concatenate((w_h, w_v)),
            )
        self._pair_spans_cache[key] = combined
        return combined

    def _surcharge_expansion(
        self,
        costs: np.ndarray,
        hx: np.ndarray,
        x: int,
        vy: np.ndarray,
        y: int,
        native: bool,
    ) -> None:
        """Both axes' congestion surcharges in one fused pass.

        Equivalent to one :meth:`_surcharge_into` call per axis, but
        with a single clamp/fold over the combined region set: each
        successor's column folds its own track's regions (same values,
        same declaration order as the per-axis call) plus the other
        track's regions, whose clamped overlaps are exactly zero by the
        :data:`_FUSE_OFFSET` construction — and ``x + 0.0 == x`` for
        these positive costs, so interleaving the zero terms cannot
        change a single bit.  The parity suite pins this.
        """
        combined = self._pair_spans(y, x)
        if combined is None:
            return
        span_lo, span_hi, weights = combined
        nh = hx.shape[0]
        n = costs.shape[0]
        a = np.empty(n, dtype=np.int64)
        b = np.empty(n, dtype=np.int64)
        np.minimum(hx, x, out=a[:nh])
        np.maximum(hx, x, out=b[:nh])
        if n > nh:
            av = a[nh:]
            bv = b[nh:]
            np.minimum(vy, y, out=av)
            np.maximum(vy, y, out=bv)
            av += _FUSE_OFFSET
            bv += _FUSE_OFFSET
        if native and native_kernels.NATIVE_AVAILABLE:
            native_kernels.congestion_surcharge_on_track(
                a, b, span_lo, span_hi, weights, costs
            )
            return
        lo = np.maximum(span_lo[:, None], a[None, :])
        hi = np.minimum(span_hi[:, None], b[None, :])
        np.subtract(hi, lo, out=hi)
        np.maximum(hi, 0, out=hi)
        self._fold_contributions(costs, hi, weights)

    def segment_costs_from(
        self, x: int, y: int, coords: np.ndarray, horizontal: bool, *, native: bool = False
    ) -> np.ndarray:
        costs = self.base.segment_costs_from(x, y, coords, horizontal, native=native)
        if not self._bounds or not coords.size:
            return costs
        origin = x if horizontal else y
        fixed = y if horizontal else x
        self._surcharge_into(costs, coords, origin, horizontal, fixed, native)
        return costs

    def expansion_costs(
        self, x: int, y: int, hx: np.ndarray, vy: np.ndarray, *, native: bool = False
    ) -> np.ndarray:
        if not self._bounds or type(self.base) not in (CostModel, WirelengthCost):
            costs = self.base.expansion_costs(x, y, hx, vy, native=native)
            if self._bounds and costs.size:
                self._surcharge_expansion(costs, hx, x, vy, y, native)
            return costs
        # Plain-wirelength base: the surcharge clamp needs the
        # normalized endpoints ``a = min(c, origin)``/``b = max`` of
        # every successor segment anyway, and the base cost is exactly
        # ``b - a`` (integer lengths are exact in float64, same value
        # as ``|c - origin|``), so one fused pass computes both.
        nh = hx.shape[0]
        n = nh + vy.shape[0]
        if not n:
            return np.empty(0, dtype=np.float64)
        a = np.empty(n, dtype=np.int64)
        b = np.empty(n, dtype=np.int64)
        np.minimum(hx, x, out=a[:nh])
        np.maximum(hx, x, out=b[:nh])
        np.minimum(vy, y, out=a[nh:])
        np.maximum(vy, y, out=b[nh:])
        costs = (b - a).astype(np.float64)
        combined = self._pair_spans(y, x)
        if combined is None:
            return costs
        a[nh:] += _FUSE_OFFSET
        b[nh:] += _FUSE_OFFSET
        span_lo, span_hi, weights = combined
        if native and native_kernels.NATIVE_AVAILABLE:
            native_kernels.congestion_surcharge_on_track(
                a, b, span_lo, span_hi, weights, costs
            )
            return costs
        lo = np.maximum(span_lo[:, None], a[None, :])
        hi = np.minimum(span_hi[:, None], b[None, :])
        np.subtract(hi, lo, out=hi)
        np.maximum(hi, 0, out=hi)
        self._fold_contributions(costs, hi, weights)
        return costs


class NegotiatedCongestionCost(CongestionPenaltyCost):
    """PathFinder-style negotiated congestion surcharge.

    Where :class:`CongestionPenaltyCost` takes fixed region weights,
    this model derives each region's per-unit-length weight from the
    negotiation state, in PathFinder's multiplicative form
    ``cost = (base + history) * present``.  With the base unit of wire
    already priced by the underlying model, the *surcharge* per unit
    of wire inside a region is::

        weight = (1 + history_weight * history)
                 * (1 + present_weight * present) - 1

    The present term repels nets from passages that have no room right
    now; the history term makes passages that keep overflowing
    progressively more expensive across iterations — and keeps
    repelling even when the present term drops to zero, which is what
    breaks the oscillation the plain two-pass scheme is prone to.  All
    weights are >= 0, so the model still dominates pure wirelength and
    A* stays admissible.

    Parameters
    ----------
    terms:
        ``(region, present, history)`` triples, typically from
        :meth:`repro.core.congestion.CongestionHistory.penalty_terms`.
    present_weight, history_weight:
        Scale factors for the two terms (both must be >= 0).
    base:
        Underlying model to surcharge (default plain wirelength).
    """

    def __init__(
        self,
        terms: Sequence[tuple[Rect, float, float]],
        *,
        present_weight: float = 1.0,
        history_weight: float = 2.0,
        base: Optional[CostModel] = None,
    ):
        terms = list(terms)
        if present_weight < 0:
            raise RoutingError(f"present_weight must be >= 0, got {present_weight}")
        if history_weight < 0:
            raise RoutingError(f"history_weight must be >= 0, got {history_weight}")
        for region, present, history in terms:
            if present < 0 or history < 0:
                raise RoutingError(
                    f"negotiated terms must be >= 0, got ({present}, {history}) for {region}"
                )
        self.terms = terms
        self.present_weight = present_weight
        self.history_weight = history_weight
        regions = [
            (region, self.region_weight(present, history))
            for region, present, history in terms
        ]
        super().__init__(regions, base=base)

    def region_weight(self, present: float, history: float) -> float:
        """The derived per-unit-length weight for one ``(present, history)``."""
        return (1.0 + self.history_weight * history) * (
            1.0 + self.present_weight * present
        ) - 1.0


class TimingDrivenCost(NegotiatedCongestionCost):
    """Criticality-blended negotiated congestion surcharge.

    The timing-driven strategy prices each net under its own model: a
    net's criticality ``c`` (in ``[0, 1]``, from
    :func:`repro.core.timing.analyze_route_timing`) blends a delay term
    against the congestion term::

        segment_cost = length
                       + c * delay_weight * length          (delay term)
                       + (1 - c) * negotiated_surcharge     (congestion term)

    A critical net (``c`` near 1) pays for every unit of wire but is
    nearly blind to congestion, so it holds the shortest attainable
    path; a non-critical net (``c`` near 0) prices congestion at full
    strength and detours on its behalf.  Both terms are >= 0, so the
    model still dominates pure wirelength and A* stays admissible.

    The per-net criticality makes this model net-specific, which is why
    :attr:`supports_batched_costs` stays ``False`` (inherited exact-type
    whitelist): every engine prices it through the scalar oracle, so
    results cannot depend on the engine choice.
    """

    def __init__(
        self,
        terms: Sequence[tuple[Rect, float, float]],
        *,
        criticality: float,
        delay_weight: float = 0.5,
        present_weight: float = 1.0,
        history_weight: float = 2.0,
        base: Optional[CostModel] = None,
    ):
        if not 0.0 <= criticality <= 1.0:
            raise RoutingError(f"criticality must be in [0, 1], got {criticality}")
        if delay_weight < 0:
            raise RoutingError(f"delay_weight must be >= 0, got {delay_weight}")
        # region_weight runs inside super().__init__, so the blend
        # factors must exist first.
        self.criticality = float(criticality)
        self.delay_weight = float(delay_weight)
        super().__init__(
            terms,
            present_weight=present_weight,
            history_weight=history_weight,
            base=base,
        )

    def region_weight(self, present: float, history: float) -> float:
        return (1.0 - self.criticality) * super().region_weight(present, history)

    def segment_cost(self, seg: Segment) -> float:
        return (
            super().segment_cost(seg)
            + self.criticality * self.delay_weight * seg.length
        )


def _overlap_length(seg: Segment, region: Rect) -> int:
    """Length of *seg* lying within the closed *region*.

    A segment running along the region's boundary counts: hugging a
    cell edge adjacent to a congested passage is exactly the behaviour
    the penalty must discourage.
    """
    if seg.is_degenerate:
        return 0
    if seg.is_horizontal:
        if not region.y_span.contains(seg.a.y):
            return 0
        shared = seg.span.intersection(region.x_span)
    else:
        if not region.x_span.contains(seg.a.x):
            return 0
        shared = seg.span.intersection(region.y_span)
    return shared.length if shared is not None else 0
