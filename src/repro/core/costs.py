"""Generalized cost functions.

"Because of the generality of the A* algorithm, the heuristic cost
function can be used to favor certain classes of routes over others."

A :class:`CostModel` prices the two things a rectilinear route is made
of: straight segments and the bends between them.  Every model must
dominate pure wirelength from below — i.e. ``segment_cost >= length``
and ``bend_cost >= 0`` — so the rectilinear-distance heuristic remains
a lower bound and A* stays admissible.

Models that price bends need to know the incoming direction at each
search state, which the pathfinder supports by switching to
direction-tagged states; they declare ``direction_sensitive = True``.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.errors import RoutingError
from repro.geometry.point import Direction, Point
from repro.geometry.raytrace import ObstacleSet
from repro.geometry.rect import Rect
from repro.geometry.segment import Segment


class CostModel:
    """Base model: cost is exactly rectilinear wirelength.

    Subclasses override :meth:`segment_cost` and/or :meth:`bend_cost`.
    """

    #: Whether the pathfinder must track arrival directions so that
    #: :meth:`bend_cost` can be charged.
    direction_sensitive: bool = False

    def segment_cost(self, seg: Segment) -> float:
        """Cost of routing a wire along *seg*.  Must be >= ``seg.length``."""
        return float(seg.length)

    def bend_cost(self, at: Point, incoming: Direction, outgoing: Direction) -> float:
        """Extra cost for turning at *at*.  Must be >= 0."""
        return 0.0


class WirelengthCost(CostModel):
    """Explicit name for the default minimal-length objective."""


class BendPenaltyCost(CostModel):
    """Charge a fixed penalty per corner.

    Corners become vias after layer assignment, so this is the "other
    heuristics [are] easily implemented" knob for via minimization.
    The penalty may be any non-negative number; fractional values
    (< 1 database unit) act purely as tie-breakers among equal-length
    routes.
    """

    direction_sensitive = True

    def __init__(self, penalty: float = 0.25, base: Optional[CostModel] = None):
        if penalty < 0:
            raise RoutingError(f"bend penalty must be >= 0, got {penalty}")
        self.penalty = penalty
        self.base = base or CostModel()
        self.direction_sensitive = True

    def segment_cost(self, seg: Segment) -> float:
        return self.base.segment_cost(seg)

    def bend_cost(self, at: Point, incoming: Direction, outgoing: Direction) -> float:
        inherited = self.base.bend_cost(at, incoming, outgoing)
        if incoming is not outgoing:
            return inherited + self.penalty
        return inherited


class InvertedCornerCost(CostModel):
    """The paper's inverted-corner epsilon (Figure 2).

    Among equal-length routes around a cell corner, the preferred route
    turns exactly at the cell boundary; the non-preferred route turns
    in free space ("the inverted corner"), wasting the passage next to
    the cell.  "Since both routes have exactly the same length, if a
    small number, e, is added to the cost of the non-preferred route
    the algorithm will automatically pick the preferred route."

    Detection: a bend at a point on some cell (or surface) boundary is
    free; a bend floating in free space costs epsilon.  Epsilon must be
    small enough never to change which *lengths* are optimal — the
    default 1/16 is far below the 1-unit coordinate resolution.
    """

    direction_sensitive = True

    def __init__(
        self,
        obstacles: ObstacleSet,
        epsilon: float = 1.0 / 16.0,
        base: Optional[CostModel] = None,
    ):
        if epsilon <= 0:
            raise RoutingError(f"inverted-corner epsilon must be > 0, got {epsilon}")
        self.obstacles = obstacles
        self.epsilon = epsilon
        self.base = base or CostModel()
        self.direction_sensitive = True

    def _on_any_boundary(self, p: Point) -> bool:
        return self.obstacles.on_any_boundary(p)

    def segment_cost(self, seg: Segment) -> float:
        return self.base.segment_cost(seg)

    def bend_cost(self, at: Point, incoming: Direction, outgoing: Direction) -> float:
        inherited = self.base.bend_cost(at, incoming, outgoing)
        if incoming is outgoing:
            return inherited
        if self._on_any_boundary(at):
            return inherited
        return inherited + self.epsilon


class CongestionPenaltyCost(CostModel):
    """Per-unit-length surcharge inside congested regions.

    Used by the two-pass scheme from the Conclusions: "A second route
    of the affected nets could penalize those paths which chose the
    congested area."  Each region carries its own weight (cost added
    per unit of wire inside it); overlapping regions stack.

    This is the negotiated loop's hottest cost model — every generated
    successor prices one segment against every region — so the region
    bounds are flattened once at construction (the model is frozen for
    a whole routing pass) into plain int tuples for a tight scalar
    loop, or numpy columns once the region count is large enough for
    vectorization to win.  Per-region contributions are bit-identical
    between the two forms and to the original object-per-query code
    (same product, accumulated in the same region order, zero terms
    skipped), so routed results do not depend on which implementation
    priced them.
    """

    #: Region count at which the numpy path overtakes the scalar loop.
    VECTOR_THRESHOLD = 48

    def __init__(
        self,
        regions: Sequence[tuple[Rect, float]],
        base: Optional[CostModel] = None,
    ):
        for region, weight in regions:
            if weight < 0:
                raise RoutingError(f"congestion weight must be >= 0, got {weight} for {region}")
        self.regions = list(regions)
        self.base = base or CostModel()
        self.direction_sensitive = self.base.direction_sensitive
        self._bounds = [(r.x0, r.y0, r.x1, r.y1, w) for r, w in self.regions]
        self._vectorized = len(self.regions) >= self.VECTOR_THRESHOLD
        if self._vectorized:
            self._rx0 = np.array([r.x0 for r, _ in self.regions], dtype=np.int64)
            self._ry0 = np.array([r.y0 for r, _ in self.regions], dtype=np.int64)
            self._rx1 = np.array([r.x1 for r, _ in self.regions], dtype=np.int64)
            self._ry1 = np.array([r.y1 for r, _ in self.regions], dtype=np.int64)
            self._weights = np.array([w for _, w in self.regions], dtype=np.float64)

    def segment_cost(self, seg: Segment) -> float:
        cost = self.base.segment_cost(seg)
        if not self._bounds:
            return cost
        a, b = seg.a, seg.b  # normalized: a <= b
        ax, ay = a.x, a.y
        bx, by = b.x, b.y
        if ax == bx and ay == by:  # degenerate: no wire, no surcharge
            return cost
        if self._vectorized:
            if ay == by:
                inside = (self._ry0 <= ay) & (ay <= self._ry1)
                overlap = np.minimum(self._rx1, bx) - np.maximum(self._rx0, ax)
            else:
                inside = (self._rx0 <= ax) & (ax <= self._rx1)
                overlap = np.minimum(self._ry1, by) - np.maximum(self._ry0, ay)
            contrib = self._weights * np.where(inside & (overlap > 0), overlap, 0)
            for index in np.flatnonzero(contrib):
                cost += float(contrib[index])
            return cost
        if ay == by:  # horizontal
            for x0, y0, x1, y1, weight in self._bounds:
                if y0 <= ay <= y1:
                    lo = x0 if x0 > ax else ax
                    hi = x1 if x1 < bx else bx
                    if lo < hi:
                        cost += weight * (hi - lo)
        else:
            for x0, y0, x1, y1, weight in self._bounds:
                if x0 <= ax <= x1:
                    lo = y0 if y0 > ay else ay
                    hi = y1 if y1 < by else by
                    if lo < hi:
                        cost += weight * (hi - lo)
        return cost

    def bend_cost(self, at: Point, incoming: Direction, outgoing: Direction) -> float:
        return self.base.bend_cost(at, incoming, outgoing)


class NegotiatedCongestionCost(CongestionPenaltyCost):
    """PathFinder-style negotiated congestion surcharge.

    Where :class:`CongestionPenaltyCost` takes fixed region weights,
    this model derives each region's per-unit-length weight from the
    negotiation state, in PathFinder's multiplicative form
    ``cost = (base + history) * present``.  With the base unit of wire
    already priced by the underlying model, the *surcharge* per unit
    of wire inside a region is::

        weight = (1 + history_weight * history)
                 * (1 + present_weight * present) - 1

    The present term repels nets from passages that have no room right
    now; the history term makes passages that keep overflowing
    progressively more expensive across iterations — and keeps
    repelling even when the present term drops to zero, which is what
    breaks the oscillation the plain two-pass scheme is prone to.  All
    weights are >= 0, so the model still dominates pure wirelength and
    A* stays admissible.

    Parameters
    ----------
    terms:
        ``(region, present, history)`` triples, typically from
        :meth:`repro.core.congestion.CongestionHistory.penalty_terms`.
    present_weight, history_weight:
        Scale factors for the two terms (both must be >= 0).
    base:
        Underlying model to surcharge (default plain wirelength).
    """

    def __init__(
        self,
        terms: Sequence[tuple[Rect, float, float]],
        *,
        present_weight: float = 1.0,
        history_weight: float = 2.0,
        base: Optional[CostModel] = None,
    ):
        terms = list(terms)
        if present_weight < 0:
            raise RoutingError(f"present_weight must be >= 0, got {present_weight}")
        if history_weight < 0:
            raise RoutingError(f"history_weight must be >= 0, got {history_weight}")
        for region, present, history in terms:
            if present < 0 or history < 0:
                raise RoutingError(
                    f"negotiated terms must be >= 0, got ({present}, {history}) for {region}"
                )
        self.terms = terms
        self.present_weight = present_weight
        self.history_weight = history_weight
        regions = [
            (region, self.region_weight(present, history))
            for region, present, history in terms
        ]
        super().__init__(regions, base=base)

    def region_weight(self, present: float, history: float) -> float:
        """The derived per-unit-length weight for one ``(present, history)``."""
        return (1.0 + self.history_weight * history) * (
            1.0 + self.present_weight * present
        ) - 1.0


def _overlap_length(seg: Segment, region: Rect) -> int:
    """Length of *seg* lying within the closed *region*.

    A segment running along the region's boundary counts: hugging a
    cell edge adjacent to a congested passage is exactly the behaviour
    the penalty must discourage.
    """
    if seg.is_degenerate:
        return 0
    if seg.is_horizontal:
        if not region.y_span.contains(seg.a.y):
            return 0
        shared = seg.span.intersection(region.x_span)
    else:
        if not region.x_span.contains(seg.a.x):
            return 0
        shared = seg.span.intersection(region.y_span)
    return shared.length if shared is not None else 0
