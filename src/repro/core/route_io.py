"""Serialization of routing results.

Downstream tools (timing estimators, visualizers, the detailed router
run as a separate process) need routes as data.  The format mirrors
:mod:`repro.layout.io`: plain dicts/JSON, stable, versioned.

Search statistics are preserved as reporting metadata; expansion
traces are deliberately not serialized (they are debugging artifacts
and can be huge).
"""

from __future__ import annotations

import json
from typing import Any

from repro.errors import RoutingError
from repro.core.route import GlobalRoute, RoutePath, RouteTree
from repro.geometry.point import Point
from repro.search.stats import SearchStats

FORMAT_VERSION = 1


def route_to_dict(route: GlobalRoute) -> dict[str, Any]:
    """Convert a global route to a JSON-ready dict."""
    return {
        "version": FORMAT_VERSION,
        "trees": {name: _tree_to_dict(tree) for name, tree in route.trees.items()},
        "failed_nets": list(route.failed_nets),
        "stats": _stats_to_dict(route.stats),
    }


def route_from_dict(data: dict[str, Any]) -> GlobalRoute:
    """Rebuild a global route from :func:`route_to_dict` output.

    Raises :class:`RoutingError` on malformed or wrong-version input.
    """
    try:
        version = data["version"]
        if version != FORMAT_VERSION:
            raise RoutingError(f"unsupported route format version {version!r}")
        route = GlobalRoute(
            trees={name: _tree_from_dict(name, td) for name, td in data["trees"].items()},
            failed_nets=list(data.get("failed_nets", ())),
            stats=_stats_from_dict(data.get("stats", {})),
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise RoutingError(f"malformed route data: {exc}") from exc
    return route


def route_to_json(route: GlobalRoute, *, indent: int | None = 2) -> str:
    """Serialize a global route to a JSON string."""
    return json.dumps(route_to_dict(route), indent=indent)


def route_from_json(text: str) -> GlobalRoute:
    """Parse a global route from a JSON string."""
    try:
        data = json.loads(text)
    except json.JSONDecodeError as exc:
        raise RoutingError(f"invalid JSON: {exc}") from exc
    return route_from_dict(data)


# ----------------------------------------------------------------------
# Element converters
# ----------------------------------------------------------------------
def _tree_to_dict(tree: RouteTree) -> dict[str, Any]:
    return {
        "paths": [
            {"points": [[p.x, p.y] for p in path.points], "cost": path.cost}
            for path in tree.paths
        ],
        "connected_terminals": list(tree.connected_terminals),
        "stats": _stats_to_dict(tree.stats),
    }


def _tree_from_dict(name: str, data: dict[str, Any]) -> RouteTree:
    tree = RouteTree(net_name=name)
    for path_data in data["paths"]:
        points = tuple(Point(int(x), int(y)) for x, y in path_data["points"])
        tree.paths.append(RoutePath(points, cost=float(path_data.get("cost", 0.0))))
    tree.connected_terminals = list(data.get("connected_terminals", ()))
    tree.stats = _stats_from_dict(data.get("stats", {}))
    return tree


def _stats_to_dict(stats: SearchStats) -> dict[str, Any]:
    return {
        "nodes_expanded": stats.nodes_expanded,
        "nodes_generated": stats.nodes_generated,
        "nodes_reopened": stats.nodes_reopened,
        "max_open_size": stats.max_open_size,
        "elapsed_seconds": stats.elapsed_seconds,
        "termination": stats.termination,
        "cache_hits": stats.cache_hits,
        "cache_misses": stats.cache_misses,
    }


def _stats_from_dict(data: dict[str, Any]) -> SearchStats:
    return SearchStats(
        nodes_expanded=int(data.get("nodes_expanded", 0)),
        nodes_generated=int(data.get("nodes_generated", 0)),
        nodes_reopened=int(data.get("nodes_reopened", 0)),
        max_open_size=int(data.get("max_open_size", 0)),
        elapsed_seconds=float(data.get("elapsed_seconds", 0.0)),
        termination=str(data.get("termination", "none")),
        cache_hits=int(data.get("cache_hits", 0)),
        cache_misses=int(data.get("cache_misses", 0)),
    )
