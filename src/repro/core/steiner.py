"""Multi-terminal net routing: the Steiner-tree approximation.

From the Extensions section: "Multi-terminal nets are accommodated by
approximating a Steiner tree with an adaptation of Dijkstra's minimum
spanning tree algorithm.  The modification ... considers all line
segments in the spanning tree being built as potential connection
points.  A spanning tree would only consider the pins (vertices)."

And for multi-pin terminals: "When a terminal is connected into the
tree all the line segments which make up the connecting path as well
as all the pins which are associated with the newly connected terminal
are brought into the connected set."

The implementation grows the connected set one terminal at a time; the
next terminal is the one with the smallest rectilinear lower-bound
distance to the set (or, with ``exact_order=True``, the smallest true
A* cost — the A2 ablation compares both).  Each connection is a
multi-source A* from all of the terminal's pins to the whole set.
"""

from __future__ import annotations

from typing import Optional

from repro.errors import UnroutableError
from repro.core.costs import CostModel, WirelengthCost
from repro.core.escape import EscapeMode
from repro.core.pathfinder import PathRequest, PathSearchResult, find_path
from repro.core.route import RouteTree, TargetSet
from repro.geometry.point import Point
from repro.geometry.raytrace import ObstacleSet
from repro.layout.net import Net
from repro.layout.terminal import Terminal
from repro.search.engine import Order


def route_net(
    net: Net,
    obstacles: ObstacleSet,
    *,
    cost_model: Optional[CostModel] = None,
    mode: EscapeMode = EscapeMode.FULL,
    order: Order = Order.A_STAR,
    exact_order: bool = False,
    node_limit: Optional[int] = None,
    trace: bool = False,
    engine: str = "scalar",
) -> RouteTree:
    """Route *net* as an approximate Steiner tree.

    Parameters mirror :class:`~repro.core.pathfinder.PathRequest`;
    ``exact_order`` selects true-cost Prim ordering over the
    lower-bound greedy (slower, occasionally shorter trees).

    Raises
    ------
    UnroutableError
        When some terminal cannot be connected.  The partially built
        :class:`RouteTree` rides along as ``partial``.
    """
    model = cost_model if cost_model is not None else WirelengthCost()
    tree = RouteTree(net_name=net.name)

    seed = _seed_terminal(net)
    connected = TargetSet(points=seed.locations)
    tree.connected_terminals.append(seed.name)

    remaining = [t for t in net.terminals if t.name != seed.name]
    while remaining:
        if exact_order:
            terminal, outcome = _cheapest_connection(
                remaining, connected, obstacles, model, mode, order, node_limit, trace, engine
            )
        else:
            terminal = min(
                remaining,
                key=lambda t: (min(connected.distance_to(loc) for loc in t.locations), t.name),
            )
            outcome = _connect(
                terminal, connected, obstacles, model, mode, order, node_limit, trace, tree,
                engine,
            )
        remaining.remove(terminal)

        tree.paths.append(outcome.path)
        tree.connected_terminals.append(terminal.name)
        tree.stats = tree.stats.merged_with(outcome.stats)
        if outcome.trace is not None:
            tree.traces.append(outcome.trace)
        connected = connected.extended(
            points=terminal.locations, segments=outcome.path.segments
        )
        if len(outcome.path.points) == 1:
            # Zero-length attachment: the pin itself joins the set.
            connected = connected.extended(points=[outcome.path.points[0]])
    return tree


def _seed_terminal(net: Net) -> Terminal:
    """Deterministic seed: the terminal nearest the net's pin centroid.

    The paper does not specify a seed; any choice yields a valid tree.
    Nearest-to-centroid keeps early connections central, which slightly
    shortens trees versus an arbitrary first terminal.
    """
    pins = net.all_pin_locations
    cx = sum(p.x for p in pins) // len(pins)
    cy = sum(p.y for p in pins) // len(pins)
    centroid = Point(cx, cy)
    return min(net.terminals, key=lambda t: (t.distance_to(centroid), t.name))


def _connect(
    terminal: Terminal,
    connected: TargetSet,
    obstacles: ObstacleSet,
    model: CostModel,
    mode: EscapeMode,
    order: Order,
    node_limit: Optional[int],
    trace: bool,
    tree: RouteTree,
    engine: str = "scalar",
) -> PathSearchResult:
    """One multi-source connection from *terminal* to the tree."""
    request = PathRequest(
        obstacles=obstacles,
        sources=[(loc, 0.0) for loc in terminal.locations],
        targets=connected,
        cost_model=model,
        mode=mode,
        order=order,
        node_limit=node_limit,
        trace=trace,
        engine=engine,
    )
    try:
        return find_path(request)
    except UnroutableError as exc:
        raise UnroutableError(
            f"net {tree.net_name!r}: cannot connect terminal {terminal.name!r}: {exc}",
            partial=tree,
        ) from exc


def _cheapest_connection(
    remaining: list[Terminal],
    connected: TargetSet,
    obstacles: ObstacleSet,
    model: CostModel,
    mode: EscapeMode,
    order: Order,
    node_limit: Optional[int],
    trace: bool,
    engine: str = "scalar",
) -> tuple[Terminal, PathSearchResult]:
    """Exact Prim step: search every remaining terminal, keep the cheapest.

    Cost is one full A* per candidate per step — quadratic in terminal
    count — which is why the lower-bound greedy is the default.
    """
    best: Optional[tuple[Terminal, PathSearchResult]] = None
    failures: list[str] = []
    for terminal in sorted(remaining, key=lambda t: t.name):
        request = PathRequest(
            obstacles=obstacles,
            sources=[(loc, 0.0) for loc in terminal.locations],
            targets=connected,
            cost_model=model,
            mode=mode,
            order=order,
            node_limit=node_limit,
            trace=trace,
            engine=engine,
        )
        try:
            outcome = find_path(request)
        except UnroutableError:
            failures.append(terminal.name)
            continue
        if best is None or outcome.path.cost < best[1].path.cost:
            best = (terminal, outcome)
    if best is None:
        raise UnroutableError(
            f"no remaining terminal is connectable (tried: {', '.join(failures)})"
        )
    return best
