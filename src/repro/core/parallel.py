"""Parallel net fan-out for the independent routing passes.

"Independent net routing also eliminates the problem of net ordering."
The same property that makes the router order-invariant (experiment
E7) makes it embarrassingly parallel: within one pass the cost model
is frozen and no net's route depends on any other net's route, so the
netlist can be partitioned over workers arbitrarily and the resulting
trees are identical to a serial run — results are collected back in
netlist order, so even the aggregate is deterministic.

Two executors are provided behind ``RouterConfig.workers``:

``process``
    A :class:`~concurrent.futures.ProcessPoolExecutor`.  Each worker
    process reconstructs the router once (layout, config and active
    cost model travel by pickle in the pool initializer) and then
    routes nets by name.  This is the backend that actually scales
    with cores for the pure-Python search.
``thread``
    A :class:`~concurrent.futures.ThreadPoolExecutor` sharing the
    parent's router.  The GIL serializes the search, so this is a
    compatibility fallback for layouts or cost models that cannot be
    pickled, not a speedup.

Spinning a process pool up costs worker spawns plus a pickle of the
whole layout, so loops that run many passes over the same layout (the
negotiation engine, multi-pass congestion schemes) should keep one
:class:`NetRoutingPool` alive for the whole run and hand each pass its
own frozen cost model; one-shot callers can use
:func:`route_each_parallel`.  Only the fan-out lives here; deciding
*when* to fan out (``workers``, trace mode, netlist size) is the
router's job.
"""

from __future__ import annotations

import dataclasses
import itertools
import pickle
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from typing import TYPE_CHECKING, Iterable, Optional

from repro.errors import RoutingError, UnroutableError
from repro.core.costs import CongestionPenaltyCost, CostModel

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.route import RouteTree
    from repro.core.router import GlobalRouter

EXECUTORS = ("process", "thread")


def validate_fanout(workers: int, executor: str, *, minimum: int = 2) -> None:
    """Reject invalid fan-out knobs before any pool (or pickling) work.

    *minimum* is the smallest legal pool.  Net fan-out keeps the
    default of 2 (the serial routing path never builds a pool at all),
    while the routing service's job pool legitimately runs with one
    worker — a single-worker pool still decouples request admission
    from execution.
    """
    if executor not in EXECUTORS:
        raise RoutingError(f"executor must be one of {EXECUTORS}, not {executor!r}")
    if workers < minimum:
        raise RoutingError(
            f"parallel fan-out needs workers >= {minimum}, got {workers}"
        )


def make_executor(
    workers: int,
    executor: str,
    *,
    initializer=None,
    initargs: tuple = (),
    minimum: int = 2,
):
    """Build a :mod:`concurrent.futures` executor of the configured flavour.

    The one place pool flavour strings turn into pool objects; the
    net-level fan-out (:class:`NetRoutingPool`), the request-level
    batch facade (:mod:`repro.api.batch`), and the service job pool
    (:mod:`repro.service.jobs`) all go through it, so they share
    validation and semantics.  ``initializer``/``initargs`` only apply
    to process pools (thread pools share the parent's state already);
    ``minimum`` is forwarded to :func:`validate_fanout`.
    """
    validate_fanout(workers, executor, minimum=minimum)
    if executor == "thread":
        return ThreadPoolExecutor(max_workers=workers)
    return ProcessPoolExecutor(
        max_workers=workers, initializer=initializer, initargs=initargs
    )


#: Per-process worker state (populated by the pool initializer).
_WORKER: dict = {}


def _init_worker(payload: bytes) -> None:
    """Process-pool initializer: rebuild the router once per worker."""
    from repro.core.router import GlobalRouter

    layout, config, cost_model = pickle.loads(payload)
    _WORKER["router"] = GlobalRouter(layout, config, cost_model=cost_model)
    _WORKER["model"] = None


def _encode_model(router: "GlobalRouter", cost_model: Optional[CostModel]) -> Optional[bytes]:
    """Pickle a per-pass cost model once, as compactly as possible.

    Congestion surcharges stacked directly on the router's own base
    model — the shape every pass of the two-pass and negotiation loops
    produces — ship as bare penalty regions; the workers already hold
    the base model from the pool initializer, so re-pickling its chain
    (obstacle sets and all) per pass would waste the pool's
    pay-the-layout-pickle-once design.  Anything else ships whole.
    """
    if cost_model is None:
        return None
    if isinstance(cost_model, CongestionPenaltyCost) and cost_model.base is router.cost_model:
        payload = ("regions", cost_model.regions)
    else:
        payload = ("model", cost_model)
    return pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)


def _load_model(blob: Optional[bytes]) -> Optional[CostModel]:
    """Decode a per-pass cost model, caching it across a pass's tasks."""
    if blob is None:
        return None
    cached = _WORKER.get("model")
    if cached is not None and cached[0] == blob:
        return cached[1]
    kind, payload = pickle.loads(blob)
    if kind == "regions":
        model: CostModel = CongestionPenaltyCost(payload, base=_WORKER["router"].cost_model)
    else:
        model = payload
    _WORKER["model"] = (blob, model)
    return model


def _route_in_worker(net_name: str, model_blob: Optional[bytes]):
    """Route one net inside a pool worker process."""
    return route_one_outcome(_WORKER["router"], net_name, _load_model(model_blob))


def route_one_outcome(
    router: "GlobalRouter", net_name: str, cost_model: Optional[CostModel]
) -> "tuple[str, Optional[RouteTree], Optional[UnroutableError]]":
    """Route one net, capturing unroutability as data (pickle-safe).

    The error slot carries the original :class:`UnroutableError` (its
    ``partial`` diagnostic survives pickling), so raise-mode callers
    can re-raise it unchanged.
    """
    try:
        tree = router.route_one(router.layout.net(net_name), cost_model=cost_model)
        return net_name, tree, None
    except UnroutableError as exc:
        return net_name, None, exc


class NetRoutingPool:
    """A reusable worker pool bound to one router.

    The pool pays its setup cost (process spawns plus one pickle of
    the layout/config/base cost model) exactly once; every
    :meth:`route_each` pass afterwards ships only the net names and,
    when given, one pickled per-pass cost model shared by all of the
    pass's tasks.  Usable as a context manager; :meth:`close` shuts
    the workers down.

    Parameters
    ----------
    router:
        The configured parent router (layout, config, base cost model).
    workers, executor:
        Override ``router.config``; ``workers`` must be >= 2 (the
        serial path never needs a pool).
    """

    def __init__(
        self,
        router: "GlobalRouter",
        *,
        workers: Optional[int] = None,
        executor: Optional[str] = None,
    ):
        self.router = router
        self.workers = workers if workers is not None else router.config.workers
        self.executor = executor if executor is not None else router.config.executor
        # Fail before the (potentially large) layout pickle below.
        validate_fanout(self.workers, self.executor)
        if self.executor == "thread":
            self._pool = make_executor(self.workers, self.executor)
        else:
            serial_config = dataclasses.replace(router.config, workers=1)
            payload = pickle.dumps(
                (router.layout, serial_config, router.cost_model),
                protocol=pickle.HIGHEST_PROTOCOL,
            )
            self._pool = make_executor(
                self.workers,
                self.executor,
                initializer=_init_worker,
                initargs=(payload,),
            )

    def route_each(
        self,
        net_names: Iterable[str],
        *,
        cost_model: Optional[CostModel] = None,
    ) -> list:
        """Route *net_names* concurrently; outcomes come back in input order.

        *cost_model* overrides the router's model for every net of
        this pass (the congestion loops pass their per-iteration
        penalized model).  Returns ``(net_name, tree_or_None,
        error_or_None)`` tuples; unroutable nets are reported as data
        so the caller decides between raising and skipping.
        """
        names = list(net_names)
        if self.executor == "thread":
            return list(
                self._pool.map(
                    lambda name: route_one_outcome(self.router, name, cost_model), names
                )
            )
        blob = _encode_model(self.router, cost_model)
        chunksize = max(1, len(names) // (self.workers * 4))
        return list(
            self._pool.map(
                _route_in_worker, names, itertools.repeat(blob), chunksize=chunksize
            )
        )

    def close(self) -> None:
        """Shut the worker pool down."""
        self._pool.shutdown()

    def __enter__(self) -> "NetRoutingPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def route_each_parallel(
    router: "GlobalRouter",
    net_names: Iterable[str],
    *,
    cost_model: Optional[CostModel] = None,
    workers: int,
    executor: str = "process",
) -> list:
    """One-shot fan-out: build a pool, route one pass, tear it down."""
    with NetRoutingPool(router, workers=workers, executor=executor) as pool:
        return pool.route_each(net_names, cost_model=cost_model)
