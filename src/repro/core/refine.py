"""Steiner tree refinement: rip-up-and-reconnect.

The greedy tree builder commits each connection against the tree *as
it existed at that step*.  Once the whole tree exists, a connection
may have a shorter attachment available.  Refinement removes one
connection path at a time and looks at what is left — computed
*geometrically*, exactly like the independent verifier, so no
bookkeeping can drift:

* the remainder is still one connected component → the path was
  redundant; it is deleted outright;
* the remainder falls into exactly two components → the path was a
  bridge; it is re-routed as a multi-source search from one component
  to the other.  The old path touched both components, so it remains
  feasible and the re-route is never costlier;
* three or more components (possible only for paths with several
  mid-path taps) → left alone.

Tree length is therefore monotonically non-increasing, and electrical
connectivity is preserved by construction; both are asserted by the
property tests.
"""

from __future__ import annotations

from typing import Optional

from repro.core.costs import CostModel, WirelengthCost
from repro.core.escape import EscapeMode
from repro.core.pathfinder import PathRequest, find_path
from repro.core.route import RoutePath, RouteTree, TargetSet
from repro.errors import UnroutableError
from repro.geometry.segment import Segment
from repro.layout.net import Net
from repro.layout.terminal import Terminal
from repro.search.engine import Order


def refine_tree(
    net: Net,
    tree: RouteTree,
    obstacles,
    *,
    cost_model: Optional[CostModel] = None,
    mode: EscapeMode = EscapeMode.FULL,
    order: Order = Order.A_STAR,
    max_rounds: int = 2,
    engine: str = "scalar",
) -> RouteTree:
    """Return a refined copy of *tree* (never longer, still connected).

    Parameters
    ----------
    max_rounds:
        Full sweeps over the connection paths; stops early once a sweep
        makes no improvement.
    """
    model = cost_model if cost_model is not None else WirelengthCost()
    refined = RouteTree(
        net_name=tree.net_name,
        paths=list(tree.paths),
        connected_terminals=list(tree.connected_terminals),
        stats=tree.stats,
        traces=list(tree.traces),
    )

    for _round in range(max_rounds):
        improved = False
        for index in range(len(refined.paths) - 1, -1, -1):
            if refined.paths[index].cost == 0 and refined.paths[index].length == 0:
                continue
            components = _components_without(net, refined, index)
            if len(components) == 1:
                # Redundant path: the tree stays connected without it.
                anchor = refined.paths[index].start
                refined.paths[index] = RoutePath((anchor,), cost=0.0)
                improved = True
                continue
            if len(components) != 2:
                continue
            side_a, side_b = components
            sources = _component_points(side_a)
            targets = _component_targets(side_b)
            if not sources or targets is None:
                continue
            request = PathRequest(
                obstacles=obstacles,
                sources=[(p, 0.0) for p in sources],
                targets=targets,
                cost_model=model,
                mode=mode,
                order=order,
                engine=engine,
            )
            try:
                outcome = find_path(request)
            except UnroutableError:  # pragma: no cover - old bridge feasible
                continue
            if outcome.path.cost < refined.paths[index].cost:
                refined.paths[index] = outcome.path
                refined.stats = refined.stats.merged_with(outcome.stats)
                improved = True
        if not improved:
            break
    return refined


# ----------------------------------------------------------------------
# Geometric contact components
# ----------------------------------------------------------------------
_Element = tuple[str, object]  # ("path", RoutePath) or ("terminal", Terminal)


def _components_without(net: Net, tree: RouteTree, index: int) -> list[list[_Element]]:
    """Connected components of the tree with path *index* removed.

    Elements are whole paths and whole terminals (a terminal's pins are
    electrically one node through its cell).  Contact is geometric:
    shared points between path geometries, or a pin lying on a path.
    """
    elements: list[_Element] = []
    for j, path in enumerate(tree.paths):
        if j != index:
            elements.append(("path", path))
    for terminal in net.terminals:
        elements.append(("terminal", terminal))

    parent = list(range(len(elements)))

    def find(i: int) -> int:
        while parent[i] != i:
            parent[i] = parent[parent[i]]
            i = parent[i]
        return i

    def union(i: int, j: int) -> None:
        ri, rj = find(i), find(j)
        if ri != rj:
            parent[rj] = ri

    for i in range(len(elements)):
        for j in range(i + 1, len(elements)):
            if _touch(elements[i], elements[j]):
                union(i, j)

    by_root: dict[int, list[_Element]] = {}
    for i, element in enumerate(elements):
        by_root.setdefault(find(i), []).append(element)
    return list(by_root.values())


def _geometry(element: _Element) -> list[Segment]:
    kind, payload = element
    if kind == "path":
        path = payload
        if len(path.points) == 1:
            return [Segment(path.points[0], path.points[0])]
        return list(path.segments)
    terminal = payload
    return [Segment(pin.location, pin.location) for pin in terminal.pins]


def _touch(a: _Element, b: _Element) -> bool:
    if a[0] == "terminal" and b[0] == "terminal":
        return False  # distinct terminals never touch electrically
    for seg_a in _geometry(a):
        for seg_b in _geometry(b):
            if seg_a.intersects(seg_b):
                return True
    return False


def _component_points(component: list[_Element]):
    """Candidate bridge start points: pins and path bend points."""
    points = []
    seen = set()
    for kind, payload in component:
        if kind == "terminal":
            candidates = payload.locations
        else:
            candidates = payload.points
        for p in candidates:
            if p not in seen:
                seen.add(p)
                points.append(p)
    return points


def _component_targets(component: list[_Element]) -> Optional[TargetSet]:
    points = []
    segments = []
    for kind, payload in component:
        if kind == "terminal":
            points.extend(payload.locations)
        else:
            if len(payload.points) == 1:
                points.append(payload.points[0])
            else:
                segments.extend(payload.segments)
    if not points and not segments:
        return None
    return TargetSet(points=points, segments=segments)
