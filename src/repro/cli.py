"""Command-line interface.

Three subcommands cover the library's everyday use without writing
Python:

``generate``
    Produce a random general-cell layout as JSON.
``route``
    Globally route a layout JSON; optionally run the congestion
    two-pass or the negotiated rip-up-and-reroute loop (with parallel
    net fan-out) and the detailed phase; print the summary; optionally
    write ASCII art and/or SVG.
``render``
    ASCII-render a layout JSON (with no routing).

Example::

    python -m repro generate --cells 12 --nets 10 --seed 7 -o chip.json
    python -m repro route chip.json --two-pass --detail --svg chip.svg
    python -m repro route chip.json --negotiate 20 --workers 4
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from repro.core.escape import EscapeMode
from repro.core.negotiate import NegotiationConfig
from repro.core.router import GlobalRouter, RouterConfig
from repro.detail.detailed import DetailedRouter
from repro.errors import ReproError
from repro.layout.generators import LayoutSpec, random_layout
from repro.layout.io import layout_from_json, layout_to_json
from repro.layout.layout import Layout
from repro.layout.validate import validate_layout
from repro.analysis.metrics import summarize_route
from repro.analysis.render import render_layout
from repro.analysis.svg import layout_to_svg, save_svg
from repro.analysis.tables import format_table
from repro.analysis.verify import verify_global_route


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument schema (exposed for tests and docs)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Gridless line-search A* global routing for general cells "
        "(Clow, DAC 1984).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    gen = sub.add_parser("generate", help="generate a random layout JSON")
    gen.add_argument("--cells", type=int, default=10)
    gen.add_argument("--nets", type=int, default=10)
    gen.add_argument("--seed", type=int, default=0)
    gen.add_argument("--terminals", type=int, nargs=2, default=(2, 3),
                     metavar=("MIN", "MAX"))
    gen.add_argument("--pins", type=int, nargs=2, default=(1, 1),
                     metavar=("MIN", "MAX"))
    gen.add_argument("-o", "--output", default="-",
                     help="output path ('-' for stdout)")

    route = sub.add_parser("route", help="route a layout JSON")
    route.add_argument("layout", help="layout JSON path ('-' for stdin)")
    route.add_argument("--mode", choices=["full", "aggressive"], default="full")
    route.add_argument("--inverted-corner", action="store_true",
                       help="enable the Figure 2 epsilon")
    route.add_argument("--refine", action="store_true",
                       help="rip-up-and-reconnect refinement per net")
    route.add_argument("--two-pass", action="store_true",
                       help="congestion-penalized second pass")
    route.add_argument("--passes", type=int, default=2,
                       help="repasses for --two-pass (default 2)")
    route.add_argument("--negotiate", type=int, default=0, metavar="N",
                       help="negotiated rip-up-and-reroute with at most N "
                            "iterations (0 disables; excludes --two-pass)")
    route.add_argument("--workers", type=int, default=1, metavar="K",
                       help="parallel net fan-out over K worker processes "
                            "(default 1 = serial)")
    route.add_argument("--detail", action="store_true",
                       help="also run the detailed router")
    route.add_argument("--report", action="store_true",
                       help="print the full engineering report")
    route.add_argument("--ascii", action="store_true", help="print ASCII art")
    route.add_argument("--svg", metavar="PATH", help="write an SVG")
    route.add_argument("--skip-unroutable", action="store_true",
                       help="record failures instead of aborting")

    render = sub.add_parser("render", help="ASCII-render a layout JSON")
    render.add_argument("layout")
    render.add_argument("--width", type=int, default=78)
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    try:
        if args.command == "generate":
            return _cmd_generate(args)
        if args.command == "route":
            return _cmd_route(args)
        return _cmd_render(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


def _cmd_generate(args: argparse.Namespace) -> int:
    spec = LayoutSpec(
        n_cells=args.cells,
        n_nets=args.nets,
        terminals_per_net=tuple(args.terminals),
        pins_per_terminal=tuple(args.pins),
    )
    layout = random_layout(spec, seed=args.seed)
    validate_layout(layout)
    text = layout_to_json(layout)
    if args.output == "-":
        print(text)
    else:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(text)
        print(
            f"wrote {args.output}: {len(layout.cells)} cells, "
            f"{len(layout.nets)} nets",
            file=sys.stderr,
        )
    return 0


def _load_layout(path: str) -> Layout:
    if path == "-":
        return layout_from_json(sys.stdin.read())
    with open(path, "r", encoding="utf-8") as handle:
        return layout_from_json(handle.read())


def _cmd_route(args: argparse.Namespace) -> int:
    if args.two_pass and args.negotiate:
        raise ReproError("--two-pass and --negotiate are mutually exclusive")
    if args.workers < 1:
        raise ReproError(f"--workers must be >= 1, got {args.workers}")
    layout = _load_layout(args.layout)
    validate_layout(layout)
    config = RouterConfig(
        mode=EscapeMode.FULL if args.mode == "full" else EscapeMode.AGGRESSIVE,
        inverted_corner=args.inverted_corner,
        refine=args.refine,
        workers=args.workers,
    )
    router = GlobalRouter(layout, config)
    on_unroutable = "skip" if args.skip_unroutable else "raise"

    if args.two_pass:
        result = router.route_two_pass(passes=args.passes, on_unroutable=on_unroutable)
        route = result.final
        print(
            f"two-pass: overflow {result.congestion_before.total_overflow} -> "
            f"{result.congestion_after.total_overflow}, "
            f"{len(result.rerouted_nets)} nets rerouted"
        )
    elif args.negotiate:
        result = router.route_negotiated(
            NegotiationConfig(max_iterations=args.negotiate),
            on_unroutable=on_unroutable,
        )
        route = result.final
        rows = [
            [
                it.iteration,
                it.overflowed_passages,
                it.total_overflow,
                it.max_overflow,
                it.wirelength,
                it.rerouted,
                f"{it.elapsed_seconds * 1e3:.1f}",
            ]
            for it in result.iterations
        ]
        print(format_table(
            ["iter", "passages over", "overflow", "max", "wirelength",
             "rerouted", "t ms"],
            rows,
            title="negotiated congestion",
        ))
        status = "converged" if result.converged else "budget exhausted"
        print(
            f"negotiation {status}: overflow "
            f"{result.congestion_before.total_overflow} -> "
            f"{result.congestion_after.total_overflow}, "
            f"{len(result.rerouted_nets)} nets rerouted"
        )
    else:
        route = router.route_all(on_unroutable=on_unroutable)

    violations = verify_global_route(route, layout)
    detailed = None
    if args.detail:
        detailed = DetailedRouter(layout).run(route)

    if args.report:
        from repro.analysis.report import routing_report

        print(routing_report(layout, route, detailed=detailed))
    else:
        summary = summarize_route(route, layout)
        print(format_table(list(summary.as_row().keys()), [summary.as_row()],
                           title="global routing"))
        if route.failed_nets:
            print("failed nets:", ", ".join(route.failed_nets))
        if detailed is not None:
            print()
            print(format_table(
                ["channels", "tracks", "vias", "wirelength", "conflicts", "overcap"],
                [[detailed.channel_count, detailed.track_total, detailed.via_count,
                  detailed.total_wirelength, detailed.conflict_count,
                  detailed.over_capacity_channels]],
                title="detailed routing",
            ))
    if violations:
        print(f"verification violations in {len(violations)} nets!", file=sys.stderr)
        return 2

    if args.ascii:
        print()
        print(render_layout(layout, route))
    if args.svg:
        save_svg(args.svg, layout_to_svg(layout, route, detailed=detailed))
        print(f"wrote {args.svg}", file=sys.stderr)
    return 0


def _cmd_render(args: argparse.Namespace) -> int:
    layout = _load_layout(args.layout)
    print(render_layout(layout, width=args.width))
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
