"""Command-line interface — a thin shim over :mod:`repro.api`.

Six subcommands cover the library's everyday use without writing
Python:

``generate``
    Produce a random general-cell layout as JSON.
``route``
    Build a :class:`~repro.api.request.RouteRequest` (from flags, or
    from a request JSON file via ``--request``), run it through the
    :class:`~repro.api.pipeline.RoutingPipeline`, and render the
    :class:`~repro.api.result.RouteResult` (tables, ASCII art, SVG,
    and/or ``--json-out`` result JSON).
``strategies``
    List the registered routing strategies and their typed parameter
    schemas (``--json`` for the machine-readable form).
``conformance``
    Run the differential conformance harness: every scenario of the
    checked-in corpus through every strategy × config-toggle
    combination, with oracle verification, byte-identity checks, and
    cross-strategy tolerance bands (see ``docs/scenarios.md``).
``serve``
    Run the routing service: a stdlib HTTP server over an async job
    queue with admission control and a content-addressed result cache
    (see ``docs/service.md``).
``render``
    ASCII-render a layout JSON (with no routing).

Example::

    python -m repro generate --cells 12 --nets 10 --seed 7 -o chip.json
    python -m repro route chip.json --strategy two-pass --detail --svg chip.svg
    python -m repro route chip.json --strategy timing-driven --workers 4
    python -m repro route --request request.json --json-out result.json
    python -m repro strategies --json
    python -m repro conformance --quick --json-out conformance_report.json
    python -m repro serve --port 8080 --workers 4 --queue-limit 64

The historical ``--two-pass`` / ``--negotiate N`` aliases were removed
after a long deprecation; spell the strategy with ``--strategy``.
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from repro.api import RouteRequest, RouteResult, RoutingPipeline
from repro.api.strategies import BUILTIN_STRATEGIES
from repro.core.escape import EscapeMode
from repro.core.router import RouterConfig
from repro.errors import ReproError
from repro.layout.generators import LayoutSpec, random_layout
from repro.layout.io import layout_from_json, layout_to_json
from repro.layout.layout import Layout
from repro.layout.validate import validate_layout
from repro.analysis.render import render_layout
from repro.analysis.svg import layout_to_svg, save_svg
from repro.analysis.tables import format_table


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument schema (exposed for tests and docs)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Gridless line-search A* global routing for general cells "
        "(Clow, DAC 1984).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    gen = sub.add_parser("generate", help="generate a random layout JSON")
    gen.add_argument("--cells", type=int, default=10)
    gen.add_argument("--nets", type=int, default=10)
    gen.add_argument("--seed", type=int, default=0)
    gen.add_argument("--terminals", type=int, nargs=2, default=(2, 3),
                     metavar=("MIN", "MAX"))
    gen.add_argument("--pins", type=int, nargs=2, default=(1, 1),
                     metavar=("MIN", "MAX"))
    gen.add_argument("-o", "--output", default="-",
                     help="output path ('-' for stdout)")

    route = sub.add_parser("route", help="route a layout JSON")
    route.add_argument("layout", nargs="?", default=None,
                       help="layout JSON path ('-' for stdin); omit with --request")
    route.add_argument("--request", metavar="PATH", dest="request",
                       help="RouteRequest JSON file ('-' for stdin); replaces "
                            "the layout argument and the routing flags")
    route.add_argument("--json-out", metavar="PATH",
                       help="write the RouteResult JSON ('-' for stdout)")
    route.add_argument("--strategy", choices=list(BUILTIN_STRATEGIES), default=None,
                       help="congestion strategy (default: single)")
    route.add_argument("--mode", choices=["full", "aggressive"], default="full")
    route.add_argument("--inverted-corner", action="store_true",
                       help="enable the Figure 2 epsilon")
    route.add_argument("--refine", action="store_true",
                       help="rip-up-and-reconnect refinement per net")
    route.add_argument("--passes", type=int, default=2,
                       help="repasses for the two-pass strategy (default 2)")
    route.add_argument("--workers", type=int, default=1, metavar="K",
                       help="parallel net fan-out over K worker processes "
                            "(default 1 = serial)")
    route.add_argument("--detail", action="store_true",
                       help="also run the detailed router")
    route.add_argument("--no-verify", action="store_true",
                       help="skip the independent route verification")
    route.add_argument("--report", action="store_true",
                       help="print the full engineering report")
    route.add_argument("--ascii", action="store_true", help="print ASCII art")
    route.add_argument("--svg", metavar="PATH", help="write an SVG")
    route.add_argument("--skip-unroutable", action="store_true",
                       help="record failures instead of aborting")

    strategies = sub.add_parser(
        "strategies",
        help="list registered strategies and their parameter schemas",
    )
    strategies.add_argument("--json", action="store_true",
                            help="emit the machine-readable describe() document")

    conf = sub.add_parser(
        "conformance",
        help="run the scenario corpus through the strategy x toggle matrix",
    )
    conf.add_argument("--corpus", metavar="DIR", default=None,
                      help="scenario corpus directory (default: the checked-in "
                           "scenarios/ corpus)")
    conf.add_argument("--quick", action="store_true",
                      help="baseline + one flip per toggle instead of the full "
                           "2x2x2 matrix")
    conf.add_argument("--only", action="append", metavar="PATTERN", default=None,
                      help="restrict to scenario names matching the glob "
                           "(repeatable)")
    conf.add_argument("--strategies", nargs="+", metavar="NAME", default=None,
                      help="strategy subset (default: single two-pass negotiated)")
    conf.add_argument("--incremental", action="store_true",
                      help="also replay the scripted layout deltas through "
                           "reroute at every matrix point (incremental-* checks)")
    conf.add_argument("--json-out", metavar="PATH",
                      help="write the conformance report JSON ('-' for stdout)")
    conf.add_argument("--write-corpus", action="store_true",
                      help="regenerate the corpus files from the recipes and exit")

    serve = sub.add_parser(
        "serve",
        help="run the routing service (stdlib HTTP over the async job queue)",
    )
    serve.add_argument("--host", default="127.0.0.1",
                       help="bind address (default 127.0.0.1)")
    serve.add_argument("--port", type=int, default=8080,
                       help="bind port (0 picks an ephemeral port; default 8080)")
    serve.add_argument("--workers", type=int, default=2, metavar="K",
                       help="concurrent routing runs (default 2)")
    serve.add_argument("--queue-limit", type=int, default=32, metavar="N",
                       help="admission window: max queued+running routing runs "
                            "before submissions get 429 (default 32)")
    serve.add_argument("--cache-size", type=int, default=256, metavar="N",
                       help="result-cache entries, keyed by canonical request "
                            "hash (0 disables reuse; default 256)")
    serve.add_argument("--executor", choices=["thread", "process"],
                       default="thread",
                       help="worker tier: 'thread' routes on the dispatch "
                            "threads (GIL-bound), 'process' routes in a "
                            "crash-tolerant process pool (default thread)")
    serve.add_argument("--store", default="memory", metavar="SPEC",
                       help="result/job store: 'memory' (default) or "
                            "'sqlite:PATH' — sqlite survives restarts, "
                            "shares cached results across frontends, and "
                            "re-queues unfinished jobs at startup")
    serve.add_argument("--verbose", action="store_true",
                       help="log every HTTP exchange to stderr")

    render = sub.add_parser("render", help="ASCII-render a layout JSON")
    render.add_argument("layout")
    render.add_argument("--width", type=int, default=78)
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    try:
        if args.command == "generate":
            return _cmd_generate(args)
        if args.command == "route":
            return _cmd_route(args)
        if args.command == "strategies":
            return _cmd_strategies(args)
        if args.command == "conformance":
            return _cmd_conformance(args)
        if args.command == "serve":
            return _cmd_serve(args)
        return _cmd_render(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


def _cmd_generate(args: argparse.Namespace) -> int:
    spec = LayoutSpec(
        n_cells=args.cells,
        n_nets=args.nets,
        terminals_per_net=tuple(args.terminals),
        pins_per_terminal=tuple(args.pins),
    )
    layout = random_layout(spec, seed=args.seed)
    validate_layout(layout)
    text = layout_to_json(layout)
    if args.output == "-":
        print(text)
    else:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(text)
        print(
            f"wrote {args.output}: {len(layout.cells)} cells, "
            f"{len(layout.nets)} nets",
            file=sys.stderr,
        )
    return 0


def _read_text(path: str) -> str:
    if path == "-":
        return sys.stdin.read()
    with open(path, "r", encoding="utf-8") as handle:
        return handle.read()


def _load_layout(path: str) -> Layout:
    return layout_from_json(_read_text(path))


def _strategy_from_flags(args: argparse.Namespace) -> tuple[str, dict]:
    """Map the strategy flags to (name, params)."""
    name = args.strategy or "single"
    params: dict = {}
    if name == "two-pass":
        params["passes"] = args.passes
    return name, params


def _request_from_flags(args: argparse.Namespace) -> RouteRequest:
    """Build a :class:`RouteRequest` from the route subcommand's flags."""
    strategy, params = _strategy_from_flags(args)
    config = RouterConfig(
        mode=EscapeMode.FULL if args.mode == "full" else EscapeMode.AGGRESSIVE,
        inverted_corner=args.inverted_corner,
        refine=args.refine,
        workers=args.workers,
    )
    return RouteRequest(
        layout=_load_layout(args.layout),
        config=config,
        strategy=strategy,
        strategy_params=params,
        on_unroutable="skip" if args.skip_unroutable else "raise",
        verify=not args.no_verify,
        detail=args.detail,
        report=args.report,
    )


#: Route flags that configure the request itself; with --request they
#: are set in the request file, so passing them too is a conflict (the
#: output-only flags --ascii/--svg/--json-out still apply).
_REQUEST_CONFLICT_FLAGS = (
    ("strategy", None), ("mode", "full"), ("inverted_corner", False),
    ("refine", False), ("passes", 2),
    ("workers", 1), ("skip_unroutable", False), ("no_verify", False),
    ("detail", False), ("report", False),
)


def _cmd_route(args: argparse.Namespace) -> int:
    if args.request is not None:
        if args.layout is not None:
            raise ReproError("give either a layout argument or --request, not both")
        overridden = [
            name for name, default in _REQUEST_CONFLICT_FLAGS
            if getattr(args, name) != default
        ]
        if overridden:
            flags = ", ".join("--" + name.replace("_", "-") for name in overridden)
            raise ReproError(
                f"{flags}: set these in the request file, not alongside --request"
            )
        request = RouteRequest.from_json(_read_text(args.request))
    else:
        if args.layout is None:
            raise ReproError("a layout argument (or --request) is required")
        request = _request_from_flags(args)

    layout = request.resolve_layout()
    result = RoutingPipeline().run(request, layout=layout)
    # With --json-out - the machine-readable document owns stdout; the
    # human-facing rendering would corrupt it, so it is skipped.
    if args.json_out != "-":
        _render_result(args, request, layout, result)

    if args.json_out:
        text = result.to_json()
        if args.json_out == "-":
            print(text)
        else:
            with open(args.json_out, "w", encoding="utf-8") as handle:
                handle.write(text + "\n")
            print(f"wrote {args.json_out}", file=sys.stderr)

    if result.violations:
        print(
            f"verification violations in {len(result.violations)} nets!",
            file=sys.stderr,
        )
        return 2
    return 0


def _render_result(
    args: argparse.Namespace,
    request: RouteRequest,
    layout: Layout,
    result: RouteResult,
) -> None:
    """Print the human-facing views of one result."""
    route = result.route
    if result.strategy == "two-pass":
        print(
            f"two-pass: overflow {result.congestion_before.total_overflow} -> "
            f"{result.congestion_after.total_overflow}, "
            f"{len(result.rerouted_nets)} nets rerouted"
        )
    elif result.strategy == "negotiated":
        rows = [
            [
                it.iteration,
                it.overflowed_passages,
                it.total_overflow,
                it.max_overflow,
                it.wirelength,
                it.rerouted,
                f"{it.elapsed_seconds * 1e3:.1f}",
            ]
            for it in result.iterations
        ]
        print(format_table(
            ["iter", "passages over", "overflow", "max", "wirelength",
             "rerouted", "t ms"],
            rows,
            title="negotiated congestion",
        ))
        status = "converged" if result.converged else "budget exhausted"
        print(
            f"negotiation {status}: overflow "
            f"{result.congestion_before.total_overflow} -> "
            f"{result.congestion_after.total_overflow}, "
            f"{len(result.rerouted_nets)} nets rerouted"
        )
    elif result.strategy == "timing-driven" and result.timing is not None:
        timing = result.timing
        status = "converged" if result.converged else "budget exhausted"
        worst = timing.worst_net
        print(
            f"timing-driven {status}: overflow "
            f"{result.congestion_before.total_overflow} -> "
            f"{result.congestion_after.total_overflow}, "
            f"worst delay {timing.worst_delay:g}"
            + (f" ({worst})" if worst else "")
            + f", {len(result.rerouted_nets)} nets rerouted"
        )

    if request.report:
        from repro.analysis.report import routing_report

        print(routing_report(layout, route, detailed=result.detailed))
    else:
        print(format_table(
            list(result.summary.as_row().keys()), [result.summary.as_row()],
            title="global routing",
        ))
        if route.failed_nets:
            print("failed nets:", ", ".join(route.failed_nets))
        if result.detail_summary is not None:
            d = result.detail_summary
            print()
            print(format_table(
                ["channels", "tracks", "vias", "wirelength", "conflicts", "overcap"],
                [[d.channels, d.tracks, d.vias, d.wirelength, d.conflicts,
                  d.over_capacity_channels]],
                title="detailed routing",
            ))

    if args.ascii:
        print()
        print(render_layout(layout, route))
    if args.svg:
        save_svg(args.svg, layout_to_svg(layout, route, detailed=result.detailed))
        print(f"wrote {args.svg}", file=sys.stderr)


def _cmd_strategies(args: argparse.Namespace) -> int:
    """List the registered strategies and their parameter schemas."""
    import json

    from repro.api import DEFAULT_REGISTRY

    described = DEFAULT_REGISTRY.describe()
    if args.json:
        print(json.dumps(described, indent=2, sort_keys=True))
        return 0
    rows = []
    for name, info in sorted(described.items()):
        params = info.get("params")
        if params:
            spec = ", ".join(
                f"{pname}: {row['type']}"
                + ("?" if row.get("optional") else "")
                + (f" = {row['default']}" if row.get("default") is not None else "")
                for pname, row in params.items()
            )
        else:
            spec = "(no declared schema)"
        rows.append([name, info.get("description") or "", spec])
    print(format_table(["strategy", "description", "params"], rows,
                       title="registered strategies"))
    return 0


def _cmd_conformance(args: argparse.Namespace) -> int:
    """Run the differential conformance harness over the corpus."""
    import fnmatch

    from repro.scenarios import (
        DEFAULT_CORPUS_DIR,
        FULL_MATRIX,
        QUICK_MATRIX,
        load_corpus,
        run_conformance,
        write_corpus,
    )

    corpus_dir = args.corpus if args.corpus is not None else DEFAULT_CORPUS_DIR
    if args.write_corpus:
        # The run-shaping flags have no meaning when only regenerating
        # files; dropping them silently would look like they worked.
        ignored = [
            flag for flag, value in (
                ("--quick", args.quick), ("--only", args.only),
                ("--strategies", args.strategies), ("--json-out", args.json_out),
                ("--incremental", args.incremental),
            ) if value
        ]
        if ignored:
            raise ReproError(
                f"{', '.join(ignored)}: incompatible with --write-corpus "
                f"(it always rewrites the full default corpus)"
            )
        paths = write_corpus(corpus_dir)
        print(f"wrote {len(paths)} scenario files under {corpus_dir}", file=sys.stderr)
        return 0

    scenarios = load_corpus(corpus_dir)
    if args.only:
        scenarios = [
            s for s in scenarios
            if any(fnmatch.fnmatch(s.name, pattern) for pattern in args.only)
        ]
        if not scenarios:
            raise ReproError(f"no corpus scenarios match {args.only}")
    matrix = QUICK_MATRIX if args.quick else FULL_MATRIX
    report = run_conformance(
        scenarios, strategies=args.strategies, matrix=matrix,
        incremental=args.incremental,
    )

    if args.json_out != "-":
        rows = []
        for scenario in scenarios:
            checks = [c for c in report.checks if c.scenario == scenario.name]
            cases = [c for c in report.cases if c.scenario == scenario.name]
            rows.append([
                scenario.name,
                scenario.family,
                len(cases),
                sum(1 for c in checks if c.ok),
                sum(1 for c in checks if not c.ok),
                f"{sum(c.elapsed_seconds for c in cases):.2f}",
            ])
        print(format_table(
            ["scenario", "family", "cases", "checks ok", "failed", "route s"],
            rows,
            title=f"conformance ({'quick' if args.quick else 'full'} matrix)",
        ))
        for failure in report.failures():
            print(
                f"FAIL [{failure.kind}] {failure.scenario}/{failure.strategy}: "
                f"{failure.detail}"
            )
        print(report.summary())

    if args.json_out:
        text = report.to_json()
        if args.json_out == "-":
            print(text)
        else:
            with open(args.json_out, "w", encoding="utf-8") as handle:
                handle.write(text + "\n")
            print(f"wrote {args.json_out}", file=sys.stderr)
    return 0 if report.ok else 2


def _cmd_serve(args: argparse.Namespace) -> int:
    """Run the routing service until interrupted (SIGINT/SIGTERM)."""
    import json
    import signal
    import threading

    from repro.service import RoutingService, make_server

    service = RoutingService(
        workers=args.workers,
        queue_limit=args.queue_limit,
        cache_size=args.cache_size,
        executor=args.executor,
        store=args.store,
    )
    server = make_server(
        service, host=args.host, port=args.port, quiet=not args.verbose
    )
    host, port = server.server_address[:2]
    recovered = service.metrics.snapshot()["recovered"]
    if recovered:
        print(
            f"repro service recovered {recovered} unfinished job(s) from "
            f"the previous run",
            file=sys.stderr,
            flush=True,
        )
    # Flushed eagerly so supervisors (and the CI smoke job) watching
    # stderr see the bound port before the first request arrives.
    print(
        f"repro service listening on http://{host}:{port} "
        f"(workers={args.workers}, queue-limit={args.queue_limit}, "
        f"cache-size={args.cache_size}, executor={args.executor}, "
        f"store={args.store}); Ctrl-C to stop",
        file=sys.stderr,
        flush=True,
    )

    # SIGTERM must shut down as cleanly as Ctrl-C: supervisors (and
    # shells running the server as a background job, where SIGINT is
    # ignored) stop daemons with TERM.  serve_forever cannot be
    # re-entered after shutdown(), which itself must not run on the
    # serving thread — hand it to a helper thread.
    def _graceful_shutdown(signum, frame):  # noqa: ARG001 - stdlib handler signature
        print("repro service shutting down", file=sys.stderr, flush=True)
        threading.Thread(target=server.shutdown, daemon=True).start()

    previous_term = signal.signal(signal.SIGTERM, _graceful_shutdown)
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        print("repro service shutting down", file=sys.stderr, flush=True)
    finally:
        signal.signal(signal.SIGTERM, previous_term)
        server.server_close()
        service.close()
        final = service.snapshot()
        print(
            "repro service final metrics: "
            + json.dumps(
                {
                    key: final[key]
                    for key in (
                        "requests", "completed", "failed", "cache_hits",
                        "coalesced", "rejected", "recovered",
                        "worker_restarts", "job_retries",
                    )
                }
            ),
            file=sys.stderr,
            flush=True,
        )
    return 0


def _cmd_render(args: argparse.Namespace) -> int:
    layout = _load_layout(args.layout)
    print(render_layout(layout, width=args.width))
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
