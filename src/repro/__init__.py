"""repro — gridless line-search A* global routing for general cells.

A full reproduction of Gary W. Clow, "A Global Routing Algorithm for
General Cells", 21st Design Automation Conference, 1984.

The top-level namespace re-exports the public API; subpackages:

* :mod:`repro.geometry` — exact rectilinear geometry and ray tracing.
* :mod:`repro.layout` — cells, pins, terminals, nets, generators, I/O.
* :mod:`repro.search` — the OPEN/CLOSED search family (DFS, BFS,
  best-first, A*).
* :mod:`repro.core` — the paper's router: escape-point successor
  generation, generalized cost functions, Steiner trees, congestion
  two-pass, :class:`~repro.core.router.GlobalRouter`.
* :mod:`repro.baselines` — Lee–Moore, grid A*, Hightower, sequential.
* :mod:`repro.detail` — dynamic-channel detailed routing.
* :mod:`repro.analysis` — metrics, verification, rendering.
* :mod:`repro.api` — the canonical public surface: ``RouteRequest`` →
  :class:`~repro.api.pipeline.RoutingPipeline` → ``RouteResult``, the
  pluggable strategy registry, and the ``route_many`` batch facade.
* :mod:`repro.incremental` — incremental re-routing: JSON-round-
  trippable layout deltas, the kept/ripped/new dirty-set classifier,
  and warm-started engines behind ``RoutingPipeline.reroute``.
* :mod:`repro.scenarios` — named seeded scenario families, the
  checked-in ``scenarios/`` corpus, and the differential conformance
  runner over every strategy × config-toggle combination.
* :mod:`repro.service` — routing as a service: async job queue with
  admission control, content-addressed result cache, stdlib HTTP
  server (``python -m repro serve``), and the matching client.
"""

from repro.errors import (
    GeometryError,
    LayoutError,
    QueueFullError,
    ReproError,
    RoutingError,
    SearchError,
    ServiceError,
    UnroutableError,
    ValidationError,
)
from repro.geometry import Direction, Interval, ObstacleSet, OrthoPolygon, Point, Rect, Segment
from repro.layout import (
    Cell,
    Layout,
    LayoutSpec,
    Net,
    Pin,
    Terminal,
    grid_layout,
    random_layout,
    validate_layout,
)
from repro.search import Order, SearchProblem, SearchStats, search
from repro.core import (
    CongestionHistory,
    CongestionMap,
    CostModel,
    EscapeMode,
    GlobalRoute,
    GlobalRouter,
    InvertedCornerCost,
    IterationStats,
    NegotiatedCongestionCost,
    NegotiatedRouter,
    NegotiationConfig,
    NegotiationResult,
    NetTiming,
    PathRequest,
    RoutePath,
    RouteTree,
    RouterConfig,
    TargetSet,
    TimingAnalysis,
    TimingConfig,
    TimingDrivenCost,
    TimingDrivenRouter,
    TimingResult,
    WirelengthCost,
    analyze_route_timing,
    find_path,
    route_net,
)
from repro.baselines import (
    SequentialRouter,
    grid_astar_route,
    hightower_route,
    lee_moore_route,
    route_with_fallback,
)
from repro.detail import DetailedResult, DetailedRouter
from repro.analysis import (
    render_expansion,
    render_layout,
    summarize_route,
    verify_global_route,
)
from repro.incremental import (
    CellMove,
    DirtySet,
    LayoutDelta,
    apply_delta,
    classify_nets,
    compose_deltas,
    plan_reroute,
)
from repro.api import (
    Batch,
    BatchError,
    CongestionSummary,
    DetailSummary,
    RerouteRequest,
    RouteRequest,
    RouteResult,
    RoutingPipeline,
    StrategyOutcome,
    StrategyParamError,
    StrategyRegistry,
    layout_fingerprint,
    register_strategy,
    request_cache_key,
    reroute,
    reroute_cache_key,
    route_many,
)
from repro.scenarios import (
    Scenario,
    build_scenario,
    load_corpus,
    run_conformance,
)
from repro.service import (
    Client,
    ResultCache,
    RoutingService,
    make_server,
)

__version__ = "1.0.0"

__all__ = [
    "Batch",
    "BatchError",
    "Cell",
    "CellMove",
    "Client",
    "CongestionHistory",
    "CongestionMap",
    "CongestionSummary",
    "CostModel",
    "DetailSummary",
    "DetailedResult",
    "DetailedRouter",
    "Direction",
    "DirtySet",
    "EscapeMode",
    "GeometryError",
    "GlobalRoute",
    "GlobalRouter",
    "Interval",
    "InvertedCornerCost",
    "IterationStats",
    "Layout",
    "LayoutDelta",
    "LayoutError",
    "LayoutSpec",
    "NegotiatedCongestionCost",
    "NegotiatedRouter",
    "NegotiationConfig",
    "NegotiationResult",
    "Net",
    "NetTiming",
    "ObstacleSet",
    "Order",
    "OrthoPolygon",
    "PathRequest",
    "Pin",
    "Point",
    "QueueFullError",
    "Rect",
    "ReproError",
    "RerouteRequest",
    "ResultCache",
    "RoutePath",
    "RouteRequest",
    "RouteResult",
    "RouteTree",
    "RouterConfig",
    "RoutingError",
    "RoutingPipeline",
    "RoutingService",
    "Scenario",
    "SearchError",
    "SearchProblem",
    "SearchStats",
    "Segment",
    "SequentialRouter",
    "ServiceError",
    "StrategyOutcome",
    "StrategyParamError",
    "StrategyRegistry",
    "TargetSet",
    "Terminal",
    "TimingAnalysis",
    "TimingConfig",
    "TimingDrivenCost",
    "TimingDrivenRouter",
    "TimingResult",
    "UnroutableError",
    "ValidationError",
    "WirelengthCost",
    "analyze_route_timing",
    "apply_delta",
    "build_scenario",
    "classify_nets",
    "compose_deltas",
    "find_path",
    "grid_astar_route",
    "grid_layout",
    "hightower_route",
    "layout_fingerprint",
    "lee_moore_route",
    "load_corpus",
    "make_server",
    "plan_reroute",
    "random_layout",
    "register_strategy",
    "render_expansion",
    "render_layout",
    "request_cache_key",
    "reroute",
    "reroute_cache_key",
    "route_many",
    "route_net",
    "route_with_fallback",
    "run_conformance",
    "search",
    "summarize_route",
    "validate_layout",
    "verify_global_route",
]
