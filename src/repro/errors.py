"""Exception hierarchy for the :mod:`repro` package.

All library-specific errors derive from :class:`ReproError` so that
callers can catch everything raised by this package with one clause
while still being able to discriminate failure modes.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class GeometryError(ReproError):
    """Invalid geometric construction (non-rectilinear segment, bad rect...)."""


class LayoutError(ReproError):
    """Invalid layout model construction (duplicate names, bad references...)."""


class ValidationError(LayoutError):
    """A layout violates the paper's placement restrictions.

    The paper imposes three restrictions on block placement: blocks must
    be rectangular, oriented orthogonally, and placed a finite non-zero
    distance apart.
    """


class RoutingError(ReproError):
    """A routing phase failed for a reason other than unroutability."""


class UnroutableError(RoutingError):
    """No legal route exists (or none was found by an incomplete router).

    Attributes
    ----------
    partial:
        Optional partially-completed artifact (e.g. a route tree missing
        some terminals) useful for diagnostics.
    """

    def __init__(self, message: str, partial: object | None = None):
        super().__init__(message)
        self.partial = partial

    def __reduce__(self):
        # Default exception pickling would drop ``partial``; the
        # parallel router ships these across process boundaries.
        return (type(self), (self.args[0], self.partial))


class SearchError(ReproError):
    """The state-space search engine was misused or exhausted its limits."""


class ServiceError(ReproError):
    """The routing service rejected or failed a request.

    Attributes
    ----------
    status:
        The HTTP status code the failure maps to (``None`` when the
        error was raised outside an HTTP exchange).
    """

    def __init__(self, message: str, *, status: int | None = None):
        super().__init__(message)
        self.status = status


class QueueFullError(ServiceError):
    """The service's admission window is full (HTTP 429).

    Raised before a job is created: a rejected request is never
    enqueued, so acceptance is all-or-nothing — every job that *was*
    accepted still runs to a terminal state.
    """

    def __init__(self, message: str, *, status: int | None = 429):
        super().__init__(message, status=status)
