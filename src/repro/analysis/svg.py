"""SVG export of layouts, routes, detailed designs, and expansions.

Pure string construction — no dependencies — producing standalone SVG
files.  Coordinates flip y so the drawing matches the mathematical
orientation used everywhere else (y grows upward).
"""

from __future__ import annotations

from typing import Iterable, Optional

from repro.core.route import GlobalRoute
from repro.detail.detailed import DetailedResult
from repro.geometry.point import Point
from repro.layout.layout import Layout
from repro.search.stats import ExpansionTrace
from repro.analysis.expansion import trace_segments

_PALETTE = (
    "#1f77b4", "#d62728", "#2ca02c", "#9467bd", "#ff7f0e",
    "#8c564b", "#e377c2", "#17becf", "#bcbd22", "#7f7f7f",
)


def layout_to_svg(
    layout: Layout,
    route: Optional[GlobalRoute] = None,
    *,
    detailed: Optional[DetailedResult] = None,
    trace: Optional[ExpansionTrace] = None,
    marks: Iterable[tuple[Point, str]] = (),
    scale: int = 6,
) -> str:
    """Render to an SVG document string.

    Layers draw back to front: cells, expansion trace, global wires
    (colored per net), detailed wires (solid layer 1 / dashed layer 2),
    vias, pins, and text marks.
    """
    outline = layout.outline
    margin = 2 * scale
    width = outline.width * scale + 2 * margin
    height = outline.height * scale + 2 * margin

    def sx(x: int) -> float:
        return margin + (x - outline.x0) * scale

    def sy(y: int) -> float:
        return margin + (outline.y1 - y) * scale

    parts: list[str] = [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{width}" height="{height}" '
        f'viewBox="0 0 {width} {height}">',
        f'<rect x="{margin}" y="{margin}" width="{outline.width * scale}" '
        f'height="{outline.height * scale}" fill="#fcfcf7" stroke="#444"/>',
    ]

    for cell in layout.cells:
        for rect in cell.blocking_rects:
            parts.append(
                f'<rect x="{sx(rect.x0)}" y="{sy(rect.y1)}" '
                f'width="{rect.width * scale}" height="{rect.height * scale}" '
                f'fill="#d9d4c7" stroke="#7a7468"/>'
            )
        box = cell.bounding_box
        parts.append(
            f'<text x="{sx(box.center.x)}" y="{sy(box.center.y)}" font-size="{2 * scale}" '
            f'text-anchor="middle" fill="#55504a">{cell.name}</text>'
        )

    if trace is not None:
        for seg in trace_segments(trace):
            parts.append(
                f'<line x1="{sx(seg.a.x)}" y1="{sy(seg.a.y)}" x2="{sx(seg.b.x)}" '
                f'y2="{sy(seg.b.y)}" stroke="#b8cbe0" stroke-width="{scale / 3:.1f}"/>'
            )

    if route is not None:
        for index, (name, tree) in enumerate(sorted(route.trees.items())):
            color = _PALETTE[index % len(_PALETTE)]
            for seg in tree.segments:
                parts.append(
                    f'<line x1="{sx(seg.a.x)}" y1="{sy(seg.a.y)}" x2="{sx(seg.b.x)}" '
                    f'y2="{sy(seg.b.y)}" stroke="{color}" '
                    f'stroke-width="{scale / 2:.1f}" stroke-linecap="round">'
                    f"<title>{name}</title></line>"
                )

    if detailed is not None:
        net_color: dict[str, str] = {}
        for wire in detailed.layers.wires:
            color = net_color.setdefault(
                wire.net, _PALETTE[len(net_color) % len(_PALETTE)]
            )
            dash = "" if wire.layer == 1 else f' stroke-dasharray="{scale},{scale // 2 or 1}"'
            parts.append(
                f'<line x1="{sx(wire.seg.a.x)}" y1="{sy(wire.seg.a.y)}" '
                f'x2="{sx(wire.seg.b.x)}" y2="{sy(wire.seg.b.y)}" stroke="{color}" '
                f'stroke-width="{scale / 2:.1f}"{dash}><title>{wire.net} '
                f"L{wire.layer}</title></line>"
            )
        for via in detailed.layers.vias:
            parts.append(
                f'<rect x="{sx(via.at.x) - scale / 2:.1f}" y="{sy(via.at.y) - scale / 2:.1f}" '
                f'width="{scale}" height="{scale}" fill="#222"/>'
            )

    for pin in layout.iter_pins():
        parts.append(
            f'<circle cx="{sx(pin.location.x)}" cy="{sy(pin.location.y)}" '
            f'r="{scale / 1.5:.1f}" fill="#fff" stroke="#222"/>'
        )

    for point, label in marks:
        parts.append(
            f'<text x="{sx(point.x)}" y="{sy(point.y) - scale}" font-size="{3 * scale}" '
            f'text-anchor="middle" fill="#111" font-weight="bold">{label}</text>'
        )

    parts.append("</svg>")
    return "\n".join(parts)


def save_svg(path: str, svg_text: str) -> None:
    """Write an SVG document to *path*."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(svg_text)
