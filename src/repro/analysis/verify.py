"""Independent route validity checking.

These checkers share no code with the routers' own legality logic
beyond the geometry primitives, so a router bug cannot hide behind its
own definition of legality.  All checkers return a list of violation
strings (empty = valid); `strict=True` raises instead.
"""

from __future__ import annotations

from repro.errors import RoutingError
from repro.core.route import GlobalRoute, RoutePath, RouteTree
from repro.detail.detailed import DetailedResult
from repro.geometry.segment import Segment
from repro.layout.layout import Layout
from repro.layout.net import Net


def verify_path(path: RoutePath, layout: Layout) -> list[str]:
    """Check one connection path: inside the surface, outside cells."""
    violations: list[str] = []
    for point in path.points:
        if not layout.outline.contains_point(point):
            violations.append(f"point {point} outside routing surface")
    for seg in path.segments:
        for cell in layout.cells:
            for rect in cell.blocking_rects:
                if rect.segment_crosses_interior(seg):
                    violations.append(f"segment {seg} crosses cell {cell.name!r}")
    return violations


def verify_route_tree(tree: RouteTree, net: Net, layout: Layout) -> list[str]:
    """Check a routed net: geometry legality plus full connectivity.

    Connectivity is established independently: every terminal must have
    at least one pin in the single connected component formed by the
    tree's segments and points.
    """
    violations: list[str] = []
    for path in tree.paths:
        violations.extend(verify_path(path, layout))

    if set(tree.connected_terminals) != {t.name for t in net.terminals}:
        missing = {t.name for t in net.terminals} - set(tree.connected_terminals)
        violations.append(f"net {net.name!r}: terminals never connected: {sorted(missing)}")
        return violations

    violations.extend(_connectivity_violations(tree, net))
    return violations


def _connectivity_violations(tree: RouteTree, net: Net) -> list[str]:
    """Union-find over tree geometry; every terminal must reach the root."""
    elements: list[Segment] = list(tree.segments)
    # Zero-length connections contribute bare points.
    for path in tree.paths:
        if len(path.points) == 1:
            elements.append(Segment(path.points[0], path.points[0]))

    # Seed terminal pins participate as degenerate segments too.
    pin_elements: dict[str, list[int]] = {}
    for terminal in net.terminals:
        indices: list[int] = []
        for pin in terminal.pins:
            elements.append(Segment(pin.location, pin.location))
            indices.append(len(elements) - 1)
        pin_elements[terminal.name] = indices

    parent = list(range(len(elements)))

    def find(i: int) -> int:
        while parent[i] != i:
            parent[i] = parent[parent[i]]
            i = parent[i]
        return i

    def union(i: int, j: int) -> None:
        ri, rj = find(i), find(j)
        if ri != rj:
            parent[rj] = ri

    for i in range(len(elements)):
        for j in range(i + 1, len(elements)):
            if elements[i].intersects(elements[j]):
                union(i, j)

    # Pins of one terminal are electrically equivalent through their
    # cell ("logically grouped"), so they join even without wire
    # geometry between them.
    for indices in pin_elements.values():
        for first, second in zip(indices, indices[1:]):
            union(first, second)

    violations: list[str] = []
    # The component that contains any connected pin of the first
    # terminal is the tree; every terminal needs a pin in it.
    roots_by_terminal = {
        name: {find(i) for i in indices} for name, indices in pin_elements.items()
    }
    anchor_candidates = roots_by_terminal[net.terminals[0].name]
    # Choose the anchor root shared by the most terminals (a terminal
    # may have extra pins dangling off-tree, which is legal).
    best_anchor = None
    best_cover = -1
    for root in anchor_candidates:
        cover = sum(1 for roots in roots_by_terminal.values() if root in roots)
        if cover > best_cover:
            best_anchor, best_cover = root, cover
    for terminal in net.terminals:
        if best_anchor not in roots_by_terminal[terminal.name]:
            violations.append(
                f"net {net.name!r}: terminal {terminal.name!r} not electrically "
                f"connected to the tree"
            )
    return violations


def verify_global_route(
    route: GlobalRoute, layout: Layout, *, strict: bool = False
) -> dict[str, list[str]]:
    """Check every routed net; returns violations per net name.

    With ``strict=True`` raises :class:`RoutingError` on the first
    violating net.
    """
    report: dict[str, list[str]] = {}
    for name, tree in route.trees.items():
        violations = verify_route_tree(tree, layout.net(name), layout)
        if violations:
            report[name] = violations
    if strict and report:
        name, violations = next(iter(report.items()))
        raise RoutingError(f"invalid route for net {name!r}: {violations[0]}")
    return report


def verify_detailed(result: DetailedResult, layout: Layout) -> list[str]:
    """Check detailed wires: legality of every physical wire.

    Same-layer overlap conflicts are already recorded on the result;
    this adds the geometric checks (wires inside the surface, outside
    cell interiors) that the channel corridor logic must guarantee.
    """
    violations: list[str] = []
    for wire in result.layers.wires:
        for endpoint in (wire.seg.a, wire.seg.b):
            if not layout.outline.contains_point(endpoint):
                violations.append(f"wire {wire.seg} of {wire.net!r} leaves the surface")
                break
        for cell in layout.cells:
            for rect in cell.blocking_rects:
                if rect.segment_crosses_interior(wire.seg):
                    violations.append(
                        f"wire {wire.seg} of {wire.net!r} crosses cell {cell.name!r}"
                    )
    return violations


def assert_optimal_length(path: RoutePath, expected: int) -> None:
    """Test helper: path length must equal the oracle's *expected*.

    Raises :class:`RoutingError` on mismatch with both values in the
    message (used by the admissibility experiment).
    """
    if path.length != expected:
        raise RoutingError(f"path length {path.length} != oracle optimum {expected}")
