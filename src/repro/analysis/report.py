"""Full-flow text reports.

One call renders everything an engineer reviews after a routing run:
the layout's shape, the routing summary, per-net details, passage
congestion, and (optionally) the detailed-routing outcome — as plain
text built from the same primitives the benchmarks print.
"""

from __future__ import annotations

from typing import Optional

from repro.core.congestion import find_passages, measure_congestion
from repro.core.route import GlobalRoute
from repro.detail.detailed import DetailedResult
from repro.layout.layout import Layout
from repro.analysis.metrics import summarize_route
from repro.analysis.tables import format_table
from repro.analysis.verify import verify_global_route


def routing_report(
    layout: Layout,
    route: GlobalRoute,
    *,
    detailed: Optional[DetailedResult] = None,
    max_net_rows: int = 20,
    max_passage_rows: int = 8,
) -> str:
    """Render the complete report for a routed layout."""
    sections = [
        _layout_section(layout),
        _summary_section(layout, route),
        _nets_section(layout, route, max_net_rows),
        _congestion_section(layout, route, max_passage_rows),
    ]
    if detailed is not None:
        sections.append(_detail_section(detailed))
    violations = verify_global_route(route, layout)
    if violations:
        rows = [[name, vs[0]] for name, vs in sorted(violations.items())]
        sections.append(
            format_table(["net", "first violation"], rows, title="VERIFICATION FAILURES")
        )
    else:
        sections.append("verification: all routed nets legal and connected")
    return "\n\n".join(sections)


def _layout_section(layout: Layout) -> str:
    rows = [
        ["surface", str(layout.outline)],
        ["cells", len(layout.cells)],
        ["nets", len(layout.nets)],
        ["utilization", f"{layout.utilization:.3f}"],
        ["min cell separation", layout.min_cell_separation() or "-"],
    ]
    return format_table(["property", "value"], rows, title="layout")


def _summary_section(layout: Layout, route: GlobalRoute) -> str:
    summary = summarize_route(route, layout)
    return format_table(
        list(summary.as_row().keys()), [summary.as_row()], title="global routing"
    )


def _nets_section(layout: Layout, route: GlobalRoute, limit: int) -> str:
    rows = []
    ordered = sorted(
        route.trees.items(), key=lambda item: -item[1].total_length
    )[:limit]
    for name, tree in ordered:
        net = layout.net(name)
        rows.append(
            [
                name,
                len(net.terminals),
                net.pin_count,
                tree.total_length,
                tree.total_bends,
                f"{tree.total_length / net.hpwl:.2f}" if net.hpwl else "-",
            ]
        )
    title = f"nets by wirelength (top {len(rows)} of {route.routed_count})"
    table = format_table(
        ["net", "terminals", "pins", "length", "bends", "len/hpwl"], rows, title=title
    )
    if route.failed_nets:
        table += "\nfailed nets: " + ", ".join(route.failed_nets)
    return table


def _congestion_section(layout: Layout, route: GlobalRoute, limit: int) -> str:
    passages = find_passages(layout)
    if not passages:
        return "congestion: no inter-cell passages (fewer than two facing cells)"
    cmap = measure_congestion(passages, route)
    busiest = sorted(cmap.entries, key=lambda e: -e.utilization)[:limit]
    rows = [
        [
            "|".join(entry.passage.between),
            entry.passage.gap,
            entry.passage.capacity,
            entry.usage,
            f"{entry.utilization:.2f}",
        ]
        for entry in busiest
        if entry.usage > 0
    ]
    title = (
        f"congestion: {len(passages)} passages, total overflow "
        f"{cmap.total_overflow}, peak utilization {cmap.max_utilization:.2f}"
    )
    if not rows:
        return title + " (no passage carries any net)"
    return format_table(["passage", "gap", "capacity", "nets", "util"], rows, title=title)


def _detail_section(detailed: DetailedResult) -> str:
    rows = [
        ["dynamic channels", detailed.channel_count],
        ["tracks", detailed.track_total],
        ["wirelength", detailed.total_wirelength],
        ["vias", detailed.via_count],
        ["same-layer conflicts", detailed.conflict_count],
        ["over-capacity channels", detailed.over_capacity_channels],
    ]
    return format_table(["property", "value"], rows, title="detailed routing")
