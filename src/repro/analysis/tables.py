"""Plain-text table formatting for experiment output.

Every benchmark prints the series it reproduces; this keeps the
formatting in one place so the output reads like the tables a paper
would carry.
"""

from __future__ import annotations

from typing import Mapping, Sequence


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]] | Sequence[Mapping[str, object]],
    *,
    title: str | None = None,
) -> str:
    """Render an aligned monospace table.

    Rows may be sequences (positional) or mappings keyed by header.
    Numeric cells right-align; everything else left-aligns.
    """
    materialized: list[list[str]] = []
    for row in rows:
        if isinstance(row, Mapping):
            materialized.append([_cell(row.get(h, "")) for h in headers])
        else:
            materialized.append([_cell(v) for v in row])

    widths = [len(h) for h in headers]
    for row in materialized:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def fmt_row(cells: Sequence[str]) -> str:
        parts = []
        for i, cell in enumerate(cells):
            if _is_numeric(cell):
                parts.append(cell.rjust(widths[i]))
            else:
                parts.append(cell.ljust(widths[i]))
        return "  ".join(parts).rstrip()

    lines: list[str] = []
    if title:
        lines.append(title)
    lines.append(fmt_row(list(headers)))
    lines.append("  ".join("-" * w for w in widths))
    lines.extend(fmt_row(row) for row in materialized)
    return "\n".join(lines)


def _cell(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.3f}"
    return str(value)


def _is_numeric(text: str) -> bool:
    try:
        float(text.replace("x", "").replace("/", ""))
    except ValueError:
        return False
    return True
