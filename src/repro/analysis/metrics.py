"""Routing quality and effort metrics.

The paper's evaluation vocabulary is node counts, wirelength, and
phase CPU time; this module turns route objects into those numbers.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.route import GlobalRoute
from repro.layout.layout import Layout


@dataclass(frozen=True)
class RoutingSummary:
    """Aggregate report of one routing run."""

    nets_total: int
    nets_routed: int
    nets_failed: int
    total_length: int
    total_bends: int
    nodes_expanded: int
    nodes_generated: int
    elapsed_seconds: float
    length_over_hpwl: float

    @property
    def success_rate(self) -> float:
        """Routed fraction of attempted nets."""
        if self.nets_total == 0:
            return 1.0
        return self.nets_routed / self.nets_total

    def as_row(self) -> dict[str, object]:
        """Flatten for table printing."""
        return {
            "nets": f"{self.nets_routed}/{self.nets_total}",
            "length": self.total_length,
            "bends": self.total_bends,
            "expanded": self.nodes_expanded,
            "len/hpwl": f"{self.length_over_hpwl:.3f}",
            "time_s": f"{self.elapsed_seconds:.4f}",
        }

    def as_dict(self) -> dict[str, object]:
        """JSON-ready representation (used by :mod:`repro.api.result`)."""
        return {
            "nets_total": self.nets_total,
            "nets_routed": self.nets_routed,
            "nets_failed": self.nets_failed,
            "total_length": self.total_length,
            "total_bends": self.total_bends,
            "nodes_expanded": self.nodes_expanded,
            "nodes_generated": self.nodes_generated,
            "elapsed_seconds": self.elapsed_seconds,
            "length_over_hpwl": self.length_over_hpwl,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "RoutingSummary":
        """Inverse of :meth:`as_dict`."""
        return cls(
            nets_total=int(data["nets_total"]),
            nets_routed=int(data["nets_routed"]),
            nets_failed=int(data["nets_failed"]),
            total_length=int(data["total_length"]),
            total_bends=int(data["total_bends"]),
            nodes_expanded=int(data["nodes_expanded"]),
            nodes_generated=int(data["nodes_generated"]),
            elapsed_seconds=float(data["elapsed_seconds"]),
            length_over_hpwl=float(data["length_over_hpwl"]),
        )


def summarize_route(route: GlobalRoute, layout: Layout) -> RoutingSummary:
    """Build the aggregate report for *route* against *layout*."""
    attempted = len(route.trees) + len(route.failed_nets)
    return RoutingSummary(
        nets_total=attempted,
        nets_routed=route.routed_count,
        nets_failed=len(route.failed_nets),
        total_length=route.total_length,
        total_bends=route.total_bends,
        nodes_expanded=route.stats.nodes_expanded,
        nodes_generated=route.stats.nodes_generated,
        elapsed_seconds=route.stats.elapsed_seconds,
        length_over_hpwl=wirelength_ratio(route, layout),
    )


def wirelength_ratio(route: GlobalRoute, layout: Layout) -> float:
    """Routed length over the summed all-pin HPWL of routed nets.

    For single-pin terminals HPWL is a true lower bound, so the ratio
    is >= 1 with values slightly above 1 normal for obstacle-avoiding
    Steiner trees.  Multi-pin terminals can push the ratio below 1:
    the route may legally skip far-away equivalent pins that still
    widen the all-pin bounding box.  Returns 0.0 when nothing routed.
    """
    hpwl = sum(layout.net(name).hpwl for name in route.trees)
    if hpwl == 0:
        return 0.0
    return route.total_length / hpwl
