"""Expansion-trace utilities for the Figure 1 reproduction.

An :class:`~repro.search.stats.ExpansionTrace` records every expanded
state with its parent; joining each pair with a straight segment
recreates the tree of explored line segments that the paper's Figure 1
draws.
"""

from __future__ import annotations

from repro.geometry.point import Point
from repro.geometry.segment import Segment
from repro.search.stats import ExpansionTrace


def trace_segments(trace: ExpansionTrace) -> list[Segment]:
    """Explored tree edges: one segment per expanded child state.

    States that are not points (e.g. grid tuples) are converted when
    possible; entries without a parent (start states) contribute
    nothing.
    """
    segments: list[Segment] = []
    for state, parent in trace.entries:
        if parent is None:
            continue
        a = _as_point(parent)
        b = _as_point(state)
        if a is not None and b is not None and a != b:
            segments.append(Segment(a, b))
    return segments


def trace_points(trace: ExpansionTrace) -> list[Point]:
    """Expanded states as plane points, in expansion order."""
    points: list[Point] = []
    for state, _parent in trace.entries:
        p = _as_point(state)
        if p is not None:
            points.append(p)
    return points


def _as_point(state: object) -> Point | None:
    if isinstance(state, Point):
        return state
    if isinstance(state, tuple) and len(state) == 2 and all(
        isinstance(v, int) for v in state
    ):
        return Point(state[0], state[1])
    return None
