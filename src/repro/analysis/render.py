"""ASCII rendering of layouts, routes, and search expansions.

Terminal-friendly reproduction medium for the paper's figures: cells
are hatched blocks, wires are drawn with line characters, expansion
traces overlay as dots.  The renderer scales the plane down to a
character canvas, so it is schematic — exact coordinates live in the
SVG exporter.
"""

from __future__ import annotations

from typing import Iterable, Optional

from repro.core.route import GlobalRoute, RouteTree
from repro.geometry.point import Point
from repro.geometry.segment import Segment
from repro.layout.layout import Layout
from repro.search.stats import ExpansionTrace
from repro.analysis.expansion import trace_points, trace_segments

CELL_CHAR = "#"
WIRE_H = "-"
WIRE_V = "|"
WIRE_X = "+"
PIN_CHAR = "o"
EXPAND_CHAR = "."


class _Canvas:
    """A character raster mapped onto the layout outline."""

    def __init__(self, layout: Layout, width: int):
        self.layout = layout
        outline = layout.outline
        self.cols = max(20, width)
        aspect = outline.height / outline.width if outline.width else 1.0
        # Terminal cells are ~2x taller than wide; halve the row count.
        self.rows = max(10, int(self.cols * aspect * 0.5))
        self.grid = [[" "] * self.cols for _ in range(self.rows)]

    def col(self, x: int) -> int:
        outline = self.layout.outline
        if outline.width == 0:
            return 0
        frac = (x - outline.x0) / outline.width
        return min(self.cols - 1, max(0, round(frac * (self.cols - 1))))

    def row(self, y: int) -> int:
        outline = self.layout.outline
        if outline.height == 0:
            return 0
        frac = (y - outline.y0) / outline.height
        # Row 0 is the top of the printout.
        return min(self.rows - 1, max(0, (self.rows - 1) - round(frac * (self.rows - 1))))

    def put(self, x: int, y: int, char: str, *, overwrite: bool = True) -> None:
        r, c = self.row(y), self.col(x)
        if overwrite or self.grid[r][c] == " ":
            self.grid[r][c] = char

    def draw_segment(self, seg: Segment, *, h_char: str, v_char: str) -> None:
        if seg.is_horizontal:
            r = self.row(seg.a.y)
            c0, c1 = sorted((self.col(seg.a.x), self.col(seg.b.x)))
            for c in range(c0, c1 + 1):
                self.grid[r][c] = WIRE_X if self.grid[r][c] == v_char else h_char
        else:
            c = self.col(seg.a.x)
            r0, r1 = sorted((self.row(seg.a.y), self.row(seg.b.y)))
            for r in range(r0, r1 + 1):
                self.grid[r][c] = WIRE_X if self.grid[r][c] == h_char else v_char

    def fill_rect(self, x0: int, y0: int, x1: int, y1: int, char: str) -> None:
        c0, c1 = sorted((self.col(x0), self.col(x1)))
        rows = sorted((self.row(y0), self.row(y1)))
        for r in range(rows[0], rows[1] + 1):
            for c in range(c0, c1 + 1):
                self.grid[r][c] = char

    def text(self) -> str:
        border = "+" + "-" * self.cols + "+"
        lines = [border]
        lines.extend("|" + "".join(row) + "|" for row in self.grid)
        lines.append(border)
        return "\n".join(lines)


def render_layout(
    layout: Layout,
    route: Optional[GlobalRoute] = None,
    *,
    width: int = 78,
    show_pins: bool = True,
    extra_points: Iterable[tuple[Point, str]] = (),
) -> str:
    """Render the layout (and optionally its routes) as ASCII art."""
    canvas = _Canvas(layout, width)
    for cell in layout.cells:
        for rect in cell.blocking_rects:
            canvas.fill_rect(rect.x0, rect.y0, rect.x1, rect.y1, CELL_CHAR)
    if route is not None:
        for _net, seg in route.all_segments():
            canvas.draw_segment(seg, h_char=WIRE_H, v_char=WIRE_V)
    if show_pins:
        for pin in layout.iter_pins():
            canvas.put(pin.location.x, pin.location.y, PIN_CHAR)
    for point, char in extra_points:
        canvas.put(point.x, point.y, char)
    return canvas.text()


def render_expansion(
    layout: Layout,
    trace: ExpansionTrace,
    path: Optional[RouteTree | list[Point]] = None,
    *,
    width: int = 78,
    start: Optional[Point] = None,
    goal: Optional[Point] = None,
) -> str:
    """Figure-1 style rendering: explored segments, final path, endpoints.

    Explored tree edges draw as dots; the final path (bend-point list
    or a route tree) overlays with line characters; start and goal mark
    as ``s`` and ``d`` as in the paper's figure.
    """
    canvas = _Canvas(layout, width)
    for cell in layout.cells:
        for rect in cell.blocking_rects:
            canvas.fill_rect(rect.x0, rect.y0, rect.x1, rect.y1, CELL_CHAR)
    for seg in trace_segments(trace):
        canvas.draw_segment(seg, h_char=EXPAND_CHAR, v_char=EXPAND_CHAR)
    for point in trace_points(trace):
        canvas.put(point.x, point.y, EXPAND_CHAR, overwrite=False)
    if path is not None:
        segments: list[Segment]
        if isinstance(path, RouteTree):
            segments = path.segments
        else:
            segments = [
                Segment(a, b) for a, b in zip(path, path[1:]) if a != b
            ]
        for seg in segments:
            canvas.draw_segment(seg, h_char=WIRE_H, v_char=WIRE_V)
    if start is not None:
        canvas.put(start.x, start.y, "s")
    if goal is not None:
        canvas.put(goal.x, goal.y, "d")
    return canvas.text()
