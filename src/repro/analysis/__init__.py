"""Analysis: metrics, verification, and rendering.

Everything the experiment harness needs to *report*: routing summaries
and comparisons (:mod:`repro.analysis.metrics`), independent validity
checking of routes (:mod:`repro.analysis.verify`), terminal-friendly
ASCII rendering and SVG export of layouts, routes, and search
expansions (:mod:`repro.analysis.render`, :mod:`repro.analysis.svg`),
and plain-text tables (:mod:`repro.analysis.tables`).
"""

from repro.analysis.metrics import RoutingSummary, summarize_route, wirelength_ratio
from repro.analysis.report import routing_report
from repro.analysis.tables import format_table
from repro.analysis.verify import (
    verify_detailed,
    verify_global_route,
    verify_path,
    verify_route_tree,
)
from repro.analysis.render import render_expansion, render_layout
from repro.analysis.svg import layout_to_svg, save_svg
from repro.analysis.expansion import trace_segments

__all__ = [
    "RoutingSummary",
    "format_table",
    "layout_to_svg",
    "render_expansion",
    "render_layout",
    "routing_report",
    "save_svg",
    "summarize_route",
    "trace_segments",
    "verify_detailed",
    "verify_global_route",
    "verify_path",
    "verify_route_tree",
    "wirelength_ratio",
]
