"""Unit tests for the batched OPEN/CLOSED engine.

The vectorized loop must mirror the scalar engine node for node: same
result, same path, same stats counters, same trace, same tie-breaking.
These tests pin that on small synthetic graphs where every quantity is
enumerable by hand; the differential parity suites pin it on real
routing problems.
"""

import numpy as np
import pytest

from repro.errors import SearchError
from repro.search.engine import Order, search
from repro.search.problem import SearchProblem
from repro.search.vector import VectorSearchProblem, search_vectorized


class GridProblem(SearchProblem):
    """Unit-step 2D grid walk to a goal, scalar form."""

    def __init__(self, size=6, start=(0, 0), goal=(5, 5), blocked=()):
        self.size = size
        self.start = start
        self.goal = goal
        self.blocked = set(blocked)

    def start_states(self):
        return [(self.start, 0.0)]

    def is_goal(self, state):
        return state == self.goal

    def heuristic(self, state):
        return float(abs(state[0] - self.goal[0]) + abs(state[1] - self.goal[1]))

    def _neighbors(self, state):
        x, y = state
        for nx_, ny in ((x + 1, y), (x - 1, y), (x, y + 1), (x, y - 1)):
            if 0 <= nx_ < self.size and 0 <= ny < self.size:
                if (nx_, ny) not in self.blocked:
                    yield (nx_, ny)

    def successors(self, state):
        for succ in self._neighbors(state):
            yield succ, 1.0


class VectorGridProblem(VectorSearchProblem):
    """The same grid walk, batched form (same successor order)."""

    def __init__(self, scalar: GridProblem):
        self.scalar = scalar

    def start_states(self):
        return self.scalar.start_states()

    def is_goal(self, state):
        return self.scalar.is_goal(state)

    def heuristic(self, state):
        return self.scalar.heuristic(state)

    def expand(self, state, with_h):
        states = list(self.scalar._neighbors(state))
        costs = np.ones(len(states), dtype=np.float64)
        hs = None
        if with_h:
            hs = np.array([self.scalar.heuristic(s) for s in states], dtype=np.float64)
        return states, costs, hs


class NegativeEdgeProblem(VectorGridProblem):
    def expand(self, state, with_h):
        states, costs, hs = super().expand(state, with_h)
        if costs.size:
            costs[-1] = -0.5
        return states, costs, hs


def _stats_tuple(stats):
    return (
        stats.nodes_expanded,
        stats.nodes_generated,
        stats.nodes_reopened,
        stats.max_open_size,
        stats.termination,
    )


@pytest.mark.parametrize("order", [Order.A_STAR, Order.BEST_FIRST])
def test_matches_scalar_engine_exactly(order):
    scalar = GridProblem(blocked=[(2, y) for y in range(5)])
    s_result = search(scalar, order, trace=True)
    v_result = search_vectorized(VectorGridProblem(scalar), order, trace=True)
    assert v_result.goal is not None and s_result.goal is not None
    assert v_result.goal.g == s_result.goal.g
    assert v_result.path == s_result.path
    assert _stats_tuple(v_result.stats) == _stats_tuple(s_result.stats)
    assert v_result.trace.entries == s_result.trace.entries


def test_blind_orders_rejected():
    scalar = GridProblem()
    with pytest.raises(SearchError, match="cost-ordered"):
        search_vectorized(VectorGridProblem(scalar), Order.BREADTH_FIRST)


def test_negative_edge_cost_rejected():
    with pytest.raises(SearchError, match="negative edge cost"):
        search_vectorized(NegativeEdgeProblem(GridProblem()))


def test_negative_start_cost_rejected():
    scalar = GridProblem()
    scalar.start_states = lambda: [((0, 0), -1.0)]
    with pytest.raises(SearchError, match="negative start cost"):
        search_vectorized(VectorGridProblem(scalar))


def test_node_limit_matches_scalar():
    scalar = GridProblem()
    s_result = search(scalar, node_limit=7)
    v_result = search_vectorized(VectorGridProblem(scalar), node_limit=7)
    assert s_result.goal is None and v_result.goal is None
    assert _stats_tuple(v_result.stats) == _stats_tuple(s_result.stats)
    assert v_result.stats.termination == "limit"


def test_exhaustive_returns_best_goal():
    scalar = GridProblem(size=3, goal=(2, 2))
    s_result = search(scalar, exhaustive=True)
    v_result = search_vectorized(VectorGridProblem(scalar), exhaustive=True)
    assert v_result.goal is not None
    assert v_result.goal.g == s_result.goal.g
    assert _stats_tuple(v_result.stats) == _stats_tuple(s_result.stats)


def test_unreachable_goal_exhausts():
    blocked = [(1, 0), (1, 1), (0, 1)]  # seal the start corner
    scalar = GridProblem(start=(0, 0), goal=(5, 5), blocked=blocked)
    s_result = search(scalar)
    v_result = search_vectorized(VectorGridProblem(scalar))
    assert v_result.goal is None
    assert v_result.stats.termination == "exhausted"
    assert _stats_tuple(v_result.stats) == _stats_tuple(s_result.stats)
