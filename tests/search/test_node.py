"""Unit tests for search nodes and the expansion trace."""

from repro.search.node import SearchNode
from repro.search.stats import ExpansionTrace, SearchStats


class TestSearchNode:
    def test_f_is_g_plus_h(self):
        node = SearchNode("s", g=3.0, h=4.0)
        assert node.f == 7.0

    def test_path_reconstruction(self):
        root = SearchNode("a", g=0)
        mid = SearchNode("b", g=1, parent=root, depth=1)
        leaf = SearchNode("c", g=2, parent=mid, depth=2)
        assert leaf.path() == ["a", "b", "c"]

    def test_redirect_updates_cost_parent_depth(self):
        root = SearchNode("a", g=0)
        other = SearchNode("x", g=1, parent=root, depth=1)
        node = SearchNode("b", g=9, parent=root, depth=1)
        node.redirect(other, 2.0)
        assert node.g == 2.0
        assert node.parent is other
        assert node.depth == 2

    def test_redirect_to_none_resets_depth(self):
        node = SearchNode("b", g=9, parent=SearchNode("a", g=0), depth=1)
        node.redirect(None, 0.0)
        assert node.depth == 0 and node.parent is None

    def test_nodes_compare_by_identity(self):
        assert SearchNode("s", g=0) != SearchNode("s", g=0)


class TestExpansionTrace:
    def test_records_in_order(self):
        trace = ExpansionTrace()
        trace.record("a")
        trace.record("b", "a")
        assert trace.states == ["a", "b"]
        assert trace.entries[1] == ("b", "a")
        assert len(trace) == 2


class TestSearchStats:
    def test_observe_open_size_keeps_max(self):
        stats = SearchStats()
        stats.observe_open_size(3)
        stats.observe_open_size(1)
        assert stats.max_open_size == 3

    def test_merged_with_propagates_failure(self):
        ok = SearchStats(termination="goal")
        bad = SearchStats(termination="limit")
        assert ok.merged_with(bad).termination == "limit"
        assert ok.merged_with(SearchStats(termination="goal")).termination == "goal"
